/root/repo/target/debug/deps/flexcore_pipeline-ddb8f30b49c27692.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_pipeline-ddb8f30b49c27692.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/serde_impls.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
