//! Criterion micro-benchmarks: simulator throughput for the bare core
//! and for the full FlexCore system under each extension.

use criterion::{criterion_group, criterion_main, Criterion};
use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::{Extension, System, SystemConfig};
use flexcore_asm::Program;
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig};
use flexcore_workloads::Workload;

const BUDGET: u64 = 100_000;

fn program() -> Program {
    Workload::bitcount().program().expect("assembles")
}

fn bench_bare_core(c: &mut Criterion) {
    let program = program();
    c.bench_function("core_100k_instructions", |b| {
        b.iter(|| {
            let mut mem = MainMemory::new();
            let mut bus = SystemBus::default();
            let mut core = Core::new(CoreConfig::leon3());
            core.load_program(&program, &mut mem);
            core.run(&mut mem, &mut bus, BUDGET)
        })
    });
}

fn run_system<E: Extension>(program: &Program, ext: E) -> u64 {
    let mut sys = System::new(SystemConfig::fabric_half_speed(), ext);
    sys.load_program(program);
    sys.run(BUDGET).cycles
}

fn bench_monitored(c: &mut Criterion) {
    let program = program();
    let mut g = c.benchmark_group("system_100k_instructions");
    g.bench_function("umc", |b| b.iter(|| run_system(&program, Umc::new())));
    g.bench_function("dift", |b| b.iter(|| run_system(&program, Dift::new())));
    g.bench_function("bc", |b| b.iter(|| run_system(&program, Bc::new())));
    g.bench_function("sec", |b| b.iter(|| run_system(&program, Sec::new())));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bare_core, bench_monitored
}
criterion_main!(benches);
