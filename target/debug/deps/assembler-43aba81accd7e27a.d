/root/repo/target/debug/deps/assembler-43aba81accd7e27a.d: crates/bench/benches/assembler.rs

/root/repo/target/debug/deps/libassembler-43aba81accd7e27a.rmeta: crates/bench/benches/assembler.rs

crates/bench/benches/assembler.rs:
