/root/repo/target/debug/examples/quickstart-059aa87622d59f46.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-059aa87622d59f46: examples/quickstart.rs

examples/quickstart.rs:
