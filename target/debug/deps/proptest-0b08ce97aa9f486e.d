/root/repo/target/debug/deps/proptest-0b08ce97aa9f486e.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0b08ce97aa9f486e.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0b08ce97aa9f486e.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
