/root/repo/target/debug/examples/quickstart-5fb8938b862c2281.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5fb8938b862c2281: examples/quickstart.rs

examples/quickstart.rs:
