/root/repo/target/debug/deps/flexcore_pipeline-f8758a7764868aea.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/flexcore_pipeline-f8758a7764868aea: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/serde_impls.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
