//! Checkpoint/restore of a complete [`System`](crate::System).
//!
//! A [`Snapshot`] captures every bit of simulation state a resumed run
//! can observe: the pipeline core (architectural registers, pc/npc
//! window, cache tags, store buffer, cycle counter, statistics,
//! console), main memory (delta-compressed against the loaded program
//! image), the meta-data cache with its resident lines, the shared
//! bus, the shadow register file, the extension's run-time state, the
//! forward FIFO, trap plumbing, and the fault injector's generator
//! positions and event log.
//!
//! The restore contract: build a system *the same way* as the one that
//! was snapshotted — same [`SystemConfig`](crate::SystemConfig), same
//! extension construction, same
//! [`load_program`](crate::System::load_program) call, and the same
//! re-armed [`FaultPlan`](crate::faults::FaultPlan) if one was armed —
//! then call [`System::restore`](crate::System::restore). A run
//! interrupted at any commit boundary and restored this way produces a
//! [`RunResult`](crate::RunResult) bit-identical to the uninterrupted
//! run. The trace sink is *not* part of the snapshot: observability
//! state (metrics series, Chrome spans, the flight ring) restarts
//! empty after a restore.
//!
//! With the `serde` feature the snapshot serializes to JSON
//! ([`Snapshot::to_json`]) and parses back ([`Snapshot::from_json`]),
//! which is what the `flexsim --checkpoint-every` / `--resume` flags
//! ship to disk.

use flexcore_mem::{BusStats, MainMemory, MetaCacheSnapshot};
use flexcore_pipeline::CoreSnapshot;

use crate::ext::MonitorTrap;
use crate::faults::FaultInjectorSnapshot;
use crate::interface::FifoSnapshot;
use crate::stats::{ForwardStats, ResilienceStats};

/// Version tag embedded in every serialized snapshot; restore rejects
/// other versions. Version 2 widened the resilience counter array from
/// 5 to 7 entries (degraded-mode accounting); version 3 widened it to
/// 10 (hot-swap accounting); version 4 widened it to 11 (static
/// check-elision accounting).
pub const SNAPSHOT_FORMAT: u32 = 4;

/// Word-level difference of one 4-KB page against the baseline image
/// captured at [`load_program`](crate::System::load_program).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDelta {
    /// Base address of the page (index << 12).
    pub base: u32,
    /// `(byte offset within page, word value)` for every aligned word
    /// that differs from the baseline, ascending by offset.
    pub words: Vec<(u16, u32)>,
}

/// Complete checkpointable state of a [`System`](crate::System) (see
/// the [module docs](self) for the restore contract).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Serialization format version ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Name of the extension that was running (restore sanity check).
    pub ext_name: String,
    /// Configured forward-FIFO depth (restore sanity check).
    pub fifo_depth: u64,
    /// The pipeline core, caches, and store buffer.
    pub core: CoreSnapshot,
    /// Main memory as word diffs against the baseline image.
    pub mem_pages: Vec<PageDelta>,
    /// The meta-data cache: tag array plus resident line data.
    pub meta: MetaCacheSnapshot,
    /// Shared-bus busy timeline.
    pub bus_busy_until: u64,
    /// Shared-bus statistics.
    pub bus_stats: BusStats,
    /// The shadow register file's 8-bit tags, `%g0` first.
    pub shadow: Vec<u8>,
    /// Extension run-time state
    /// ([`Extension::snapshot_state`](crate::Extension::snapshot_state)).
    pub ext_state: Vec<u64>,
    /// The forward FIFO's resident entries and counters.
    pub fifo: FifoSnapshot,
    /// Cycle at which the fabric next frees up.
    pub fabric_free_at: u64,
    /// Forwarding statistics.
    pub forward: ForwardStats,
    /// The monitor trap, if one has been raised.
    pub monitor_trap: Option<MonitorTrap>,
    /// In-flight TRAP delivery: `(assert cycle, instret at violation)`.
    pub pending_trap: Option<(u64, u64)>,
    /// Fault-injector generator positions and logs (present exactly
    /// when a plan was armed).
    pub faults: Option<FaultInjectorSnapshot>,
    /// Fault-injection and graceful-degradation counters.
    pub resilience: ResilienceStats,
    /// Whether a fault has wedged the fabric.
    pub fabric_stuck: bool,
}

/// Why a checkpoint could not be restored: a malformed or
/// version-mismatched serialized snapshot, or a snapshot taken from a
/// differently-constructed system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoreError(String);

impl RestoreError {
    pub(crate) fn new(msg: impl Into<String>) -> RestoreError {
        RestoreError(msg.into())
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Word diffs of `current` against `baseline` (`None` = all-zero
/// memory). Pages only ever accrete, so iterating `current`'s resident
/// pages covers every address that can differ.
pub(crate) fn mem_delta(baseline: Option<&MainMemory>, current: &MainMemory) -> Vec<PageDelta> {
    const ZERO_PAGE: [u8; MainMemory::PAGE_BYTES] = [0; MainMemory::PAGE_BYTES];
    let mut pages = Vec::new();
    for index in current.page_indices() {
        let cur = current.page_bytes(index).expect("index came from page_indices");
        let base = baseline.and_then(|b| b.page_bytes(index)).unwrap_or(&ZERO_PAGE);
        let mut words = Vec::new();
        for off in (0..MainMemory::PAGE_BYTES).step_by(4) {
            if cur[off..off + 4] != base[off..off + 4] {
                let value =
                    u32::from_be_bytes([cur[off], cur[off + 1], cur[off + 2], cur[off + 3]]);
                words.push((off as u16, value));
            }
        }
        if !words.is_empty() {
            pages.push(PageDelta { base: index << 12, words });
        }
    }
    pages
}

/// Applies [`mem_delta`] diffs onto a clone of the baseline.
pub(crate) fn apply_delta(mem: &mut MainMemory, pages: &[PageDelta]) {
    for page in pages {
        for &(off, value) in &page.words {
            mem.write_u32(page.base + u32::from(off), value);
        }
    }
}

#[cfg(feature = "serde")]
mod json {
    //! JSON encoding/decoding of [`Snapshot`] via the vendored serde
    //! subset. The `Serialize` side builds a `Value` tree; the decode
    //! side hand-walks a parsed `Value` (the subset has no
    //! `Deserialize` trait).

    use serde::Value;

    use flexcore_isa::NUM_INSTR_CLASSES;
    use flexcore_mem::{BusStats, CacheSnapshot, CacheStats, LineState, MetaCacheSnapshot};
    use flexcore_pipeline::{CoreSnapshot, CoreStats, ExitReason};

    use crate::ext::MonitorTrap;
    use crate::faults::{
        BitstreamStrike, FaultAction, FaultEvent, FaultInjectorSnapshot, PacketField,
    };
    use crate::interface::FifoSnapshot;
    use crate::stats::{ForwardStats, ResilienceStats};

    use super::{PageDelta, RestoreError, Snapshot, SNAPSHOT_FORMAT};

    type R<T> = Result<T, RestoreError>;

    fn err(msg: impl Into<String>) -> RestoreError {
        RestoreError::new(msg)
    }

    // ---- decode helpers -------------------------------------------------

    fn field<'a>(v: &'a Value, key: &str) -> R<&'a Value> {
        v.get(key).ok_or_else(|| err(format!("missing field `{key}`")))
    }

    fn get_u64(v: &Value, key: &str) -> R<u64> {
        field(v, key)?.as_u64().ok_or_else(|| err(format!("field `{key}` is not an integer")))
    }

    fn get_u32(v: &Value, key: &str) -> R<u32> {
        u32::try_from(get_u64(v, key)?)
            .map_err(|_| err(format!("field `{key}` does not fit in 32 bits")))
    }

    fn get_bool(v: &Value, key: &str) -> R<bool> {
        match field(v, key)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(err(format!("field `{key}` is not a boolean"))),
        }
    }

    fn get_str<'a>(v: &'a Value, key: &str) -> R<&'a str> {
        field(v, key)?.as_str().ok_or_else(|| err(format!("field `{key}` is not a string")))
    }

    fn get_array<'a>(v: &'a Value, key: &str) -> R<&'a [Value]> {
        field(v, key)?.as_array().ok_or_else(|| err(format!("field `{key}` is not an array")))
    }

    fn as_u64(v: &Value, what: &str) -> R<u64> {
        v.as_u64().ok_or_else(|| err(format!("{what} is not an integer")))
    }

    fn u64_list(items: &[Value], what: &str) -> R<Vec<u64>> {
        items.iter().map(|v| as_u64(v, what)).collect()
    }

    fn u64_array(vals: &[u64]) -> Value {
        Value::Array(vals.iter().map(|&v| Value::U64(v)).collect())
    }

    // ---- component encoders / decoders ----------------------------------

    fn cache_stats_value(s: &CacheStats) -> Value {
        Value::Array(
            [s.read_hits, s.read_misses, s.write_hits, s.write_misses, s.writebacks]
                .iter()
                .map(|&v| Value::U64(v))
                .collect(),
        )
    }

    fn cache_stats_from(v: &Value) -> R<CacheStats> {
        let items = v.as_array().ok_or_else(|| err("cache stats are not an array"))?;
        let n = u64_list(items, "cache stat")?;
        let [read_hits, read_misses, write_hits, write_misses, writebacks]: [u64; 5] =
            n.try_into().map_err(|_| err("cache stats need exactly 5 counters"))?;
        Ok(CacheStats { read_hits, read_misses, write_hits, write_misses, writebacks })
    }

    fn cache_value(c: &CacheSnapshot) -> Value {
        let lines = c
            .lines
            .iter()
            .map(|l| {
                Value::Array(vec![
                    Value::U64(u64::from(l.tag)),
                    Value::Bool(l.valid),
                    Value::Bool(l.dirty),
                    Value::U64(l.lru),
                ])
            })
            .collect();
        Value::object()
            .raw("lines", Value::Array(lines))
            .raw("stamp", Value::U64(c.stamp))
            .raw("stats", cache_stats_value(&c.stats))
            .build()
    }

    fn cache_from(v: &Value) -> R<CacheSnapshot> {
        let mut lines = Vec::new();
        for item in get_array(v, "lines")? {
            let parts = item.as_array().ok_or_else(|| err("cache line is not an array"))?;
            let [tag, valid, dirty, lru] = parts else {
                return Err(err("cache line needs exactly 4 entries"));
            };
            lines.push(LineState {
                tag: as_u64(tag, "cache line tag")? as u32,
                valid: matches!(valid, Value::Bool(true)),
                dirty: matches!(dirty, Value::Bool(true)),
                lru: as_u64(lru, "cache line lru")?,
            });
        }
        Ok(CacheSnapshot {
            lines,
            stamp: get_u64(v, "stamp")?,
            stats: cache_stats_from(field(v, "stats")?)?,
        })
    }

    fn core_stats_value(s: &CoreStats) -> Value {
        Value::object()
            .raw("instret", Value::U64(s.instret))
            .raw("annulled", Value::U64(s.annulled))
            .raw("per_class", u64_array(&s.per_class))
            .raw("external_stall_cycles", Value::U64(s.external_stall_cycles))
            .raw("store_stall_cycles", Value::U64(s.store_stall_cycles))
            .build()
    }

    fn core_stats_from(v: &Value) -> R<CoreStats> {
        let per_class: [u64; NUM_INSTR_CLASSES] =
            u64_list(get_array(v, "per_class")?, "per-class counter")?
                .try_into()
                .map_err(|_| err("per-class counters have the wrong length"))?;
        Ok(CoreStats {
            instret: get_u64(v, "instret")?,
            annulled: get_u64(v, "annulled")?,
            per_class,
            external_stall_cycles: get_u64(v, "external_stall_cycles")?,
            store_stall_cycles: get_u64(v, "store_stall_cycles")?,
        })
    }

    fn exit_value(e: &ExitReason) -> Value {
        let (kind, a, b) = match *e {
            ExitReason::Halt(code) => ("halt", u64::from(code), 0),
            ExitReason::IllegalInstruction { pc, word } => {
                ("illegal-instruction", u64::from(pc), u64::from(word))
            }
            ExitReason::MisalignedAccess { pc, addr } => {
                ("misaligned-access", u64::from(pc), u64::from(addr))
            }
            ExitReason::DivideByZero { pc } => ("divide-by-zero", u64::from(pc), 0),
            ExitReason::InstructionLimit => ("instruction-limit", 0, 0),
            ExitReason::MonitorTrap { pc } => ("monitor-trap", u64::from(pc), 0),
        };
        Value::object()
            .raw("kind", Value::Str(kind.to_string()))
            .raw("a", Value::U64(a))
            .raw("b", Value::U64(b))
            .build()
    }

    fn exit_from(v: &Value) -> R<ExitReason> {
        let a = get_u64(v, "a")? as u32;
        let b = get_u64(v, "b")? as u32;
        match get_str(v, "kind")? {
            "halt" => Ok(ExitReason::Halt(a)),
            "illegal-instruction" => Ok(ExitReason::IllegalInstruction { pc: a, word: b }),
            "misaligned-access" => Ok(ExitReason::MisalignedAccess { pc: a, addr: b }),
            "divide-by-zero" => Ok(ExitReason::DivideByZero { pc: a }),
            "instruction-limit" => Ok(ExitReason::InstructionLimit),
            "monitor-trap" => Ok(ExitReason::MonitorTrap { pc: a }),
            other => Err(err(format!("unknown exit reason `{other}`"))),
        }
    }

    fn core_value(c: &CoreSnapshot) -> Value {
        Value::object()
            .raw("regs", Value::Array(c.regs.iter().map(|&r| Value::U64(u64::from(r))).collect()))
            .raw("icc", Value::U64(u64::from(c.icc)))
            .raw("pc", Value::U64(u64::from(c.pc)))
            .raw("npc", Value::U64(u64::from(c.npc)))
            .raw("annul_next", Value::Bool(c.annul_next))
            .raw("cycle", Value::U64(c.cycle))
            .raw("icache", cache_value(&c.icache))
            .raw("dcache", cache_value(&c.dcache))
            .raw("storebuf_pending", u64_array(&c.storebuf_pending))
            .raw("storebuf_stalls", Value::U64(c.storebuf_stalls))
            .raw("stats", core_stats_value(&c.stats))
            .raw(
                "console",
                Value::Array(c.console.iter().map(|&b| Value::U64(u64::from(b))).collect()),
            )
            .raw("exited", c.exited.as_ref().map_or(Value::Null, exit_value))
            .raw("commit_slot", Value::U64(u64::from(c.commit_slot)))
            .build()
    }

    fn core_from(v: &Value) -> R<CoreSnapshot> {
        let regs: [u32; 32] = u64_list(get_array(v, "regs")?, "register")?
            .into_iter()
            .map(|r| r as u32)
            .collect::<Vec<_>>()
            .try_into()
            .map_err(|_| err("register file needs exactly 32 entries"))?;
        let console =
            u64_list(get_array(v, "console")?, "console byte")?.into_iter().map(|b| b as u8);
        let exited = match field(v, "exited")? {
            Value::Null => None,
            other => Some(exit_from(other)?),
        };
        Ok(CoreSnapshot {
            regs,
            icc: get_u64(v, "icc")? as u8,
            pc: get_u32(v, "pc")?,
            npc: get_u32(v, "npc")?,
            annul_next: get_bool(v, "annul_next")?,
            cycle: get_u64(v, "cycle")?,
            icache: cache_from(field(v, "icache")?)?,
            dcache: cache_from(field(v, "dcache")?)?,
            storebuf_pending: u64_list(get_array(v, "storebuf_pending")?, "store completion")?,
            storebuf_stalls: get_u64(v, "storebuf_stalls")?,
            stats: core_stats_from(field(v, "stats")?)?,
            console: console.collect(),
            exited,
            commit_slot: get_u32(v, "commit_slot")?,
        })
    }

    fn meta_value(m: &MetaCacheSnapshot) -> Value {
        let lines = m
            .lines
            .iter()
            .map(|(base, bytes)| {
                Value::object()
                    .raw("base", Value::U64(u64::from(*base)))
                    .raw(
                        "bytes",
                        Value::Array(bytes.iter().map(|&b| Value::U64(u64::from(b))).collect()),
                    )
                    .build()
            })
            .collect();
        Value::object().raw("tags", cache_value(&m.tags)).raw("lines", Value::Array(lines)).build()
    }

    fn meta_from(v: &Value) -> R<MetaCacheSnapshot> {
        let mut lines = Vec::new();
        for item in get_array(v, "lines")? {
            let bytes = u64_list(get_array(item, "bytes")?, "meta line byte")?
                .into_iter()
                .map(|b| b as u8)
                .collect();
            lines.push((get_u32(item, "base")?, bytes));
        }
        Ok(MetaCacheSnapshot { tags: cache_from(field(v, "tags")?)?, lines })
    }

    fn bus_stats_value(s: &BusStats) -> Value {
        Value::Array(
            [
                s.busy_cycles,
                s.core_transfers,
                s.fabric_transfers,
                s.core_wait_cycles,
                s.fabric_wait_cycles,
            ]
            .iter()
            .map(|&v| Value::U64(v))
            .collect(),
        )
    }

    fn bus_stats_from(v: &Value) -> R<BusStats> {
        let items = v.as_array().ok_or_else(|| err("bus stats are not an array"))?;
        let n = u64_list(items, "bus stat")?;
        let [busy_cycles, core_transfers, fabric_transfers, core_wait_cycles, fabric_wait_cycles]:
            [u64; 5] = n.try_into().map_err(|_| err("bus stats need exactly 5 counters"))?;
        Ok(BusStats {
            busy_cycles,
            core_transfers,
            fabric_transfers,
            core_wait_cycles,
            fabric_wait_cycles,
        })
    }

    fn forward_value(s: &ForwardStats) -> Value {
        Value::object()
            .raw("committed", Value::U64(s.committed))
            .raw("forwarded", Value::U64(s.forwarded))
            .raw("dropped", Value::U64(s.dropped))
            .raw("per_class", u64_array(&s.per_class))
            .raw("fifo_stall_cycles", Value::U64(s.fifo_stall_cycles))
            .raw("peak_occupancy", Value::U64(s.peak_occupancy))
            .build()
    }

    fn forward_from(v: &Value) -> R<ForwardStats> {
        let per_class: [u64; NUM_INSTR_CLASSES] =
            u64_list(get_array(v, "per_class")?, "per-class counter")?
                .try_into()
                .map_err(|_| err("per-class counters have the wrong length"))?;
        Ok(ForwardStats {
            committed: get_u64(v, "committed")?,
            forwarded: get_u64(v, "forwarded")?,
            dropped: get_u64(v, "dropped")?,
            per_class,
            fifo_stall_cycles: get_u64(v, "fifo_stall_cycles")?,
            peak_occupancy: get_u64(v, "peak_occupancy")?,
        })
    }

    fn resilience_value(s: &ResilienceStats) -> Value {
        Value::Array(
            [
                s.faults_injected,
                s.packets_corrupted,
                s.dropped_overflow,
                s.bitstream_retries,
                s.bitstream_reloads,
                s.unmonitored_commits,
                s.suppressed_checks,
                s.swaps_completed,
                s.swap_drained_packets,
                s.swap_stall_cycles,
                s.elided_checks,
            ]
            .iter()
            .map(|&v| Value::U64(v))
            .collect(),
        )
    }

    fn resilience_from(v: &Value) -> R<ResilienceStats> {
        let items = v.as_array().ok_or_else(|| err("resilience stats are not an array"))?;
        let n = u64_list(items, "resilience stat")?;
        let [faults_injected, packets_corrupted, dropped_overflow, bitstream_retries, bitstream_reloads, unmonitored_commits, suppressed_checks, swaps_completed, swap_drained_packets, swap_stall_cycles, elided_checks]:
            [u64; 11] =
            n.try_into().map_err(|_| err("resilience stats need exactly 11 counters"))?;
        Ok(ResilienceStats {
            faults_injected,
            packets_corrupted,
            dropped_overflow,
            bitstream_retries,
            bitstream_reloads,
            unmonitored_commits,
            suppressed_checks,
            swaps_completed,
            swap_drained_packets,
            swap_stall_cycles,
            elided_checks,
        })
    }

    fn fifo_value(f: &FifoSnapshot) -> Value {
        Value::object()
            .raw("dequeues", u64_array(&f.dequeues))
            .raw("stall_cycles", Value::U64(f.stall_cycles))
            .raw("peak_occupancy", Value::U64(f.peak_occupancy))
            .build()
    }

    fn fifo_from(v: &Value) -> R<FifoSnapshot> {
        Ok(FifoSnapshot {
            dequeues: u64_list(get_array(v, "dequeues")?, "fifo dequeue time")?,
            stall_cycles: get_u64(v, "stall_cycles")?,
            peak_occupancy: get_u64(v, "peak_occupancy")?,
        })
    }

    fn action_value(a: &FaultAction) -> Value {
        let (kind, x, mask) = match *a {
            FaultAction::FlipResult { mask } => ("flip-result", 0u64, mask),
            FaultAction::FlipRegister { reg, mask } => ("flip-register", u64::from(reg), mask),
            FaultAction::FlipMemory { addr, mask } => ("flip-memory", u64::from(addr), mask),
            FaultAction::FlipText { addr, mask } => ("flip-text", u64::from(addr), mask),
            FaultAction::CorruptPacket { field, mask } => {
                let f = match field {
                    PacketField::Result => 0u64,
                    PacketField::Srcv1 => 1,
                    PacketField::Srcv2 => 2,
                    PacketField::Addr => 3,
                    PacketField::StoreValue => 4,
                };
                ("corrupt-packet", f, mask)
            }
            FaultAction::PoisonMeta { addr, mask } => ("poison-meta", u64::from(addr), mask),
            FaultAction::StickFabric => ("stick-fabric", 0, 0),
        };
        Value::object()
            .raw("kind", Value::Str(kind.to_string()))
            .raw("x", Value::U64(x))
            .raw("mask", Value::U64(u64::from(mask)))
            .build()
    }

    fn action_from(v: &Value) -> R<FaultAction> {
        let x = get_u64(v, "x")?;
        let mask = get_u64(v, "mask")? as u32;
        match get_str(v, "kind")? {
            "flip-result" => Ok(FaultAction::FlipResult { mask }),
            "flip-register" => Ok(FaultAction::FlipRegister { reg: x as u8, mask }),
            "flip-memory" => Ok(FaultAction::FlipMemory { addr: x as u32, mask }),
            "flip-text" => Ok(FaultAction::FlipText { addr: x as u32, mask }),
            "corrupt-packet" => {
                let field = match x {
                    0 => PacketField::Result,
                    1 => PacketField::Srcv1,
                    2 => PacketField::Srcv2,
                    3 => PacketField::Addr,
                    4 => PacketField::StoreValue,
                    other => return Err(err(format!("unknown packet field {other}"))),
                };
                Ok(FaultAction::CorruptPacket { field, mask })
            }
            "poison-meta" => Ok(FaultAction::PoisonMeta { addr: x as u32, mask }),
            "stick-fabric" => Ok(FaultAction::StickFabric),
            other => Err(err(format!("unknown fault action `{other}`"))),
        }
    }

    fn faults_value(f: &FaultInjectorSnapshot) -> Value {
        let log = f
            .log
            .iter()
            .map(|e| {
                Value::object()
                    .raw("at", Value::U64(e.at))
                    .raw("cycle", Value::U64(e.cycle))
                    .raw("action", action_value(&e.action))
                    .build()
            })
            .collect();
        let bitstream_log = f
            .bitstream_log
            .iter()
            .map(|s| {
                Value::object()
                    .raw("attempt", Value::U64(s.attempt))
                    .raw("offset", Value::U64(s.offset as u64))
                    .raw("mask", Value::U64(u64::from(s.mask)))
                    .build()
            })
            .collect();
        Value::object()
            .raw("rng_states", u64_array(&f.rng_states))
            .raw("exhausted", Value::Array(f.exhausted.iter().map(|&b| Value::Bool(b)).collect()))
            .raw("log", Value::Array(log))
            .raw("bitstream_log", Value::Array(bitstream_log))
            .raw("bitstream_attempts", Value::U64(f.bitstream_attempts))
            .build()
    }

    fn faults_from(v: &Value) -> R<FaultInjectorSnapshot> {
        let mut exhausted = Vec::new();
        for item in get_array(v, "exhausted")? {
            match item {
                Value::Bool(b) => exhausted.push(*b),
                _ => return Err(err("exhausted flag is not a boolean")),
            }
        }
        let mut log = Vec::new();
        for item in get_array(v, "log")? {
            log.push(FaultEvent {
                at: get_u64(item, "at")?,
                cycle: get_u64(item, "cycle")?,
                action: action_from(field(item, "action")?)?,
            });
        }
        let mut bitstream_log = Vec::new();
        for item in get_array(v, "bitstream_log")? {
            bitstream_log.push(BitstreamStrike {
                attempt: get_u64(item, "attempt")?,
                offset: get_u64(item, "offset")? as usize,
                mask: get_u64(item, "mask")? as u8,
            });
        }
        Ok(FaultInjectorSnapshot {
            rng_states: u64_list(get_array(v, "rng_states")?, "rng state")?,
            exhausted,
            log,
            bitstream_log,
            bitstream_attempts: get_u64(v, "bitstream_attempts")?,
        })
    }

    fn trap_value(t: &MonitorTrap) -> Value {
        Value::object()
            .raw("pc", Value::U64(u64::from(t.pc)))
            .raw("reason", Value::Str(t.reason.clone()))
            .build()
    }

    fn pages_value(pages: &[PageDelta]) -> Value {
        Value::Array(
            pages
                .iter()
                .map(|p| {
                    let words = p
                        .words
                        .iter()
                        .map(|&(off, value)| {
                            Value::Array(vec![
                                Value::U64(u64::from(off)),
                                Value::U64(u64::from(value)),
                            ])
                        })
                        .collect();
                    Value::object()
                        .raw("base", Value::U64(u64::from(p.base)))
                        .raw("words", Value::Array(words))
                        .build()
                })
                .collect(),
        )
    }

    fn pages_from(v: &Value, key: &str) -> R<Vec<PageDelta>> {
        let mut pages = Vec::new();
        for item in get_array(v, key)? {
            let mut words = Vec::new();
            for w in get_array(item, "words")? {
                let parts = w.as_array().ok_or_else(|| err("page word is not an array"))?;
                let [off, value] = parts else {
                    return Err(err("page word needs exactly 2 entries"));
                };
                words.push((
                    as_u64(off, "page word offset")? as u16,
                    as_u64(value, "page word value")? as u32,
                ));
            }
            pages.push(PageDelta { base: get_u32(item, "base")?, words });
        }
        Ok(pages)
    }

    // ---- whole-snapshot encode / decode ---------------------------------

    pub(super) fn snapshot_value(s: &Snapshot) -> Value {
        Value::object()
            .raw("format", Value::U64(u64::from(s.format)))
            .raw("ext", Value::Str(s.ext_name.clone()))
            .raw("fifo_depth", Value::U64(s.fifo_depth))
            .raw("core", core_value(&s.core))
            .raw("mem_pages", pages_value(&s.mem_pages))
            .raw("meta", meta_value(&s.meta))
            .raw("bus_busy_until", Value::U64(s.bus_busy_until))
            .raw("bus_stats", bus_stats_value(&s.bus_stats))
            .raw(
                "shadow",
                Value::Array(s.shadow.iter().map(|&t| Value::U64(u64::from(t))).collect()),
            )
            .raw("ext_state", u64_array(&s.ext_state))
            .raw("fifo", fifo_value(&s.fifo))
            .raw("fabric_free_at", Value::U64(s.fabric_free_at))
            .raw("forward", forward_value(&s.forward))
            .raw("monitor_trap", s.monitor_trap.as_ref().map_or(Value::Null, trap_value))
            .raw(
                "pending_trap",
                s.pending_trap
                    .map_or(Value::Null, |(a, b)| Value::Array(vec![Value::U64(a), Value::U64(b)])),
            )
            .raw("faults", s.faults.as_ref().map_or(Value::Null, faults_value))
            .raw("resilience", resilience_value(&s.resilience))
            .raw("fabric_stuck", Value::Bool(s.fabric_stuck))
            .build()
    }

    pub(super) fn snapshot_from(v: &Value) -> R<Snapshot> {
        let format = get_u32(v, "format")?;
        if format != SNAPSHOT_FORMAT {
            return Err(err(format!(
                "unsupported snapshot format {format} (this build reads {SNAPSHOT_FORMAT})"
            )));
        }
        let monitor_trap = match field(v, "monitor_trap")? {
            Value::Null => None,
            t => Some(MonitorTrap {
                pc: get_u32(t, "pc")?,
                reason: get_str(t, "reason")?.to_string(),
            }),
        };
        let pending_trap = match field(v, "pending_trap")? {
            Value::Null => None,
            t => {
                let parts = t.as_array().ok_or_else(|| err("pending trap is not an array"))?;
                let [a, b] = parts else {
                    return Err(err("pending trap needs exactly 2 entries"));
                };
                Some((as_u64(a, "trap assert cycle")?, as_u64(b, "trap instret")?))
            }
        };
        let faults = match field(v, "faults")? {
            Value::Null => None,
            f => Some(faults_from(f)?),
        };
        let shadow =
            u64_list(get_array(v, "shadow")?, "shadow tag")?.into_iter().map(|t| t as u8).collect();
        Ok(Snapshot {
            format,
            ext_name: get_str(v, "ext")?.to_string(),
            fifo_depth: get_u64(v, "fifo_depth")?,
            core: core_from(field(v, "core")?)?,
            mem_pages: pages_from(v, "mem_pages")?,
            meta: meta_from(field(v, "meta")?)?,
            bus_busy_until: get_u64(v, "bus_busy_until")?,
            bus_stats: bus_stats_from(field(v, "bus_stats")?)?,
            shadow,
            ext_state: u64_list(get_array(v, "ext_state")?, "extension word")?,
            fifo: fifo_from(field(v, "fifo")?)?,
            fabric_free_at: get_u64(v, "fabric_free_at")?,
            forward: forward_from(field(v, "forward")?)?,
            monitor_trap,
            pending_trap,
            faults,
            resilience: resilience_from(field(v, "resilience")?)?,
            fabric_stuck: get_bool(v, "fabric_stuck")?,
        })
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Snapshot {
    fn to_value(&self) -> serde::Value {
        json::snapshot_value(self)
    }
}

#[cfg(feature = "serde")]
impl Snapshot {
    /// Serializes the snapshot to one-line JSON.
    pub fn to_json(&self) -> String {
        serde::to_string(self)
    }

    /// Parses a snapshot serialized by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] on malformed JSON, a missing or
    /// mistyped field, or a format-version mismatch.
    pub fn from_json(s: &str) -> Result<Snapshot, RestoreError> {
        let v = serde::from_str(s)
            .map_err(|e| RestoreError::new(format!("invalid checkpoint JSON: {e}")))?;
        json::snapshot_from(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_delta_is_empty_against_self() {
        let mut m = MainMemory::new();
        m.write_u32(0x1000, 0xdead_beef);
        m.write_u32(0x8004, 7);
        assert!(mem_delta(Some(&m.clone()), &m).is_empty());
    }

    #[test]
    fn mem_delta_round_trips_through_apply() {
        let mut baseline = MainMemory::new();
        baseline.load(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut current = baseline.clone();
        current.write_u32(0x1004, 0xaabb_ccdd); // changed word
        current.write_u32(0x9000, 42); // fresh page
        let delta = mem_delta(Some(&baseline), &current);
        assert_eq!(delta.iter().map(|p| p.words.len()).sum::<usize>(), 2);
        let mut restored = baseline.clone();
        apply_delta(&mut restored, &delta);
        assert_eq!(restored.read_u32(0x1000), current.read_u32(0x1000));
        assert_eq!(restored.read_u32(0x1004), 0xaabb_ccdd);
        assert_eq!(restored.read_u32(0x9000), 42);
    }

    #[test]
    fn mem_delta_with_no_baseline_diffs_against_zero() {
        let mut m = MainMemory::new();
        m.write_u32(0x2000, 9);
        let delta = mem_delta(None, &m);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].words, vec![(0, 9)]);
    }
}
