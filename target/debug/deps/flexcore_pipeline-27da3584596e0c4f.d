/root/repo/target/debug/deps/flexcore_pipeline-27da3584596e0c4f.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-27da3584596e0c4f.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-27da3584596e0c4f.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
