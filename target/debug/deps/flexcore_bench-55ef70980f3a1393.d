/root/repo/target/debug/deps/flexcore_bench-55ef70980f3a1393.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-55ef70980f3a1393.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-55ef70980f3a1393.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
