/root/repo/target/release/deps/flexcore_workloads-016bc816ee9e95c2.d: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

/root/repo/target/release/deps/libflexcore_workloads-016bc816ee9e95c2.rlib: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

/root/repo/target/release/deps/libflexcore_workloads-016bc816ee9e95c2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/basicmath.rs:
crates/workloads/src/bitcount.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/dijkstra.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/gmac.rs:
crates/workloads/src/qsort.rs:
crates/workloads/src/sha.rs:
crates/workloads/src/stringsearch.rs:
