//! Lock-free metrics registry with text and JSON exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-wrapped
//! relaxed atomics: updating one from a worker thread is a single
//! atomic RMW with no lock and no allocation. The registry's mutex
//! guards *registration only* — the one-time get-or-create of a named
//! metric — never the hot path. `flexserve` snapshots the registry
//! into its `status.json` heartbeat; exposition order is registration
//! order, so snapshots diff cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

use crate::hist::{bucket_of, Log2Histogram, BUCKETS};

/// A monotonically increasing counter (events, bytes, trials).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by 1, saturating at 0 (a stray extra `dec`
    /// must not wrap a depth gauge to 2⁶⁴).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared atomic storage behind a [`Histogram`] handle.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A concurrent log₂ histogram handle (journal fsync latency and the
/// like). Recording is three relaxed atomic adds; readers take a
/// point-in-time [`Log2Histogram`] snapshot.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantiles/serialization. Concurrent
    /// writers may land between bucket loads; the snapshot's count is
    /// derived from the loaded buckets, so the monotone-total
    /// invariant holds even mid-write.
    pub fn snapshot(&self) -> Log2Histogram {
        let buckets = std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        Log2Histogram::from_raw(buckets, self.0.sum.load(Ordering::Relaxed))
    }
}

/// One registered metric (name + typed handle).
#[derive(Clone, Debug)]
enum Metric {
    Counter(String, Counter),
    Gauge(String, Gauge),
    Histogram(String, Histogram),
}

impl Metric {
    fn name(&self) -> &str {
        match self {
            Metric::Counter(n, _) | Metric::Gauge(n, _) | Metric::Histogram(n, _) => n,
        }
    }
}

/// A named collection of metrics with deterministic exposition.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        for m in metrics.iter() {
            if m.name() == name {
                match m {
                    Metric::Counter(_, c) => return c.clone(),
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let c = Counter::default();
        metrics.push(Metric::Counter(name.to_string(), c.clone()));
        c
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        for m in metrics.iter() {
            if m.name() == name {
                match m {
                    Metric::Gauge(_, g) => return g.clone(),
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let g = Gauge::default();
        metrics.push(Metric::Gauge(name.to_string(), g.clone()));
        g
    }

    /// Gets or registers the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        for m in metrics.iter() {
            if m.name() == name {
                match m {
                    Metric::Histogram(_, h) => return h.clone(),
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let h = Histogram::default();
        metrics.push(Metric::Histogram(name.to_string(), h.clone()));
        h
    }

    /// Plain-text exposition, one `name value` line per metric in
    /// registration order; histograms expose count, sum, and p50/p99
    /// upper-edge estimates.
    pub fn expose_text(&self) -> String {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut out = String::new();
        for m in metrics.iter() {
            match m {
                Metric::Counter(name, c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(name, g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(name, h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!(
                        "{name}_count {}\n{name}_sum {}\n{name}_p50 {}\n{name}_p99 {}\n",
                        snap.count(),
                        snap.sum(),
                        snap.quantile(0.5),
                        snap.quantile(0.99),
                    ));
                }
            }
        }
        out
    }
}

impl Serialize for Registry {
    /// JSON exposition: one field per metric in registration order;
    /// histograms nest the sparse [`Log2Histogram`] form plus p50/p99.
    fn to_value(&self) -> Value {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut obj = Value::object();
        for m in metrics.iter() {
            obj = match m {
                Metric::Counter(name, c) => obj.field(name, &c.get()),
                Metric::Gauge(name, g) => obj.field(name, &g.get()),
                Metric::Histogram(name, h) => {
                    let snap = h.snapshot();
                    obj.raw(
                        name,
                        Value::object()
                            .field("count", &snap.count())
                            .field("sum", &snap.sum())
                            .field("p50", &snap.quantile(0.5))
                            .field("p99", &snap.quantile(0.99))
                            .field("hist", &snap)
                            .build(),
                    )
                }
            };
        }
        obj.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("trials_total");
        let b = reg.counter("trials_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);

        let g = reg.gauge("busy_workers");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, does not wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_records_concurrently() {
        let reg = Registry::new();
        let h = reg.histogram("fsync_ns");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..256u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4 * 256);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4 * 256);
        assert!(snap.quantile(0.99) >= 128);
    }

    #[test]
    fn exposition_is_registration_ordered() {
        let reg = Registry::new();
        reg.counter("zebra").inc();
        reg.gauge("alpha").set(7);
        reg.histogram("lat").record(100);
        let text = reg.expose_text();
        let z = text.find("zebra").expect("zebra exposed");
        let a = text.find("alpha").expect("alpha exposed");
        assert!(z < a, "registration order, not alphabetical");
        assert!(text.contains("lat_p99"));

        let v = reg.to_value();
        assert_eq!(v.get("zebra").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("alpha").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("lat").and_then(|l| l.get("count")).and_then(Value::as_u64), Some(1));
        // The whole exposition parses back.
        assert!(serde::from_str(&serde::to_string(&v)).is_ok());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_is_refused() {
        let reg = Registry::new();
        reg.counter("depth");
        reg.gauge("depth");
    }
}
