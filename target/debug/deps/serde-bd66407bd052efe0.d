/root/repo/target/debug/deps/serde-bd66407bd052efe0.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bd66407bd052efe0.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
