//! Control-flow differential test: random *forward-branching* programs
//! (guaranteed to terminate) executed by the core must match an
//! independent pc/npc interpreter written from the SPARC V8 manual's
//! `Bicc` semantics — condition evaluation, delay slots, and the annul
//! bit.

use flexcore_isa::{encode, Cond, IccFlags, Instruction, Opcode, Operand2, Reg};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason};
use proptest::prelude::*;

/// Independent pc/npc reference machine (ALU + branches only).
struct GoldenCf {
    regs: [u32; 32],
    icc: IccFlags,
}

impl GoldenCf {
    fn r(&self, r: Reg) -> u32 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn w(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// Runs the program (word-indexed); returns committed-instruction
    /// count. `halt_index` is the `ta 0` slot.
    fn run(&mut self, prog: &[Instruction], halt_index: usize) -> u64 {
        // pc/npc in word indices, as the SPARC manual describes.
        let mut pc = 0usize;
        let mut npc = 1usize;
        let mut annul = false;
        let mut committed = 0u64;
        for _ in 0..100_000 {
            // A pending annul is consumed *before* the instruction at
            // `pc` has any effect — even when `pc` sits on a halt slot
            // (the DCTI-couple case: a `ba,a` in a taken branch's delay
            // slot annuls the instruction at the first target and
            // continues at its own target).
            if std::mem::take(&mut annul) {
                pc = npc;
                npc += 1;
                continue;
            }
            // Any halt slot reached un-annulled stops the program (the
            // image pads extra `ta 0`s past the first one).
            if pc >= halt_index {
                return committed;
            }
            let inst = prog[pc];
            let mut next_npc = npc + 1;
            match inst {
                Instruction::Alu { op, rd, rs1, op2 } => {
                    let a = self.r(rs1);
                    let b = match op2 {
                        Operand2::Reg(r) => self.r(r),
                        Operand2::Imm(i) => i as u32,
                    };
                    // Only the generator's opcode subset appears here.
                    let (v, cc) = match op {
                        Opcode::Add => (a.wrapping_add(b), false),
                        Opcode::Subcc => (a.wrapping_sub(b), true),
                        Opcode::Xor => (a ^ b, false),
                        Opcode::Andcc => (a & b, true),
                        _ => unreachable!("generator emits add/subcc/xor/andcc"),
                    };
                    if cc {
                        self.icc = IccFlags {
                            n: (v as i32) < 0,
                            z: v == 0,
                            v: if op == Opcode::Subcc {
                                ((a ^ b) & (a ^ v)) >> 31 == 1
                            } else {
                                false
                            },
                            c: if op == Opcode::Subcc { a < b } else { false },
                        };
                    }
                    self.w(rd, v);
                }
                Instruction::Branch { cond, annul: a_bit, disp22 } => {
                    let taken = cond.eval(self.icc);
                    if taken {
                        next_npc = (pc as i64 + disp22 as i64) as usize;
                    }
                    // SPARC annul rule: annulled if the bit is set and
                    // the branch is untaken — or unconditionally for
                    // ba,a / bn,a.
                    if a_bit && (cond.is_unconditional() || !taken) {
                        annul = true;
                    }
                }
                _ => unreachable!("generator emits ALU and branches only"),
            }
            committed += 1;
            pc = npc;
            npc = next_npc;
        }
        panic!("reference interpreter did not terminate");
    }
}

/// One program slot in the generator's vocabulary.
#[derive(Clone, Debug)]
enum Slot {
    Alu(u8, u8, u8, i16),
    /// (cond code, annul, forward skip in 2..=6 instructions).
    Branch(u8, bool, u8),
}

fn arb_slot() -> impl Strategy<Value = Slot> {
    prop_oneof![
        3 => (0u8..4, 0u8..32, 0u8..32, any::<i16>())
            .prop_map(|(op, rs1, rd, imm)| Slot::Alu(op, rs1, rd, imm % 2048)),
        2 => (0u8..16, any::<bool>(), 2u8..=6).prop_map(|(c, a, d)| Slot::Branch(c, a, d)),
    ]
}

/// Lowers slots to instructions; branches always jump forward, clamped
/// to land at or before the halt slot, so every program terminates.
fn lower(slots: &[Slot]) -> Vec<Instruction> {
    let n = slots.len();
    slots
        .iter()
        .enumerate()
        .map(|(i, s)| match *s {
            Slot::Alu(op, rs1, rd, imm) => {
                let op = [Opcode::Add, Opcode::Subcc, Opcode::Xor, Opcode::Andcc][op as usize % 4];
                Instruction::Alu {
                    op,
                    rd: Reg::new(rd % 32).unwrap(),
                    rs1: Reg::new(rs1 % 32).unwrap(),
                    op2: Operand2::Imm(i32::from(imm)),
                }
            }
            Slot::Branch(c, a, d) => {
                // Forward displacement, landing within [i+2, n] (slot n
                // is the halt).
                let max_fwd = (n - i) as i32;
                let disp = i32::from(d).clamp(2, max_fwd.max(2));
                Instruction::Branch { cond: Cond::from_bits(c), annul: a, disp22: disp }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Registers, flags, and committed-instruction counts agree between
    /// the core and the reference interpreter on branchy programs.
    #[test]
    fn core_matches_reference_on_branchy_programs(slots in prop::collection::vec(arb_slot(), 1..80)) {
        let mut prog = lower(&slots);
        // Guarantee the instruction after the last slot (the branch
        // landing pad / halt) exists, plus one extra pad for a branch
        // in the final delay-slot position.
        let halt_index = prog.len();
        prog.push(Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) });
        // Extra halts so any `npc` past the first halt still halts.
        for _ in 0..8 {
            prog.push(Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) });
        }

        // Core run from reset (pc = 0).
        let mut mem = MainMemory::new();
        for (i, inst) in prog.iter().enumerate() {
            mem.write_u32(4 * i as u32, encode(inst));
        }
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        let exit = core.run(&mut mem, &mut bus, 200_000);
        prop_assert_eq!(exit, ExitReason::Halt(0));

        // Reference run.
        let mut golden = GoldenCf { regs: [0; 32], icc: IccFlags::default() };
        let committed = golden.run(&prog, halt_index);

        for r in Reg::all() {
            prop_assert_eq!(core.reg(r), golden.r(r), "register {}", r);
        }
        let (ci, gi) = (core.icc(), golden.icc);
        prop_assert_eq!((ci.n, ci.z, ci.v, ci.c), (gi.n, gi.z, gi.v, gi.c));
        prop_assert_eq!(core.stats().instret, committed, "commit counts differ");
    }
}
