//! Static check-elision glue: turning the `flexcore_analysis` proofs
//! into an [`ElisionTable`] and verifying elided runs in lockstep
//! against full runs.
//!
//! The table maps each class of proof to the extension whose dynamic
//! check it discharges:
//!
//! | proof source                         | elision bit   |
//! |--------------------------------------|---------------|
//! | dataflow [`ProvenLoad`]s             | [`ELIDE_UMC`]  |
//! | taint `dift_elidable` PCs            | [`ELIDE_DIFT`] |
//! | CFG-recovered static `b<cond>`/`call` sites | [`ELIDE_CFI`] |
//!
//! Soundness never rests on this table alone: every extension
//! re-validates an elision candidate against the committed packet
//! ([`Extension::check_elidable`]), so a stale or wrong table costs
//! performance, not coverage. [`verify_elision`] is the belt to that
//! suspender — it runs the same program with and without the table and
//! demands bit-identical trap verdicts and architectural state.
//!
//! [`ProvenLoad`]: flexcore_analysis::ProvenLoad
//! [`Extension::check_elidable`]: flexcore::Extension::check_elidable

use flexcore::ext::Extension;
use flexcore::{ElisionTable, System, SystemConfig, ELIDE_CFI, ELIDE_DIFT, ELIDE_UMC};
use flexcore_analysis::{analyze_program, analyze_taint_cfg, Diagnostic};
use flexcore_asm::Program;
use flexcore_isa::Instruction;

use crate::swap::build_extension;

/// What [`build_elision_table`] proved, for reporting.
#[derive(Clone, Debug, Default)]
pub struct ElisionSummary {
    /// PCs carrying [`ELIDE_UMC`] (loads proven always-initialized).
    pub umc_pcs: usize,
    /// PCs carrying [`ELIDE_DIFT`] (taint steps proven no-ops).
    pub dift_pcs: usize,
    /// PCs carrying [`ELIDE_CFI`] (statically resolved `b<cond>`/`call`
    /// sites).
    pub cfi_pcs: usize,
    /// `true` when the taint pass forfeited its elision set (reachable
    /// `cpop` or unresolvable indirect jump); `dift_pcs` is then 0.
    pub taint_forfeited: bool,
    /// The taint pass's sink findings (tainted jumps/stores), sorted
    /// and deduplicated.
    pub taint_diagnostics: Vec<Diagnostic>,
}

/// Runs the dataflow and taint passes over `program` and folds their
/// proofs into a per-PC elision table (see the [module docs](self) for
/// the proof → bit mapping).
pub fn build_elision_table(program: &Program) -> (ElisionTable, ElisionSummary) {
    let report = analyze_program(program);
    let taint = analyze_taint_cfg(&report.cfg);
    let mut table = ElisionTable::new();
    let mut summary = ElisionSummary {
        taint_forfeited: taint.forfeited,
        taint_diagnostics: taint.diagnostics.clone(),
        ..ElisionSummary::default()
    };

    for proven in &report.proven_loads {
        table.set(proven.pc, ELIDE_UMC);
        summary.umc_pcs += 1;
    }
    if !taint.forfeited {
        for &pc in &taint.dift_elidable {
            table.set(pc, ELIDE_DIFT);
            summary.dift_pcs += 1;
        }
    }
    // Every static `b<cond>`/`call` site the CFG recovered: the CFI
    // extension re-derives the target from the committed packet and
    // certifies it against its own edge table, so listing a site here
    // is safe even if a fault corrupts the displacement in flight.
    for block in report.cfg.blocks() {
        let insts = block.insts.iter().map(|&(pc, inst)| (pc, inst));
        let delays = block.succs.iter().filter_map(|e| e.delay);
        for (pc, inst) in insts.chain(delays) {
            if matches!(inst, Instruction::Branch { .. } | Instruction::Call { .. })
                && table.mask(pc) & ELIDE_CFI == 0
            {
                table.set(pc, ELIDE_CFI);
                summary.cfi_pcs += 1;
            }
        }
    }
    (table, summary)
}

/// Outcome of one [`verify_elision`] lockstep comparison.
#[derive(Clone, Debug)]
pub struct ElisionVerdict {
    /// Lowercase extension name that was verified.
    pub ext: String,
    /// Checks the elided run discharged statically.
    pub elided_checks: u64,
    /// Packets the full run forwarded to the fabric.
    pub full_forwarded: u64,
    /// Packets the elided run still forwarded.
    pub elided_forwarded: u64,
    /// First observed divergence, `None` when the runs are equivalent.
    pub divergence: Option<String>,
}

impl ElisionVerdict {
    /// `true` when the elided run matched the full run exactly.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Runs `program` under `ext_name` twice — once unmodified, once with
/// `table` installed — and compares trap verdicts, architectural
/// state, and the forwarding invariant
/// `elided.forwarded + elided_checks == full.forwarded`.
///
/// When a monitor trap fires, only the trap verdict (PC + reason) is
/// compared: the imprecise TRAP skid means post-trap timing-dependent
/// state legitimately differs. Errors (unknown extension, simulation
/// error) come back as `Err`; a divergence is a clean `Ok` with
/// `divergence: Some(..)`.
pub fn verify_elision(
    program: &Program,
    ext_name: &str,
    table: &ElisionTable,
    max_instructions: u64,
) -> Result<ElisionVerdict, String> {
    let run = |elide: bool| -> Result<_, String> {
        let ext = build_extension(ext_name, program)
            .ok_or_else(|| format!("unknown extension `{ext_name}`"))?;
        let mut sys: System<Box<dyn Extension>> =
            System::new(SystemConfig::fabric_half_speed(), ext);
        sys.load_program(program);
        if elide {
            sys.set_elision(table.clone());
        }
        let result = sys
            .try_run(max_instructions)
            .map_err(|e| format!("{ext_name}: {} run failed: {e}", which(elide)))?;
        let snap = sys.snapshot();
        Ok((result, snap))
    };
    let (full, full_snap) = run(false)?;
    let (elided, elided_snap) = run(true)?;

    let mut divergence = None;
    let mut diverge = |what: &str, full: String, elided: String| {
        if divergence.is_none() && full != elided {
            divergence = Some(format!("{what}: full={full} elided={elided}"));
        }
    };

    diverge(
        "monitor_trap",
        format!("{:?}", full.monitor_trap),
        format!("{:?}", elided.monitor_trap),
    );
    let forwarded_with_elided = elided.forward.forwarded + elided.resilience.elided_checks;
    diverge(
        "forwarded+elided invariant",
        full.forward.forwarded.to_string(),
        forwarded_with_elided.to_string(),
    );
    if full.monitor_trap.is_none() {
        diverge("exit", format!("{:?}", full.exit), format!("{:?}", elided.exit));
        diverge("instret", full.instret.to_string(), elided.instret.to_string());
        diverge(
            "console",
            String::from_utf8_lossy(&full.console).into_owned(),
            String::from_utf8_lossy(&elided.console).into_owned(),
        );
        diverge(
            "regs",
            format!("{:?}", full_snap.core.regs),
            format!("{:?}", elided_snap.core.regs),
        );
        diverge("icc", full_snap.core.icc.to_string(), elided_snap.core.icc.to_string());
        diverge(
            "pc",
            format!("{:#010x}", full_snap.core.pc),
            format!("{:#010x}", elided_snap.core.pc),
        );
        diverge(
            "npc",
            format!("{:#010x}", full_snap.core.npc),
            format!("{:#010x}", elided_snap.core.npc),
        );
        if full_snap.mem_pages != elided_snap.mem_pages {
            diverge(
                "memory",
                format!("{} dirty pages", full_snap.mem_pages.len()),
                format!("{} dirty pages (contents differ)", elided_snap.mem_pages.len()),
            );
        }
        diverge("shadow", format!("{:?}", full_snap.shadow), format!("{:?}", elided_snap.shadow));
    }

    Ok(ElisionVerdict {
        ext: ext_name.to_string(),
        elided_checks: elided.resilience.elided_checks,
        full_forwarded: full.forward.forwarded,
        elided_forwarded: elided.forward.forwarded,
        divergence,
    })
}

fn which(elide: bool) -> &'static str {
    if elide {
        "elided"
    } else {
        "full"
    }
}

/// The extensions whose checks the table can discharge, in
/// presentation order — what `flexcheck --verify-elision` sweeps.
pub const ELIDABLE_EXTENSIONS: [&str; 3] = ["umc", "dift", "cfi"];

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_workloads::Workload;

    #[test]
    fn bitcount_table_has_all_three_classes() {
        let program = Workload::bitcount().program().expect("assembles");
        let (table, summary) = build_elision_table(&program);
        assert!(summary.umc_pcs > 0, "dataflow proves some loads");
        assert!(summary.cfi_pcs > 0, "CFG recovers static branch/call sites");
        assert!(!table.is_empty());
        assert_eq!(
            table.pcs_with(ELIDE_UMC).count(),
            summary.umc_pcs,
            "summary counts match table contents"
        );
    }

    #[test]
    fn verify_is_clean_on_bitcount_for_every_elidable_extension() {
        let program = Workload::bitcount().program().expect("assembles");
        let (table, _) = build_elision_table(&program);
        for ext in ELIDABLE_EXTENSIONS {
            let verdict = verify_elision(&program, ext, &table, 2_000_000).expect("runs complete");
            assert!(
                verdict.is_clean(),
                "{ext} diverged: {}",
                verdict.divergence.unwrap_or_default()
            );
            assert_eq!(
                verdict.elided_forwarded + verdict.elided_checks,
                verdict.full_forwarded,
                "{ext}: every elided check accounts for one unfowarded packet"
            );
        }
    }

    #[test]
    fn elision_discharges_checks_on_bitcount_umc() {
        let program = Workload::bitcount().program().expect("assembles");
        let (table, _) = build_elision_table(&program);
        let verdict = verify_elision(&program, "umc", &table, 2_000_000).expect("runs");
        assert!(verdict.elided_checks > 0, "proven loads actually elide UMC checks");
    }
}
