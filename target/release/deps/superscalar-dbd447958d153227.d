/root/repo/target/release/deps/superscalar-dbd447958d153227.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/release/deps/superscalar-dbd447958d153227: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
