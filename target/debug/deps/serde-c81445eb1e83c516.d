/root/repo/target/debug/deps/serde-c81445eb1e83c516.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-c81445eb1e83c516.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
