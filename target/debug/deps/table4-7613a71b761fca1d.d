/root/repo/target/debug/deps/table4-7613a71b761fca1d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-7613a71b761fca1d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
