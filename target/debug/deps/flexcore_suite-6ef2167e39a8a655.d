/root/repo/target/debug/deps/flexcore_suite-6ef2167e39a8a655.d: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-6ef2167e39a8a655.rmeta: src/lib.rs

src/lib.rs:
