/root/repo/target/release/deps/table4-bc32251b2d499d5d.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-bc32251b2d499d5d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
