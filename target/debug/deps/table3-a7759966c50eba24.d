/root/repo/target/debug/deps/table3-a7759966c50eba24.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-a7759966c50eba24: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
