//! Disassemble → reassemble round-trip property: for (almost) every
//! instruction the ISA can represent, printing it with the
//! disassembler and feeding the text back through the assembler
//! reproduces the identical instruction.
//!
//! Exclusions, by construction of the generators:
//!
//! * `Trap` with a register second operand and `%g0` base — the
//!   disassembler prints the value-equivalent `t<cond> %reg` form,
//!   which reparses with the fields swapped;
//! * memory operands with `%g0` as the index register — printed as
//!   `[%base]`, which reparses as a zero immediate (value-equivalent).

use flexcore_asm::assemble;
use flexcore_isa::{decode, encode, Cond, Instruction, Opcode, Operand2, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_nonzero_reg() -> impl Strategy<Value = Reg> {
    (1u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_operand2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        arb_nonzero_reg().prop_map(Operand2::Reg),
        (-4096i32..=4095).prop_map(Operand2::Imm),
    ]
}

fn arb_alu() -> impl Strategy<Value = Instruction> {
    use Opcode::*;
    let ops = vec![
        Add, And, Or, Xor, Sub, Andn, Orn, Xnor, Addcc, Andcc, Orcc, Xorcc, Subcc, Andncc, Orncc,
        Xnorcc, Umul, Smul, Udiv, Sdiv, Sll, Srl, Sra, Save, Restore,
    ];
    (prop::sample::select(ops), arb_reg(), arb_reg(), arb_operand2())
        .prop_map(|(op, rs1, rd, op2)| Instruction::Alu { op, rd, rs1, op2 })
}

fn arb_mem() -> impl Strategy<Value = Instruction> {
    use Opcode::*;
    let ops = vec![Ld, Ldub, Lduh, Ldsb, Ldsh, St, Stb, Sth, Ldd, Std, Swap];
    (prop::sample::select(ops), arb_reg(), arb_reg(), arb_operand2())
        .prop_map(|(op, rd, rs1, op2)| Instruction::Mem { op, rd, rs1, op2 })
}

fn arb_other() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, imm22)| Instruction::Sethi { rd, imm22 }),
        (0u8..16, any::<bool>(), -256i32..256).prop_map(|(c, annul, disp22)| {
            Instruction::Branch { cond: Cond::from_bits(c), annul, disp22 }
        }),
        (-256i32..256).prop_map(|disp30| Instruction::Call { disp30 }),
        (arb_reg(), arb_reg(), arb_operand2()).prop_map(|(rd, rs1, op2)| Instruction::Jmpl {
            rd,
            rs1,
            op2
        }),
        // Traps: immediate second operand only (see module docs).
        (0u8..16, arb_reg(), -4096i32..=4095).prop_map(|(c, rs1, imm)| Instruction::Trap {
            cond: Cond::from_bits(c),
            rs1,
            op2: Operand2::Imm(imm),
        }),
        (1u8..=2, 0u16..512, arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(space, opc, rd, rs1, rs2)| Instruction::Cpop { space, opc, rd, rs1, rs2 }),
    ]
}

fn roundtrip(inst: Instruction) -> Result<Instruction, String> {
    let text = inst.to_string();
    // Branch/call displacements are PC-relative: place the instruction
    // far enough from 0 that negative displacements stay in range.
    let program = assemble(&format!(".org 0x10000\n{text}")).map_err(|e| format!("{text}: {e}"))?;
    decode(program.words()[0]).map_err(|e| format!("{text}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn alu_round_trips(inst in arb_alu()) {
        prop_assert_eq!(roundtrip(inst).unwrap(), inst);
    }

    #[test]
    fn mem_round_trips(inst in arb_mem()) {
        prop_assert_eq!(roundtrip(inst).unwrap(), inst);
    }

    #[test]
    fn control_and_misc_round_trip(inst in arb_other()) {
        prop_assert_eq!(roundtrip(inst).unwrap(), inst);
    }

    /// The full tool chain closes: encode → decode → disassemble →
    /// reassemble ends on the *identical machine word*, so no tool in
    /// the loop loses or invents a field.
    #[test]
    fn full_tool_chain_reproduces_the_word(
        inst in prop_oneof![arb_alu(), arb_mem(), arb_other()],
    ) {
        let word = encode(&inst);
        let text = decode(word).unwrap().to_string();
        let program = assemble(&format!(".org 0x10000\n{text}"))
            .unwrap_or_else(|e| panic!("`{text}` does not reassemble: {e}"));
        prop_assert_eq!(program.words()[0], word, "via `{}`", text);
    }
}

#[test]
fn pseudo_forms_round_trip() {
    for inst in [
        Instruction::nop(),
        Instruction::Jmpl { rd: Reg::G0, rs1: Reg::I7, op2: Operand2::Imm(8) }, // ret
        Instruction::Jmpl { rd: Reg::G0, rs1: Reg::O7, op2: Operand2::Imm(8) }, // retl
    ] {
        assert_eq!(roundtrip(inst).unwrap(), inst, "{inst}");
    }
}

#[test]
fn dot_relative_targets_resolve_against_the_instruction_address() {
    let p = assemble(
        ".org 0x2000
        start: ba .+12
               nop
               ta 1
               ta 0",
    )
    .unwrap();
    let w = p.words();
    let Instruction::Branch { disp22, .. } = decode(w[0]).unwrap() else { panic!() };
    assert_eq!(disp22, 3);
}
