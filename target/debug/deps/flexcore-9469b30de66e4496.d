/root/repo/target/debug/deps/flexcore-9469b30de66e4496.d: crates/flexcore/src/lib.rs crates/flexcore/src/ext/mod.rs crates/flexcore/src/ext/bc.rs crates/flexcore/src/ext/dift.rs crates/flexcore/src/ext/mprot.rs crates/flexcore/src/ext/sec.rs crates/flexcore/src/ext/umc.rs crates/flexcore/src/faults.rs crates/flexcore/src/interface/mod.rs crates/flexcore/src/interface/cfgr.rs crates/flexcore/src/interface/fifo.rs crates/flexcore/src/obs/mod.rs crates/flexcore/src/obs/chrome.rs crates/flexcore/src/obs/event.rs crates/flexcore/src/obs/flight.rs crates/flexcore/src/obs/metrics.rs crates/flexcore/src/obs/sink.rs crates/flexcore/src/software.rs crates/flexcore/src/error.rs crates/flexcore/src/shadow.rs crates/flexcore/src/stats.rs crates/flexcore/src/system.rs

/root/repo/target/debug/deps/libflexcore-9469b30de66e4496.rmeta: crates/flexcore/src/lib.rs crates/flexcore/src/ext/mod.rs crates/flexcore/src/ext/bc.rs crates/flexcore/src/ext/dift.rs crates/flexcore/src/ext/mprot.rs crates/flexcore/src/ext/sec.rs crates/flexcore/src/ext/umc.rs crates/flexcore/src/faults.rs crates/flexcore/src/interface/mod.rs crates/flexcore/src/interface/cfgr.rs crates/flexcore/src/interface/fifo.rs crates/flexcore/src/obs/mod.rs crates/flexcore/src/obs/chrome.rs crates/flexcore/src/obs/event.rs crates/flexcore/src/obs/flight.rs crates/flexcore/src/obs/metrics.rs crates/flexcore/src/obs/sink.rs crates/flexcore/src/software.rs crates/flexcore/src/error.rs crates/flexcore/src/shadow.rs crates/flexcore/src/stats.rs crates/flexcore/src/system.rs

crates/flexcore/src/lib.rs:
crates/flexcore/src/ext/mod.rs:
crates/flexcore/src/ext/bc.rs:
crates/flexcore/src/ext/dift.rs:
crates/flexcore/src/ext/mprot.rs:
crates/flexcore/src/ext/sec.rs:
crates/flexcore/src/ext/umc.rs:
crates/flexcore/src/faults.rs:
crates/flexcore/src/interface/mod.rs:
crates/flexcore/src/interface/cfgr.rs:
crates/flexcore/src/interface/fifo.rs:
crates/flexcore/src/obs/mod.rs:
crates/flexcore/src/obs/chrome.rs:
crates/flexcore/src/obs/event.rs:
crates/flexcore/src/obs/flight.rs:
crates/flexcore/src/obs/metrics.rs:
crates/flexcore/src/obs/sink.rs:
crates/flexcore/src/software.rs:
crates/flexcore/src/error.rs:
crates/flexcore/src/shadow.rs:
crates/flexcore/src/stats.rs:
crates/flexcore/src/system.rs:
