//! A functional (untimed) reference interpreter for the modeled
//! SPARC-V8 subset.
//!
//! This is the golden model behind lockstep verification: an
//! independent, instruction-at-a-time executor with *no* pipeline,
//! cache, bus, or store-buffer state — only architectural state. It is
//! deliberately written against the ISA manual semantics rather than
//! sharing code with the cycle-level core, so a bug in one model shows
//! up as a divergence instead of being reproduced in both.
//!
//! The interpreter is generic over a [`Memory32`] byte store so callers
//! can run it against any memory image (the lockstep checker keeps its
//! own private copy of main memory).
//!
//! # Example
//!
//! ```
//! use flexcore_isa::interp::{ByteMap, RefCore, RefStep};
//!
//! // sethi %hi(0x40000000), %g1 ; ta 0  (plus a delay-slot nop)
//! let words: [u32; 3] = [0x0310_0000, 0x91d0_2000, 0x0100_0000];
//! let mut mem = ByteMap::default();
//! for (i, w) in words.iter().enumerate() {
//!     mem.store_word(i as u32 * 4, *w);
//! }
//! let mut core = RefCore::new(0);
//! assert!(matches!(core.step(&mut mem), RefStep::Committed(_)));
//! ```

use std::collections::HashMap;

use crate::{decode, Cond, IccFlags, Instruction, Opcode, Operand2, Reg, NUM_REGS};

/// Byte-addressed 32-bit memory as the reference model sees it.
///
/// Only byte access is required; the halfword/word helpers default to
/// big-endian composition, matching SPARC.
pub trait Memory32 {
    /// Reads one byte.
    fn read_u8(&self, addr: u32) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, addr: u32, value: u8);

    /// Reads a big-endian halfword.
    fn read_u16(&self, addr: u32) -> u16 {
        u16::from(self.read_u8(addr)) << 8 | u16::from(self.read_u8(addr.wrapping_add(1)))
    }

    /// Reads a big-endian word.
    fn read_u32(&self, addr: u32) -> u32 {
        u32::from(self.read_u16(addr)) << 16 | u32::from(self.read_u16(addr.wrapping_add(2)))
    }

    /// Writes a big-endian halfword.
    fn write_u16(&mut self, addr: u32, value: u16) {
        self.write_u8(addr, (value >> 8) as u8);
        self.write_u8(addr.wrapping_add(1), value as u8);
    }

    /// Writes a big-endian word.
    fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_u16(addr, (value >> 16) as u16);
        self.write_u16(addr.wrapping_add(2), value as u16);
    }
}

/// A simple sparse byte map — enough memory for tests and doctests.
#[derive(Clone, Debug, Default)]
pub struct ByteMap {
    bytes: HashMap<u32, u8>,
}

impl ByteMap {
    /// Stores a big-endian word (convenience for building test images).
    pub fn store_word(&mut self, addr: u32, value: u32) {
        self.write_u32(addr, value);
    }
}

impl Memory32 for ByteMap {
    fn read_u8(&self, addr: u32) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.bytes.insert(addr, value);
    }
}

/// Memory-mapped console device base, mirroring the platform layout
/// used by the cycle-level model: stores at or above this address print
/// a byte, loads are side-effect-free and do not write a register.
pub const CONSOLE_BASE: u32 = 0xffff_0000;

/// Initial `%sp`/`%fp` after [`RefCore::new`], mirroring the platform's
/// stack layout (grows down).
pub const STACK_TOP: u32 = 0x00ff_fff0;

/// Why the reference model stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefExit {
    /// A taken trap; carries the software trap number.
    Halt(u32),
    /// An undecodable instruction word.
    IllegalInstruction {
        /// PC of the offending instruction.
        pc: u32,
        /// The word that failed to decode.
        word: u32,
    },
    /// A misaligned memory access or jump target.
    MisalignedAccess {
        /// PC of the offending instruction.
        pc: u32,
        /// The offending address.
        addr: u32,
    },
    /// An integer divide by zero.
    DivideByZero {
        /// PC of the offending instruction.
        pc: u32,
    },
}

/// One committed instruction of the reference model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefCommit {
    /// PC of the committed instruction.
    pub pc: u32,
    /// The fetched instruction word.
    pub inst_word: u32,
    /// The decoded instruction.
    pub inst: Instruction,
}

/// Outcome of a single [`RefCore::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefStep {
    /// An instruction executed and committed.
    Committed(RefCommit),
    /// The delay-slot instruction was annulled (no architectural
    /// effect; the cycle-level core reports these too).
    Annulled,
    /// Execution stopped.
    Exited(RefExit),
}

/// The untimed architectural reference core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefCore {
    regs: [u32; NUM_REGS],
    icc: IccFlags,
    pc: u32,
    npc: u32,
    annul_next: bool,
    exited: Option<RefExit>,
    console: Vec<u8>,
}

impl RefCore {
    /// A reference core in reset state pointed at `entry`, with
    /// `%sp`/`%fp` at [`STACK_TOP`].
    pub fn new(entry: u32) -> RefCore {
        let mut regs = [0; NUM_REGS];
        regs[Reg::SP.index()] = STACK_TOP;
        regs[Reg::FP.index()] = STACK_TOP;
        RefCore {
            regs,
            icc: IccFlags::default(),
            pc: entry,
            npc: entry.wrapping_add(4),
            annul_next: false,
            exited: None,
            console: Vec::new(),
        }
    }

    /// A reference core synchronized to an externally captured
    /// architectural state (used to attach a golden model mid-run,
    /// e.g. after a checkpoint restore).
    pub fn synced(regs: [u32; NUM_REGS], icc: IccFlags, pc: u32, npc: u32, annul: bool) -> RefCore {
        RefCore { regs, icc, pc, npc, annul_next: annul, exited: None, console: Vec::new() }
    }

    /// Reads an architectural register (`%g0` reads as zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `%g0` are ignored).
    ///
    /// Also the reconciliation hook for platform-defined register
    /// writes the ISA does not specify (the FlexCore BFIFO
    /// "read from co-processor" result adopted from the device).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The full register file, `%g0` first.
    pub fn regs(&self) -> &[u32; NUM_REGS] {
        &self.regs
    }

    /// Current condition codes.
    pub fn icc(&self) -> IccFlags {
        self.icc
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Next program counter (the delay-slot window).
    pub fn npc(&self) -> u32 {
        self.npc
    }

    /// Why execution stopped, if it has.
    pub fn exit_reason(&self) -> Option<RefExit> {
        self.exited
    }

    /// Console bytes produced so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    fn operand2(&self, op2: Operand2) -> u32 {
        match op2 {
            Operand2::Reg(r) => self.reg(r),
            Operand2::Imm(i) => i as u32,
        }
    }

    fn exit(&mut self, reason: RefExit) -> RefStep {
        self.exited = Some(reason);
        RefStep::Exited(reason)
    }

    /// Executes one instruction against `mem`.
    pub fn step<M: Memory32>(&mut self, mem: &mut M) -> RefStep {
        if let Some(reason) = self.exited {
            return RefStep::Exited(reason);
        }
        let pc = self.pc;
        let word = mem.read_u32(pc);

        // Default control flow: slide the delay-slot window.
        let next_pc = self.npc;
        let mut next_npc = self.npc.wrapping_add(4);

        if std::mem::take(&mut self.annul_next) {
            self.pc = next_pc;
            self.npc = next_npc;
            return RefStep::Annulled;
        }

        let inst = match decode(word) {
            Ok(i) => i,
            Err(_) => return self.exit(RefExit::IllegalInstruction { pc, word }),
        };

        match inst {
            Instruction::Alu { op, rd, rs1, op2 } => {
                let a = self.reg(rs1);
                let b = self.operand2(op2);
                let Some((value, icc)) = ref_alu(op, a, b, self.icc) else {
                    return self.exit(RefExit::DivideByZero { pc });
                };
                self.set_reg(rd, value);
                self.icc = icc;
            }
            Instruction::Sethi { rd, imm22 } => {
                self.set_reg(rd, imm22 << 10);
            }
            Instruction::Branch { cond, annul, disp22 } => {
                let taken = cond.eval(self.icc);
                if taken {
                    next_npc = pc.wrapping_add((disp22 as u32) << 2);
                }
                if annul && (cond.is_unconditional() || !taken) {
                    self.annul_next = true;
                }
            }
            Instruction::Call { disp30 } => {
                self.set_reg(Reg::O7, pc);
                next_npc = pc.wrapping_add((disp30 as u32) << 2);
            }
            Instruction::Jmpl { rd, rs1, op2 } => {
                let target = self.reg(rs1).wrapping_add(self.operand2(op2));
                if !target.is_multiple_of(4) {
                    return self.exit(RefExit::MisalignedAccess { pc, addr: target });
                }
                self.set_reg(rd, pc);
                next_npc = target;
            }
            Instruction::Trap { cond, rs1, op2 } => {
                if cond.eval(self.icc) {
                    let tn = self.reg(rs1).wrapping_add(self.operand2(op2)) & 0x7f;
                    return self.exit(RefExit::Halt(tn));
                }
            }
            Instruction::Cpop { .. } => {
                // Co-processor ops are architecturally transparent; a
                // platform that returns a value into a register does so
                // through `set_reg` reconciliation.
            }
            Instruction::Mem { op, rd, rs1, op2 } => {
                if let Some(r) = self.memory_op(mem, pc, word, op, rd, rs1, op2) {
                    return r;
                }
            }
        }

        self.pc = next_pc;
        self.npc = next_npc;
        RefStep::Committed(RefCommit { pc, inst_word: word, inst })
    }

    /// Loads and stores. Returns `Some(exit)` on a fault, `None` on
    /// success.
    #[allow(clippy::too_many_arguments)]
    fn memory_op<M: Memory32>(
        &mut self,
        mem: &mut M,
        pc: u32,
        word: u32,
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        op2: Operand2,
    ) -> Option<RefStep> {
        let ea = self.reg(rs1).wrapping_add(self.operand2(op2));
        let bytes = op.access_bytes().expect("memory opcode");
        if !ea.is_multiple_of(bytes) {
            return Some(self.exit(RefExit::MisalignedAccess { pc, addr: ea }));
        }
        if matches!(op, Opcode::Ldd | Opcode::Std) && !rd.index().is_multiple_of(2) {
            return Some(self.exit(RefExit::IllegalInstruction { pc, word }));
        }
        if ea >= CONSOLE_BASE {
            // Memory-mapped console: stores print a byte, loads are
            // side-effect-free and leave rd untouched.
            if op.is_store() {
                self.console.push(self.reg(rd) as u8);
            }
            return None;
        }
        match op {
            Opcode::Swap => {
                let old = mem.read_u32(ea);
                mem.write_u32(ea, self.reg(rd));
                self.set_reg(rd, old);
            }
            Opcode::Std => {
                let lo = Reg::new(rd.index() as u8 & !1).unwrap_or(rd);
                let hi = Reg::new(rd.index() as u8 | 1).unwrap_or(rd);
                mem.write_u32(ea, self.reg(lo));
                mem.write_u32(ea.wrapping_add(4), self.reg(hi));
            }
            Opcode::St => mem.write_u32(ea, self.reg(rd)),
            Opcode::Sth => mem.write_u16(ea, self.reg(rd) as u16),
            Opcode::Stb => mem.write_u8(ea, self.reg(rd) as u8),
            Opcode::Ldd => {
                let lo = Reg::new(rd.index() as u8 & !1).unwrap_or(rd);
                let hi = Reg::new(rd.index() as u8 | 1).unwrap_or(rd);
                let v1 = mem.read_u32(ea);
                let v2 = mem.read_u32(ea.wrapping_add(4));
                self.set_reg(lo, v1);
                self.set_reg(hi, v2);
            }
            Opcode::Ld => {
                let v = mem.read_u32(ea);
                self.set_reg(rd, v);
            }
            Opcode::Lduh => {
                let v = u32::from(mem.read_u16(ea));
                self.set_reg(rd, v);
            }
            Opcode::Ldsh => {
                let v = mem.read_u16(ea) as i16 as i32 as u32;
                self.set_reg(rd, v);
            }
            Opcode::Ldub => {
                let v = u32::from(mem.read_u8(ea));
                self.set_reg(rd, v);
            }
            Opcode::Ldsb => {
                let v = mem.read_u8(ea) as i8 as i32 as u32;
                self.set_reg(rd, v);
            }
            _ => unreachable!("non-memory opcode routed to memory_op"),
        }
        None
    }
}

/// ALU reference semantics per the V8 manual: returns the result and
/// the (possibly unchanged) condition codes, or `None` for a divide by
/// zero.
///
/// Public so value analyses (constant propagation in
/// `flexcore-analysis`) evaluate ALU ops with exactly the golden-model
/// semantics instead of re-deriving them.
pub fn ref_alu(op: Opcode, a: u32, b: u32, icc: IccFlags) -> Option<(u32, IccFlags)> {
    fn nz(value: u32) -> (bool, bool) {
        ((value as i32) < 0, value == 0)
    }
    fn logic_icc(value: u32) -> IccFlags {
        let (n, z) = nz(value);
        IccFlags { n, z, v: false, c: false }
    }
    let out = match op {
        Opcode::Add | Opcode::Save | Opcode::Restore => (a.wrapping_add(b), icc),
        Opcode::Addcc => {
            let (value, c) = a.overflowing_add(b);
            let (n, z) = nz(value);
            // Signed overflow: operands agree in sign, result differs.
            let v = ((a ^ !b) & (a ^ value)) >> 31 != 0;
            (value, IccFlags { n, z, v, c })
        }
        Opcode::Sub => (a.wrapping_sub(b), icc),
        Opcode::Subcc => {
            let (value, c) = a.overflowing_sub(b);
            let (n, z) = nz(value);
            let v = ((a ^ b) & (a ^ value)) >> 31 != 0;
            (value, IccFlags { n, z, v, c })
        }
        Opcode::And => (a & b, icc),
        Opcode::Andcc => (a & b, logic_icc(a & b)),
        Opcode::Andn => (a & !b, icc),
        Opcode::Andncc => (a & !b, logic_icc(a & !b)),
        Opcode::Or => (a | b, icc),
        Opcode::Orcc => (a | b, logic_icc(a | b)),
        Opcode::Orn => (a | !b, icc),
        Opcode::Orncc => (a | !b, logic_icc(a | !b)),
        Opcode::Xor => (a ^ b, icc),
        Opcode::Xorcc => (a ^ b, logic_icc(a ^ b)),
        Opcode::Xnor => (!(a ^ b), icc),
        Opcode::Xnorcc => (!(a ^ b), logic_icc(!(a ^ b))),
        Opcode::Sll => (a << (b & 31), icc),
        Opcode::Srl => (a >> (b & 31), icc),
        Opcode::Sra => (((a as i32) >> (b & 31)) as u32, icc),
        Opcode::Umul => (a.wrapping_mul(b), icc),
        Opcode::Smul => ((a as i32).wrapping_mul(b as i32) as u32, icc),
        Opcode::Udiv => {
            if b == 0 {
                return None;
            }
            (a / b, icc)
        }
        Opcode::Sdiv => {
            if b == 0 {
                return None;
            }
            ((a as i32).wrapping_div(b as i32) as u32, icc)
        }
        _ => unreachable!("non-ALU opcode routed to ref_alu"),
    };
    Some(out)
}

/// Evaluates a branch condition against flags — re-exported shim so the
/// checker can reason about control flow without reaching into `Cond`.
pub fn branch_taken(cond: Cond, icc: IccFlags) -> bool {
    cond.eval(icc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    fn image(insts: &[Instruction]) -> ByteMap {
        let mut mem = ByteMap::default();
        for (i, inst) in insts.iter().enumerate() {
            mem.store_word(i as u32 * 4, encode(inst));
        }
        mem
    }

    fn run(core: &mut RefCore, mem: &mut ByteMap, max: usize) -> RefExit {
        for _ in 0..max {
            if let RefStep::Exited(e) = core.step(mem) {
                return e;
            }
        }
        panic!("reference model did not exit in {max} steps");
    }

    #[test]
    fn add_and_halt() {
        let mut mem = image(&[
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G1, Operand2::Imm(7)),
            Instruction::alu(Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(35)),
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ]);
        let mut core = RefCore::new(0);
        assert_eq!(run(&mut core, &mut mem, 10), RefExit::Halt(0));
        assert_eq!(core.reg(Reg::G2), 42);
    }

    #[test]
    fn subcc_sets_flags_like_a_comparison() {
        let mut mem = image(&[
            Instruction::alu(Opcode::Subcc, Reg::G0, Reg::G0, Operand2::Imm(1)),
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ]);
        let mut core = RefCore::new(0);
        run(&mut core, &mut mem, 10);
        // 0 - 1: negative, borrow set, no overflow, not zero.
        assert!(core.icc().n);
        assert!(core.icc().c);
        assert!(!core.icc().z);
        assert!(!core.icc().v);
    }

    #[test]
    fn annulled_delay_slot_skips_execution() {
        // ba,a over a would-be register write: the slot must not
        // execute.
        let mut mem = image(&[
            Instruction::Branch { cond: Cond::A, annul: true, disp22: 2 },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G5, Operand2::Imm(99)),
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G6, Operand2::Imm(1)),
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ]);
        let mut core = RefCore::new(0);
        run(&mut core, &mut mem, 10);
        assert_eq!(core.reg(Reg::G5), 0, "annulled slot must not execute");
        assert_eq!(core.reg(Reg::G6), 1, "branch target must execute");
    }

    #[test]
    fn delay_slot_executes_on_taken_branch() {
        let mut mem = image(&[
            Instruction::Branch { cond: Cond::A, annul: false, disp22: 2 },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G5, Operand2::Imm(5)),
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ]);
        let mut core = RefCore::new(0);
        run(&mut core, &mut mem, 10);
        assert_eq!(core.reg(Reg::G5), 5, "delay slot of a taken branch executes");
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let mut mem = ByteMap::default();
        mem.write_u32(0x100, 0xff80_7f01);
        let prog = [
            // g1 = 0x100 base
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G1, Operand2::Imm(0x100)),
            Instruction::Mem { op: Opcode::Ldsb, rd: Reg::G2, rs1: Reg::G1, op2: Operand2::Imm(0) },
            Instruction::Mem { op: Opcode::Ldub, rd: Reg::G3, rs1: Reg::G1, op2: Operand2::Imm(0) },
            Instruction::Mem { op: Opcode::Ldsh, rd: Reg::G4, rs1: Reg::G1, op2: Operand2::Imm(0) },
            Instruction::Mem { op: Opcode::Lduh, rd: Reg::G5, rs1: Reg::G1, op2: Operand2::Imm(2) },
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ];
        for (i, inst) in prog.iter().enumerate() {
            mem.store_word(i as u32 * 4, encode(inst));
        }
        let mut core = RefCore::new(0);
        run(&mut core, &mut mem, 20);
        assert_eq!(core.reg(Reg::G2), 0xffff_ffff, "ldsb sign-extends");
        assert_eq!(core.reg(Reg::G3), 0xff, "ldub zero-extends");
        assert_eq!(core.reg(Reg::G4), 0xffff_ff80, "ldsh sign-extends");
        assert_eq!(core.reg(Reg::G5), 0x7f01, "lduh zero-extends");
    }

    #[test]
    fn console_store_prints_and_load_is_inert() {
        let mut mem = ByteMap::default();
        let prog = [
            // g1 = console base (sethi puts 0xffff_0000 >> 10 << 10)
            Instruction::Sethi { rd: Reg::G1, imm22: CONSOLE_BASE >> 10 },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G2, Operand2::Imm(b'A' as i32)),
            Instruction::Mem { op: Opcode::Stb, rd: Reg::G2, rs1: Reg::G1, op2: Operand2::Imm(0) },
            Instruction::Mem { op: Opcode::Ldub, rd: Reg::G3, rs1: Reg::G1, op2: Operand2::Imm(0) },
            Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) },
            Instruction::alu(Opcode::Add, Reg::G0, Reg::G0, Operand2::Imm(0)),
        ];
        for (i, inst) in prog.iter().enumerate() {
            mem.store_word(i as u32 * 4, encode(inst));
        }
        let mut core = RefCore::new(0);
        run(&mut core, &mut mem, 20);
        assert_eq!(core.console(), b"A");
        assert_eq!(core.reg(Reg::G3), 0, "console load writes no register");
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut mem = image(&[Instruction::alu(Opcode::Udiv, Reg::G1, Reg::G2, Operand2::Imm(0))]);
        let mut core = RefCore::new(0);
        assert_eq!(run(&mut core, &mut mem, 2), RefExit::DivideByZero { pc: 0 });
    }

    #[test]
    fn synced_core_resumes_mid_stream() {
        let mut regs = [0u32; NUM_REGS];
        regs[Reg::G1.index()] = 77;
        let core = RefCore::synced(regs, IccFlags::default(), 0x40, 0x44, false);
        assert_eq!(core.pc(), 0x40);
        assert_eq!(core.reg(Reg::G1), 77);
        assert_eq!(core.reg(Reg::G0), 0);
    }
}
