/root/repo/target/debug/deps/fabric_models-f1857e90a85ab65a.d: crates/bench/benches/fabric_models.rs

/root/repo/target/debug/deps/libfabric_models-f1857e90a85ab65a.rmeta: crates/bench/benches/fabric_models.rs

crates/bench/benches/fabric_models.rs:
