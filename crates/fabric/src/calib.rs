//! Calibration constants for the 65-nm cost models.
//!
//! Every constant is documented with its source. Constants marked
//! *calibrated* were fitted once against a row of the paper's Table III
//! so that the *derived* numbers (everything else this crate computes)
//! land in the right regime; they are never re-fitted per experiment.

/// Area of one 6-input LUT at 65 nm, from the Kuon–Rose FPGA area model
/// the paper uses (§V.A): a CLB tile with 10 6-LUTs is ≈ 8,069 µm², so
/// ≈ 807 µm² per LUT including its share of routing.
pub const LUT_AREA_UM2: f64 = 807.0;

/// FPGA dynamic power per LUT per MHz at the paper's fixed toggle rate
/// of 0.1 and static probability 0.5, in µW. *Calibrated* against the
/// average of Table III's four fabric rows (21–36 mW at 213–266 MHz)
/// given this mapper's LUT counts.
pub const FPGA_DYN_UW_PER_LUT_MHZ: f64 = 0.28;

/// Fixed (clock tree + flop + global routing) component of the fabric
/// critical path, ps. *Calibrated* jointly with [`FPGA_PS_PER_LEVEL`]
/// so that extension netlists of LUT depth ≈ 7–10 land in the paper's
/// 213–266 MHz band.
pub const FPGA_PS_BASE: f64 = 1580.0;

/// Per-LUT-level delay (LUT + interconnect) on the Virtex-5-class
/// fabric, ps.
pub const FPGA_PS_PER_LEVEL: f64 = 310.0;

/// Area of one NAND2-equivalent standard cell at 65 nm, µm²
/// (typical commercial 65-nm libraries: 1.0–1.4 µm²).
pub const NAND2_AREA_UM2: f64 = 1.06;

/// ASIC dynamic power per NAND2-equivalent per MHz at toggle rate 0.1,
/// µW (≈ 2 nW/MHz per gate, typical for 65-nm standard cells at this
/// toggle rate; keeps the SEC ASIC power overhead near the paper's
/// ≈ 0%).
pub const ASIC_DYN_UW_PER_GE_MHZ: f64 = 0.002;

/// ASIC SRAM macro area per bit (small arrays, including periphery),
/// µm². *Calibrated* so that the 4-KB meta-data cache plus the forward
/// FIFO reproduce the 12–20% ASIC area overheads of Table III.
pub const SRAM_UM2_PER_BIT: f64 = 2.0;

/// Multi-ported register-file area per bit (memory-compiler output, as
/// the paper's shadow register file), µm².
pub const REGFILE_UM2_PER_BIT: f64 = 4.0;

/// FIFO storage area per bit (SRAM cell plus pointer/flag control),
/// µm².
pub const FIFO_UM2_PER_BIT: f64 = 2.0;

/// FIFO peripheral area per bit of *entry width* (sense amps, write
/// drivers, CDC synchronizers), µm². The paper observes that FIFO area
/// grows only ~10% from 16 to 64 entries "because of the SRAM
/// peripheral circuits" (§V.C) — the periphery, proportional to entry
/// width and not depth, dominates. *Calibrated* jointly with
/// [`SRAM_UM2_PER_BIT`] so the dedicated FlexCore modules land near the
/// paper's 32.5% area overhead.
pub const FIFO_PERIPHERY_PER_WIDTH_UM2: f64 = 550.0;

/// SRAM/FIFO/regfile dynamic power per bit per MHz at toggle 0.1, µW.
/// *Calibrated* so the meta-data cache + FIFO account for most of the
/// ~23 mW ASIC extension power overhead in Table III.
pub const SRAM_UW_PER_BIT_MHZ: f64 = 0.0011;

/// ASIC flop-to-flop overhead (setup + clk-to-q), ps.
pub const ASIC_PS_BASE: f64 = 150.0;

/// ASIC per-gate-level delay at 65 nm, ps.
pub const ASIC_PS_PER_LEVEL: f64 = 35.0;

/// Baseline Leon3 with 32-KB L1 caches, from the paper's Table III:
/// area in µm².
pub const LEON3_AREA_UM2: f64 = 835_525.0;

/// Baseline Leon3 power, mW (Table III).
pub const LEON3_POWER_MW: f64 = 365.0;

/// Baseline Leon3 maximum frequency, MHz (Table III).
pub const LEON3_FMAX_MHZ: f64 = 465.0;

/// Fractional frequency penalty on the main core from tapping its
/// pipeline registers with an extension of `ge` NAND2-equivalents of
/// attached logic. Approximates Table III's observed 0.4–2% drops:
/// a small fixed wire-load penalty plus a saturating size term.
pub fn core_tap_penalty(ge: f64) -> f64 {
    0.005 + 0.015 * (ge / (ge + 5000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_penalty_is_small_and_monotonic() {
        let small = core_tap_penalty(500.0);
        let big = core_tap_penalty(50_000.0);
        assert!(small > 0.004 && small < 0.01, "{small}");
        assert!(big > small && big < 0.021, "{big}");
    }

    #[test]
    fn lut_area_matches_kuon_rose_tile() {
        // 10 LUTs per CLB tile of 8,069 µm².
        assert!((LUT_AREA_UM2 * 10.0 - 8069.0).abs() < 10.0);
    }

    #[test]
    fn fpga_frequency_band_for_typical_depths() {
        // The extension netlists map to LUT depths 6..=11; those should
        // land roughly in the paper's 213-266 MHz band.
        for depth in 6..=11 {
            let period = FPGA_PS_BASE + FPGA_PS_PER_LEVEL * depth as f64;
            let mhz = 1.0e6 / period;
            assert!((190.0..330.0).contains(&mhz), "depth {depth}: {mhz} MHz");
        }
    }
}
