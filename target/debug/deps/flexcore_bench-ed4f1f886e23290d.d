/root/repo/target/debug/deps/flexcore_bench-ed4f1f886e23290d.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-ed4f1f886e23290d.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
