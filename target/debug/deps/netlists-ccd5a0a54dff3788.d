/root/repo/target/debug/deps/netlists-ccd5a0a54dff3788.d: crates/flexcore/tests/netlists.rs

/root/repo/target/debug/deps/netlists-ccd5a0a54dff3788: crates/flexcore/tests/netlists.rs

crates/flexcore/tests/netlists.rs:
