/root/repo/target/debug/deps/golden-0f631bdabe3c87a4.d: crates/pipeline/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-0f631bdabe3c87a4.rmeta: crates/pipeline/tests/golden.rs Cargo.toml

crates/pipeline/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
