/root/repo/target/debug/examples/dift_attack-cd5e7d1a5bc42ce5.d: examples/dift_attack.rs Cargo.toml

/root/repo/target/debug/examples/libdift_attack-cd5e7d1a5bc42ce5.rmeta: examples/dift_attack.rs Cargo.toml

examples/dift_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
