//! The event taxonomy emitted by the [`System`](crate::System) hook
//! points.

use flexcore_isa::InstrClass;

/// One instrumentation event, stamped in core-clock cycles.
///
/// Events are small `Copy` scalars so constructing one is cheap even
/// when a sink is installed; with the default
/// [`NullSink`](crate::obs::NullSink) the construction is guarded by
/// [`TraceSink::ENABLED`](crate::obs::TraceSink::ENABLED) and compiled
/// out entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction committed.
    Commit {
        /// Core-clock cycle of the commit.
        cycle: u64,
        /// PC of the committed instruction.
        pc: u32,
        /// Committed-instruction count *after* this commit (1-based).
        instret: u64,
        /// Instruction class.
        class: InstrClass,
    },
    /// A packet passed the forwarding filter and was sent toward the
    /// fabric.
    Forward {
        /// Commit cycle of the forwarded instruction.
        cycle: u64,
        /// Instruction class.
        class: InstrClass,
    },
    /// A packet was dropped instead of forwarded.
    Drop {
        /// Commit cycle of the dropped instruction.
        cycle: u64,
        /// Instruction class.
        class: InstrClass,
        /// `true` when dropped by the
        /// [`DropWithAccounting`](crate::OverflowPolicy::DropWithAccounting)
        /// overflow policy under an `Always` forward policy; `false`
        /// for an `IfNotFull` drop.
        overflow: bool,
    },
    /// An entry was enqueued into the forward FIFO.
    FifoEnqueue {
        /// Cycle of the enqueue (after any commit stall).
        cycle: u64,
        /// Scheduled fabric dequeue cycle of the entry.
        dequeue_at: u64,
        /// Resident entries immediately after the enqueue — the
        /// occupancy sample whose running max equals
        /// [`ForwardStats::peak_occupancy`](crate::ForwardStats::peak_occupancy).
        occupancy: u64,
    },
    /// The commit stage stalled (full FIFO back-pressure, or waiting
    /// for a co-processor acknowledgment).
    CommitStall {
        /// Cycle the stall began.
        cycle: u64,
        /// Cycle the commit stage resumed (`until - cycle` stall
        /// cycles, matching
        /// [`ForwardStats::fifo_stall_cycles`](crate::ForwardStats::fifo_stall_cycles)).
        until: u64,
    },
    /// The fabric processed one forwarded packet.
    FabricSpan {
        /// Cycle the fabric started on the packet.
        start: u64,
        /// Cycle the fabric finished (aligned to the fabric clock).
        end: u64,
        /// PC of the instruction the packet describes.
        pc: u32,
        /// Instruction class.
        class: InstrClass,
        /// Meta-data reads issued while processing.
        meta_reads: u64,
        /// Meta-data writes issued while processing.
        meta_writes: u64,
    },
    /// Meta-data cache misses observed while processing one packet.
    MetaMiss {
        /// Fabric start cycle of the packet that missed.
        cycle: u64,
        /// Number of misses (reads + writes).
        count: u64,
    },
    /// Shared-bus activity on behalf of the fabric while processing one
    /// packet.
    BusGrant {
        /// Fabric start cycle of the packet.
        cycle: u64,
        /// Bus transfers granted to the fabric.
        transfers: u64,
        /// Cycles the fabric waited for the bus.
        wait_cycles: u64,
    },
    /// A bitstream transfer failed validation and was re-transferred.
    BitstreamRetry {
        /// 0-based attempt number that failed.
        attempt: u32,
    },
    /// The fault injector applied one fault.
    FaultInjected {
        /// Commit cycle the fault landed on.
        cycle: u64,
        /// Committed-instruction count at injection.
        instret: u64,
    },
    /// The recovery supervisor restored a checkpoint and resumed
    /// execution (one rung of the escalation ladder).
    Recovery {
        /// Core-clock cycle of the restored snapshot (execution resumes
        /// from here).
        cycle: u64,
        /// Escalation rung that handled the error: 1 = replay, 2 =
        /// replay after a bitstream reload, 3 = degraded-mode entry.
        rung: u32,
    },
    /// The system entered degraded mode: monitoring is bypassed and
    /// commits are counted as unmonitored.
    DegradedEnter {
        /// Core-clock cycle at entry.
        cycle: u64,
    },
    /// A mid-run bitstream hot-swap began quiescing: the commit stage
    /// stalls and the FIFO drains (see [`crate::reconfig`]).
    SwapBegin {
        /// Core-clock cycle the quiesce began.
        cycle: u64,
        /// Committed-instruction boundary the swap was scheduled at.
        instret: u64,
    },
    /// A hot-swap finished rearming: the new extension is live.
    SwapComplete {
        /// Core-clock cycle the new extension went live.
        cycle: u64,
        /// FIFO packets drained during the quiesce.
        drained: u64,
    },
    /// A forwarded-class packet was never enqueued because a static
    /// check-elision table discharged the extension's check at this PC
    /// (see [`ElisionTable`](crate::ElisionTable)).
    CheckElided {
        /// Commit cycle of the elided instruction.
        cycle: u64,
        /// PC whose check was statically discharged.
        pc: u32,
        /// Instruction class.
        class: InstrClass,
    },
    /// A monitor trap was raised (the TRAP signal was scheduled).
    Trap {
        /// Core-clock cycle at which the signal asserts (§III.C: the
        /// exception is imprecise; commits continue until then).
        cycle: u64,
        /// PC of the violating instruction.
        pc: u32,
        /// Committed-instruction count at the violation.
        instret: u64,
    },
}

impl TraceEvent {
    /// The core-clock cycle this event is stamped with (the span start
    /// for [`FabricSpan`](TraceEvent::FabricSpan), 0 for
    /// [`BitstreamRetry`](TraceEvent::BitstreamRetry), which happens
    /// outside simulated time).
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Commit { cycle, .. }
            | TraceEvent::Forward { cycle, .. }
            | TraceEvent::Drop { cycle, .. }
            | TraceEvent::FifoEnqueue { cycle, .. }
            | TraceEvent::CommitStall { cycle, .. }
            | TraceEvent::MetaMiss { cycle, .. }
            | TraceEvent::BusGrant { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::Recovery { cycle, .. }
            | TraceEvent::DegradedEnter { cycle }
            | TraceEvent::SwapBegin { cycle, .. }
            | TraceEvent::SwapComplete { cycle, .. }
            | TraceEvent::CheckElided { cycle, .. }
            | TraceEvent::Trap { cycle, .. } => cycle,
            TraceEvent::FabricSpan { start, .. } => start,
            TraceEvent::BitstreamRetry { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_covers_every_variant() {
        let ev = TraceEvent::FabricSpan {
            start: 7,
            end: 9,
            pc: 0,
            class: InstrClass::Ld,
            meta_reads: 1,
            meta_writes: 0,
        };
        assert_eq!(ev.cycle(), 7);
        assert_eq!(TraceEvent::BitstreamRetry { attempt: 2 }.cycle(), 0);
        assert_eq!(TraceEvent::CommitStall { cycle: 12, until: 20 }.cycle(), 12);
        assert_eq!(TraceEvent::Recovery { cycle: 33, rung: 1 }.cycle(), 33);
        assert_eq!(TraceEvent::DegradedEnter { cycle: 44 }.cycle(), 44);
        assert_eq!(TraceEvent::SwapBegin { cycle: 55, instret: 10 }.cycle(), 55);
        assert_eq!(TraceEvent::SwapComplete { cycle: 66, drained: 3 }.cycle(), 66);
        let elided = TraceEvent::CheckElided { cycle: 77, pc: 0x1000, class: InstrClass::Ld };
        assert_eq!(elided.cycle(), 77);
    }

    #[test]
    fn events_are_small() {
        // The hot loop constructs these; keep them register-friendly.
        assert!(std::mem::size_of::<TraceEvent>() <= 64);
    }
}
