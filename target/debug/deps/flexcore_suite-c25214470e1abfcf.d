/root/repo/target/debug/deps/flexcore_suite-c25214470e1abfcf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_suite-c25214470e1abfcf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
