//! The paper's future-work question (§VII): "investigate how the
//! FlexCore approach can be applied to high-performance superscalar
//! cores where multiple instructions may execute in parallel."
//!
//! This study uses the core model's idealized commit-width knob (an
//! optimistic bound: no dependence stalls) to quantify the pressure a
//! faster core puts on the fabric: as the core commits more
//! instructions per cycle, a fabric at a fixed clock ratio must absorb
//! proportionally more packets, so monitoring overheads grow — and the
//! fabric needs a higher relative clock (or multiple packet lanes) to
//! keep up.
//!
//! ```sh
//! cargo run --release -p flexcore-bench --bin superscalar
//! ```

use flexcore::SystemConfig;
use flexcore_bench::{geomean, run_extension, ExtKind};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason};
use flexcore_workloads::Workload;

fn baseline(w: &Workload, core: CoreConfig) -> u64 {
    let program = w.program().expect("assembles");
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut c = Core::new(core);
    c.load_program(&program, &mut mem);
    assert_eq!(c.run(&mut mem, &mut bus, 200_000_000), ExitReason::Halt(0));
    c.quiesced_at()
}

fn main() {
    let workloads = [Workload::sha(), Workload::fft(), Workload::bitcount()];
    println!("FlexCore on (idealized) superscalar cores — DIFT overheads");
    println!("{}", "=".repeat(66));
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "width", "base IPC", "DIFT @1X", "DIFT @0.5X", "DIFT @0.25X"
    );
    println!("{}", "-".repeat(66));
    for width in [1u32, 2, 4] {
        let core = CoreConfig::superscalar(width);
        let baselines: Vec<u64> = workloads.iter().map(|w| baseline(w, core)).collect();
        // Base IPC (geomean) for context.
        let ipcs: Vec<f64> = workloads
            .iter()
            .zip(&baselines)
            .map(|(w, &b)| {
                let program = w.program().unwrap();
                let mut mem = MainMemory::new();
                let mut bus = SystemBus::default();
                let mut c = Core::new(core);
                c.load_program(&program, &mut mem);
                c.run(&mut mem, &mut bus, 200_000_000);
                c.stats().instret as f64 / b as f64
            })
            .collect();
        print!("{:>6} {:>10.2}", width, geomean(&ipcs));
        for cfg in [
            SystemConfig::fabric_full_speed(),
            SystemConfig::fabric_half_speed(),
            SystemConfig::fabric_quarter_speed(),
        ] {
            let mut cfg = cfg;
            cfg.core = core;
            let ratios: Vec<f64> = workloads
                .iter()
                .zip(&baselines)
                .map(|(w, &b)| run_extension(w, ExtKind::Dift, cfg).cycles as f64 / b as f64)
                .collect();
            print!(" {:>12.3}", geomean(&ratios));
        }
        println!();
    }
    println!("{}", "-".repeat(66));
    println!(
        "Reading: at width 1 the 0.5X fabric nearly keeps up (the paper's\n\
         operating point); each doubling of core commit rate roughly\n\
         doubles the fabric's required relative throughput, so a wider\n\
         core needs a full-speed fabric — or a wider FIFO interface with\n\
         multiple packets per fabric cycle — to stay in the paper's\n\
         overhead regime. This quantifies §VII's open question on this\n\
         model's optimistic-superscalar assumptions."
    );
}
