/root/repo/target/release/deps/sim_throughput-b40bc6ceba1ee917.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-b40bc6ceba1ee917: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
