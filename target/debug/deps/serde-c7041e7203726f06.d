/root/repo/target/debug/deps/serde-c7041e7203726f06.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c7041e7203726f06.rlib: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c7041e7203726f06.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
