/root/repo/target/debug/deps/no_panic-9ab59f6afdfd2b0e.d: crates/asm/tests/no_panic.rs

/root/repo/target/debug/deps/libno_panic-9ab59f6afdfd2b0e.rmeta: crates/asm/tests/no_panic.rs

crates/asm/tests/no_panic.rs:
