/root/repo/target/debug/deps/system_properties-073c5bfd0a1e926f.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-073c5bfd0a1e926f: tests/system_properties.rs

tests/system_properties.rs:
