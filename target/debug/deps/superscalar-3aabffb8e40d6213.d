/root/repo/target/debug/deps/superscalar-3aabffb8e40d6213.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/libsuperscalar-3aabffb8e40d6213.rmeta: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
