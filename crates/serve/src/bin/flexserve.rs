//! `flexserve` — the fault-tolerant sharded campaign job server.
//!
//! Submits fault-campaign jobs (sweep spec + workload set + recovery
//! policy) to a bounded priority queue and drains them across a
//! supervised work-stealing worker pool, journaling every finished
//! trial crash-safely so a `kill -9` mid-campaign resumes exactly
//! (`--resume`) with zero lost and zero duplicated trials.
//!
//! ```text
//! flexserve run       [job flags]... [server flags]...
//! flexserve serve     [server flags]... [--socket PATH]
//! flexserve submit    [job flags]... [--socket PATH] [--wait]
//! flexserve subscribe --id HEX [--socket PATH]
//! flexserve ping|status|drain [--socket PATH]
//! flexserve bench     [--trials N] [--json FILE]
//! ```
//!
//! `run` executes a batch inline and exits. `serve` is the long-lived
//! daemon: it listens on a Unix socket, admits `submit` requests while
//! draining the queue on one global worker pool, and keeps accepting
//! until a `drain` request — then finishes in-flight work, heartbeats,
//! and exits 0. The remaining subcommands are the bundled client: they
//! speak the daemon's newline-delimited JSON protocol, honor `rejected`
//! backpressure with bounded exponential backoff + deterministic
//! jitter, and surface the daemon's typed errors verbatim.
//!
//! Job flags (define one inline job; repeat `--spec FILE` for more):
//!
//! * `--spec FILE` — JSON job spec (repeatable; fields: name, seed,
//!   trials, workloads, lockstep, recover, sweep, reconfig, priority, policy)
//! * `--job NAME` `--seed N` `--trials N` `--workloads a,b`
//!   `--lockstep` `--recover` `--sweep` `--reconfig` `--priority N`
//!
//! Server flags:
//!
//! * `--journal-dir DIR` — journal directory (default
//!   `flexserve-journals`); each campaign gets `<hash>.jsonl` plus a
//!   `<hash>.trials.jsonl` merged log on completion
//! * `--workers N` — pool width (default: one per core)
//! * `--resume` — reuse completed trials from existing journals
//! * `--max-depth N` — queue admission bound (default 16)
//! * `--sync-every N` — journal fsync cadence in records (default 8)
//! * `--stop-after N` — stop claiming trials after N records (soft
//!   deterministic interruption; `kill -9` is the hard version)
//! * `--max-attempts N` / `--backoff-base-ms N` — supervision budget
//! * `--chaos-panic N` — deterministically panic the first attempt of
//!   ~1/N trials (supervision demo); `--chaos-all-attempts` escalates
//!   the selected trials to full quarantine
//! * `--trace FILE` — write a Chrome trace of worker/trial spans
//! * `--status FILE` — write a live `status.json` heartbeat
//!   (atomically replaced after every trial: queue depth, busy
//!   workers, trial counters, journal write/fsync latency histograms,
//!   trials/sec, monotone `seq`)
//! * `--progress` — per-trial progress lines with rate and ETA on
//!   stderr (stdout stays byte-deterministic)
//!
//! Exit codes: 0 all jobs completed; 1 quarantined trials or failed
//! jobs; 2 usage error; 3 interrupted (resume to finish).

use std::path::PathBuf;

use flexcore_serve::{
    Client, ClientError, Daemon, DaemonConfig, JobId, JobSpec, Journal, RetryPolicy, Server,
    ServerConfig, WorkerPolicy,
};

fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).and_then(|v| {
        v.strip_prefix("0x").map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
    })
}

fn arg_strings(flag: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn usage() -> ! {
    eprintln!(
        "usage: flexserve run [--spec FILE]... [--job NAME --seed N --trials N \
         --workloads a,b --lockstep --recover --sweep --reconfig --priority N] [--journal-dir DIR] \
         [--workers N] [--resume] [--max-depth N] [--sync-every N] [--stop-after N] \
         [--max-attempts N] [--backoff-base-ms N] [--chaos-panic N] [--chaos-all-attempts] \
         [--trace FILE] [--status FILE] [--progress]\n       flexserve serve [server flags] \
         [--socket PATH]\n       flexserve submit [job flags] [--socket PATH] [--wait] \
         [--retry-attempts N]\n       flexserve subscribe --id HEX [--socket PATH]\n       \
         flexserve ping|status|drain [--socket PATH]\n       flexserve bench [--trials N] \
         [--workloads a,b] [--json FILE]"
    );
    std::process::exit(2);
}

/// The inline job defined by `--job`/`--seed`/… flags, or the default
/// job when no `--spec` files were given either.
fn inline_job() -> Option<JobSpec> {
    let d = JobSpec::default();
    let inline_flags_used = arg_value("--seed").is_some()
        || arg_value("--trials").is_some()
        || !arg_strings("--job").is_empty()
        || !arg_strings("--workloads").is_empty()
        || arg_flag("--lockstep")
        || arg_flag("--recover")
        || arg_flag("--sweep")
        || arg_flag("--reconfig")
        || arg_value("--priority").is_some();
    if !inline_flags_used && !arg_strings("--spec").is_empty() {
        return None;
    }
    Some(JobSpec {
        name: arg_strings("--job").pop().unwrap_or(d.name),
        seed: arg_value("--seed").unwrap_or(d.seed),
        trials: arg_value("--trials").unwrap_or(d.trials as u64) as usize,
        workloads: match arg_strings("--workloads").pop() {
            Some(list) => list.split(',').map(str::to_string).collect(),
            None => d.workloads,
        },
        lockstep: arg_flag("--lockstep"),
        recover: arg_flag("--recover"),
        sweep: arg_flag("--sweep"),
        reconfig: arg_flag("--reconfig"),
        priority: arg_value("--priority").unwrap_or(u64::from(d.priority)) as u8,
        policy: d.policy,
    })
}

fn worker_policy() -> WorkerPolicy {
    let d = WorkerPolicy::default();
    WorkerPolicy {
        workers: arg_value("--workers").unwrap_or(0) as usize,
        max_attempts: arg_value("--max-attempts").unwrap_or(u64::from(d.max_attempts)) as u32,
        backoff_base_ms: arg_value("--backoff-base-ms").unwrap_or(d.backoff_base_ms),
        backoff_cap_ms: d.backoff_cap_ms,
        chaos_panic_every: arg_value("--chaos-panic"),
        chaos_all_attempts: arg_flag("--chaos-all-attempts"),
    }
}

fn server_config() -> ServerConfig {
    let d = ServerConfig::default();
    ServerConfig {
        journal_dir: PathBuf::from(
            arg_strings("--journal-dir").pop().unwrap_or_else(|| "flexserve-journals".into()),
        ),
        worker_policy: worker_policy(),
        max_depth: arg_value("--max-depth").unwrap_or(d.max_depth as u64) as usize,
        sync_every: arg_value("--sync-every").unwrap_or(d.sync_every as u64) as usize,
        resume: arg_flag("--resume"),
        stop_after: arg_value("--stop-after"),
        trace_path: arg_strings("--trace").pop().map(PathBuf::from),
        status_path: arg_strings("--status").pop().map(PathBuf::from),
        progress: arg_flag("--progress"),
    }
}

fn cmd_run() -> i32 {
    let mut jobs: Vec<JobSpec> = Vec::new();
    for path in arg_strings("--spec") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("flexserve: {path}: {e}");
                return 2;
            }
        };
        match JobSpec::from_json(&text) {
            Ok(spec) => jobs.push(spec),
            Err(e) => {
                eprintln!("flexserve: {path}: {e}");
                return 2;
            }
        }
    }
    if let Some(spec) = inline_job() {
        jobs.push(spec);
    }
    if jobs.is_empty() {
        usage();
    }

    let config = server_config();
    // Chaos panics are supervised by design; their default-hook
    // backtraces would drown the report.
    if config.worker_policy.chaos_panic_every.is_some() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let server = Server::new(config);
    for spec in jobs {
        let name = spec.name.clone();
        match server.submit(spec) {
            Ok(id) => println!("flexserve: admitted `{name}` as campaign {id}"),
            Err(e) => println!("flexserve: refused `{name}`: {e}"),
        }
    }
    println!(
        "flexserve: draining {} queued job(s) on {} worker(s)",
        server.queue().depth(),
        server.config().worker_policy.pool_width()
    );

    let report = match server.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flexserve: {e}");
            return 2;
        }
    };
    let mut exit = 0;
    for job in &report.jobs {
        if print_job_summary(job) {
            exit = 1;
        }
    }
    let a = &report.admission;
    println!(
        "flexserve: admission: admitted {}, rejected {}, duplicates {}, shed {}",
        a.admitted, a.rejected, a.duplicates, a.shed
    );
    for shed in &report.shed {
        println!("flexserve: {shed}");
    }
    if report.interrupted {
        println!("flexserve: interrupted by --stop-after; rerun with --resume to finish");
        return 3;
    }
    exit
}

/// Prints one job's closing summary lines; returns true when the job
/// should fail the process (quarantines or a failed state).
fn print_job_summary(job: &flexcore_serve::JobSummary) -> bool {
    let s = &job.stats;
    println!(
        "flexserve: campaign {} `{}` {}: {} trials (executed {}, reused {}, retried {}, \
         quarantined {}) in {:.2}s",
        job.id,
        job.name,
        job.state,
        job.trials,
        s.executed,
        s.reused,
        s.retried,
        s.quarantined,
        s.elapsed_us as f64 / 1e6,
    );
    if let Some(c) = &job.compaction {
        if c.compacted {
            println!(
                "flexserve:   compacted: {} -> {} records (events {}, superseded {})",
                c.records_before, c.records_after, c.dropped_events, c.dropped_superseded
            );
        }
    }
    println!("flexserve:   journal: {}", job.journal.display());
    if let Some(merged) = &job.merged_log {
        println!("flexserve:   merged:  {}", merged.display());
    }
    s.quarantined > 0 || matches!(job.state, flexcore_serve::JobState::Failed(_))
}

fn socket_path() -> PathBuf {
    arg_strings("--socket").pop().map_or_else(|| PathBuf::from("flexserve.sock"), PathBuf::from)
}

/// `flexserve serve` — the long-lived daemon. Runs until a `drain`
/// request, then exits 0 with every admitted job finished and
/// journaled. Resume is always on: a killed daemon restarted on the
/// same journal dir replays completed trials instead of redoing them.
fn cmd_serve() -> i32 {
    let config = DaemonConfig {
        socket_path: socket_path(),
        server: server_config(),
        ..DaemonConfig::default()
    };
    if config.server.worker_policy.chaos_panic_every.is_some() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    println!(
        "flexserve serve: listening on {} ({} worker(s), journals in {})",
        config.socket_path.display(),
        config.server.worker_policy.pool_width(),
        config.server.journal_dir.display()
    );
    match Daemon::new(config).run() {
        Ok(report) => {
            for job in &report.jobs {
                print_job_summary(job);
            }
            println!("flexserve serve: drained {} job(s), exiting", report.jobs.len());
            0
        }
        Err(e) => {
            eprintln!("flexserve serve: {e}");
            2
        }
    }
}

fn client() -> Client {
    let d = RetryPolicy::default();
    Client::new(&socket_path()).with_retry(RetryPolicy {
        max_attempts: arg_value("--retry-attempts").unwrap_or(u64::from(d.max_attempts)) as u32,
        base_ms: arg_value("--retry-base-ms").unwrap_or(d.base_ms),
        cap_ms: arg_value("--retry-cap-ms").unwrap_or(d.cap_ms),
        seed: arg_value("--retry-seed").unwrap_or(d.seed),
    })
}

/// `flexserve ping|status|drain` — one request, response on stdout.
fn cmd_simple(op: &str) -> i32 {
    let client = client();
    let result = match op {
        "ping" => client.ping(),
        "status" => client.status(),
        _ => client.drain(),
    };
    match result {
        Ok(v) => {
            println!("{}", serde::to_string(&v));
            0
        }
        Err(e) => {
            eprintln!("flexserve {op}: {e}");
            1
        }
    }
}

/// `flexserve submit` — sends job specs to a daemon, backing off on
/// `rejected` answers. `--wait` then subscribes each admitted job to
/// completion, streaming its trial lines to stdout.
fn cmd_submit() -> i32 {
    let mut jobs: Vec<JobSpec> = Vec::new();
    for path in arg_strings("--spec") {
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| JobSpec::from_json(&text).map_err(|e| e.to_string()));
        match parsed {
            Ok(spec) => jobs.push(spec),
            Err(e) => {
                eprintln!("flexserve submit: {path}: {e}");
                return 2;
            }
        }
    }
    if let Some(spec) = inline_job() {
        jobs.push(spec);
    }
    if jobs.is_empty() {
        usage();
    }
    let client = client();
    let mut admitted: Vec<JobId> = Vec::new();
    let mut exit = 0;
    for spec in &jobs {
        match client.submit(spec) {
            Ok(id) => {
                println!("flexserve: admitted `{}` as campaign {id}", spec.name);
                admitted.push(id);
            }
            Err(e @ ClientError::Refused { .. } | e @ ClientError::RetriesExhausted { .. }) => {
                eprintln!("flexserve submit: `{}`: {e}", spec.name);
                exit = 1;
            }
            Err(e) => {
                eprintln!("flexserve submit: {e}");
                return 2;
            }
        }
    }
    if arg_flag("--wait") {
        for id in admitted {
            if stream_job(&client, id) != 0 {
                exit = 1;
            }
        }
    }
    exit
}

/// Streams one job's feed to stdout through its terminal line.
fn stream_job(client: &Client, id: JobId) -> i32 {
    match client.subscribe(id, |line| println!("{}", serde::to_string(line))) {
        Ok(done) => {
            println!("{}", serde::to_string(&done));
            i32::from(done.get("state").and_then(serde::Value::as_str) != Some("completed"))
        }
        Err(e) => {
            eprintln!("flexserve subscribe: {e}");
            1
        }
    }
}

/// `flexserve subscribe --id HEX` — attaches to a running (or done)
/// job and streams its feed.
fn cmd_subscribe() -> i32 {
    let Some(id) = arg_strings("--id").pop().and_then(|s| u64::from_str_radix(&s, 16).ok()) else {
        eprintln!("flexserve subscribe: --id HEX is required");
        return 2;
    };
    stream_job(&client(), JobId(id))
}

/// `flexserve bench` — trials/sec at 1, N/2, and N workers, written as
/// `BENCH_flexserve.json` for the CI benchmark trail.
fn cmd_bench() -> i32 {
    let trials = arg_value("--trials").unwrap_or(16) as usize;
    let out = arg_strings("--json").pop().unwrap_or_else(|| "BENCH_flexserve.json".into());
    let workloads = match arg_strings("--workloads").pop() {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => JobSpec::default().workloads,
    };
    let cores = std::thread::available_parallelism().map_or(4, usize::from);
    let mut widths = vec![1, (cores / 2).max(1), cores];
    widths.dedup();
    println!("flexserve bench: {trials} trials/workload at pool widths {widths:?}");

    let spec = JobSpec { trials, workloads, ..JobSpec::default() };
    let mut points = Vec::new();
    for width in widths {
        let dir =
            std::env::temp_dir().join(format!("flexserve-bench-{}-{width}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::new(ServerConfig {
            journal_dir: dir.clone(),
            worker_policy: WorkerPolicy { workers: width, ..WorkerPolicy::default() },
            ..ServerConfig::default()
        });
        if let Err(e) = server.submit(spec.clone()) {
            eprintln!("flexserve bench: {e}");
            return 2;
        }
        let report = match server.run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("flexserve bench: {e}");
                return 2;
            }
        };
        let stats = report.jobs[0].stats;
        let secs = stats.elapsed_us as f64 / 1e6;
        let rate = stats.executed as f64 / secs.max(1e-9);
        println!(
            "  {width:>2} worker(s): {} trials in {secs:.2}s = {rate:.1} trials/s",
            stats.executed
        );
        points.push(
            serde::Value::object()
                .field("workers", &(width as u64))
                .field("trials", &stats.executed)
                .field("elapsed_us", &stats.elapsed_us)
                .field("trials_per_sec", &rate)
                .build(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let doc = serde::Value::object()
        .field("bench", &"flexserve")
        .field("trials_per_workload", &(trials as u64))
        .raw("points", serde::Value::Array(points))
        .raw("admission", bench_admission())
        .raw("compaction", bench_compaction())
        .build();
    if let Err(e) = std::fs::write(&out, serde::to_string(&doc) + "\n") {
        eprintln!("flexserve bench: {out}: {e}");
        return 2;
    }
    println!("flexserve bench: wrote {out}");
    0
}

/// Admission-path latency row: how long `submit` takes while the
/// queue fills, and how fast a full queue turns a request away. The
/// daemon answers sockets on this same path, so this bounds its
/// admission overhead too.
fn bench_admission() -> serde::Value {
    const DEPTH: usize = 32;
    let server = Server::new(ServerConfig {
        journal_dir: std::env::temp_dir().join(format!("flexserve-adm-{}", std::process::id())),
        worker_policy: WorkerPolicy { workers: 1, ..WorkerPolicy::default() },
        max_depth: DEPTH,
        ..ServerConfig::default()
    });
    let mut admit_ns = Vec::with_capacity(DEPTH);
    for seed in 0..DEPTH as u64 {
        let spec = JobSpec { seed, trials: 1, ..JobSpec::default() };
        let t = std::time::Instant::now();
        let admitted = server.submit(spec).is_ok();
        admit_ns.push(t.elapsed().as_nanos() as u64);
        assert!(admitted, "queue below max_depth admits");
    }
    let t = std::time::Instant::now();
    let refused = server.submit(JobSpec { seed: u64::MAX, trials: 1, ..JobSpec::default() });
    let reject_ns = t.elapsed().as_nanos() as u64;
    assert!(refused.is_err(), "queue at max_depth refuses");
    admit_ns.sort_unstable();
    println!(
        "  admission: p50 {} ns, max {} ns over {DEPTH} submits; rejection {} ns",
        admit_ns[DEPTH / 2],
        admit_ns[DEPTH - 1],
        reject_ns
    );
    serde::Value::object()
        .field("submits", &(DEPTH as u64))
        .field("admit_ns_p50", &admit_ns[DEPTH / 2])
        .field("admit_ns_max", &admit_ns[DEPTH - 1])
        .field("reject_ns", &reject_ns)
        .build()
}

/// Compaction row: rewrite cost and shrink ratio for a journal bloated
/// by repeated interrupt/resume cycles (4 records per label + events).
fn bench_compaction() -> serde::Value {
    use flexcore_bench::trial::TrialOutcome;
    const LABELS: usize = 64;
    let spec = JobSpec::default();
    let dir = std::env::temp_dir().join(format!("flexserve-cmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench tmpdir");
    let path = dir.join(format!("{}.jsonl", spec.id()));
    let (mut j, _) =
        Journal::open(&path, &spec.header(), &spec.canonical(), false, 64).expect("journal");
    for round in 0..4u64 {
        j.append_event("job-resumed", serde::Value::object().field("round", &round).build())
            .expect("event");
        for label in 0..LABELS {
            let o = TrialOutcome { trapped: true, faults_injected: round, ..Default::default() };
            j.append_trial(&format!("bench trial {label}"), &o).expect("trial");
        }
    }
    j.sync().expect("sync");
    drop(j);
    let t = std::time::Instant::now();
    let report = Journal::compact(&path, &spec.canonical()).expect("compacts");
    let elapsed_us = t.elapsed().as_micros() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.compacted && report.records_after == LABELS as u64);
    println!(
        "  compaction: {} -> {} records in {elapsed_us} us",
        report.records_before, report.records_after
    );
    serde::Value::object()
        .field("records_before", &report.records_before)
        .field("records_after", &report.records_after)
        .field("elapsed_us", &elapsed_us)
        .build()
}

fn main() {
    let mode = std::env::args().nth(1);
    let code = match mode.as_deref() {
        Some("run") => cmd_run(),
        Some("serve") => cmd_serve(),
        Some("submit") => cmd_submit(),
        Some("subscribe") => cmd_subscribe(),
        Some(op @ ("ping" | "status" | "drain")) => cmd_simple(op),
        Some("bench") => cmd_bench(),
        _ => usage(),
    };
    std::process::exit(code);
}
