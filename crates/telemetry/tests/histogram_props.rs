//! Property tests for the log₂ histogram: counting is conserved,
//! merging is associative and commutative, and the sparse serialized
//! form round-trips bit-exactly.

use flexcore_telemetry::Log2Histogram;
use proptest::prelude::*;
use serde::Serialize;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix small values (dense low buckets), arbitrary ones, and the
    // extremes so bucket 0 and the open-ended top bucket are hit.
    let v = prop_oneof![
        4 => 0u64..1024,
        2 => any::<u64>(),
        1 => Just(0u64),
        1 => Just(u64::MAX),
    ];
    prop::collection::vec(v, 0..200)
}

fn filled(samples: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded sample lands in exactly one bucket: the bucket
    /// total always equals the count, and both equal the number of
    /// samples recorded (monotone total — nothing is lost or double
    /// counted, at any prefix of the stream).
    #[test]
    fn bucket_totals_are_monotone_and_conserved(samples in arb_samples()) {
        let mut h = Log2Histogram::new();
        let mut prev_total = 0u64;
        for (i, &s) in samples.iter().enumerate() {
            h.record(s);
            let total: u64 = (0..64).map(|b| h.bucket(b)).sum();
            prop_assert_eq!(total, h.count());
            prop_assert_eq!(total, i as u64 + 1);
            prop_assert!(total >= prev_total, "totals never move backward");
            prev_total = total;
        }
    }

    /// Merge order never matters: (a ∪ b) ∪ c == a ∪ (b ∪ c) and
    /// a ∪ b == b ∪ a, bucket for bucket and sum for sum.
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (ha, hb, hc) = (filled(&a), filled(&b), filled(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "associative");
    }

    /// The sparse `{count, sum, buckets}` form decodes back to the
    /// exact histogram — bit-for-bit, including the saturating extremes.
    #[test]
    fn serde_round_trip_is_bit_exact(samples in arb_samples()) {
        let h = filled(&samples);
        let text = serde::to_string(&h.to_value());
        let v = serde::from_str(&text).expect("emitted JSON parses");
        let back = Log2Histogram::from_value(&v).expect("well-formed decodes");
        prop_assert_eq!(back, h);
    }

    /// A merged histogram's quantile estimates stay within the merged
    /// value range (sanity on the bucket upper-edge estimator).
    #[test]
    fn quantiles_are_ordered(samples in arb_samples()) {
        let h = filled(&samples);
        if h.count() > 0 {
            let p50 = h.quantile(0.50);
            let p99 = h.quantile(0.99);
            prop_assert!(p50 <= p99, "p50 {p50} <= p99 {p99}");
        }
    }
}
