//! Static check-elision tables.
//!
//! The static analyses in `flexcore-analysis` can prove some dynamic
//! monitor checks redundant before a single cycle is simulated: a load
//! whose target is initialized on every path never trips UMC, an ALU
//! op over provably-untainted sources never propagates taint, a direct
//! branch whose edge is in the CFI table never violates it. An
//! [`ElisionTable`] carries those proofs to the runtime as a per-PC
//! bitmask of which extension checks are statically discharged; the
//! [`System`](crate::System) consults it on the commit path and skips
//! enqueueing a forwarded packet when the running extension agrees
//! (see [`Extension::check_elidable`](crate::Extension::check_elidable))
//! that the packet's check is covered.
//!
//! The safety contract is end-to-end bit-exactness: an elided run must
//! produce the same trap verdict, architectural state, and console
//! output as the full run. The table itself is untrusted input — each
//! extension re-validates per packet (the CFI monitor, for example,
//! re-checks the edge against its own loaded table), so a stale or
//! corrupted table can only cost performance, never soundness.

use std::collections::BTreeMap;

/// Version tag embedded in serialized elision tables; loading rejects
/// other versions.
pub const ELISION_FORMAT: u32 = 1;

/// Elision-table bit: the UMC initialized-load check is discharged at
/// this PC.
pub const ELIDE_UMC: u8 = 1 << 0;

/// Elision-table bit: the DIFT taint-propagation/check work is
/// discharged at this PC.
pub const ELIDE_DIFT: u8 = 1 << 1;

/// Elision-table bit: the CFI edge check is discharged at this PC.
pub const ELIDE_CFI: u8 = 1 << 2;

/// Per-PC bitmask of statically discharged monitor checks.
///
/// Produced by `flexcheck --taint --emit-elision`, consumed by
/// [`System::set_elision`](crate::System::set_elision) (the `flexsim
/// --elide` flag). PCs absent from the table elide nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElisionTable {
    masks: BTreeMap<u32, u8>,
}

impl ElisionTable {
    /// An empty table (no check is ever elided).
    pub fn new() -> ElisionTable {
        ElisionTable::default()
    }

    /// ORs `bits` into the mask at `pc` (a zero `bits` is a no-op).
    pub fn set(&mut self, pc: u32, bits: u8) {
        if bits != 0 {
            *self.masks.entry(pc).or_insert(0) |= bits;
        }
    }

    /// The elision mask at `pc` (0 when the PC is absent).
    pub fn mask(&self, pc: u32) -> u8 {
        self.masks.get(&pc).copied().unwrap_or(0)
    }

    /// Number of PCs with a nonzero mask.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the table elides nothing.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// `(pc, mask)` entries in ascending PC order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.masks.iter().map(|(&pc, &m)| (pc, m))
    }

    /// PCs whose mask contains all of `bits`.
    pub fn pcs_with(&self, bits: u8) -> impl Iterator<Item = u32> + '_ {
        self.masks.iter().filter(move |(_, &m)| m & bits == bits).map(|(&pc, _)| pc)
    }
}

#[cfg(feature = "serde")]
mod json {
    use serde::Value;

    use super::{ElisionTable, ELISION_FORMAT};

    impl serde::Serialize for ElisionTable {
        fn to_value(&self) -> Value {
            let entries = self
                .masks
                .iter()
                .map(|(&pc, &m)| {
                    Value::Array(vec![Value::U64(u64::from(pc)), Value::U64(u64::from(m))])
                })
                .collect();
            Value::object()
                .raw("format", Value::U64(u64::from(ELISION_FORMAT)))
                .raw("entries", Value::Array(entries))
                .build()
        }
    }

    impl ElisionTable {
        /// Serializes the table to one-line JSON.
        pub fn to_json(&self) -> String {
            serde::to_string(self)
        }

        /// Parses a table serialized by [`ElisionTable::to_json`].
        ///
        /// # Errors
        ///
        /// Returns a message on malformed JSON, a missing or mistyped
        /// field, or a format-version mismatch.
        pub fn from_json(s: &str) -> Result<ElisionTable, String> {
            let v = serde::from_str(s).map_err(|e| format!("invalid elision JSON: {e}"))?;
            let format = v
                .get("format")
                .and_then(Value::as_u64)
                .ok_or("missing elision table format version")?;
            if format != u64::from(ELISION_FORMAT) {
                return Err(format!(
                    "unsupported elision format {format} (this build reads {ELISION_FORMAT})"
                ));
            }
            let entries = v
                .get("entries")
                .and_then(Value::as_array)
                .ok_or("elision table has no entries array")?;
            let mut table = ElisionTable::new();
            for item in entries {
                let parts = item.as_array().ok_or("elision entry is not an array")?;
                let [pc, mask] = parts else {
                    return Err("elision entry needs exactly 2 fields".to_string());
                };
                let pc = pc.as_u64().ok_or("elision entry pc is not an integer")?;
                let mask = mask.as_u64().ok_or("elision entry mask is not an integer")?;
                let pc = u32::try_from(pc).map_err(|_| "elision pc does not fit in 32 bits")?;
                let mask = u8::try_from(mask).map_err(|_| "elision mask does not fit in 8 bits")?;
                table.set(pc, mask);
            }
            Ok(table)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_ors_and_zero_is_noop() {
        let mut t = ElisionTable::new();
        t.set(0x1000, ELIDE_UMC);
        t.set(0x1000, ELIDE_DIFT);
        t.set(0x1004, 0);
        assert_eq!(t.mask(0x1000), ELIDE_UMC | ELIDE_DIFT);
        assert_eq!(t.mask(0x1004), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.pcs_with(ELIDE_UMC).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(t.pcs_with(ELIDE_CFI).count(), 0);
    }

    #[test]
    fn entries_ascend_by_pc() {
        let mut t = ElisionTable::new();
        t.set(0x2000, ELIDE_CFI);
        t.set(0x1000, ELIDE_UMC);
        let e: Vec<_> = t.entries().collect();
        assert_eq!(e, vec![(0x1000, ELIDE_UMC), (0x2000, ELIDE_CFI)]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_round_trip() {
        let mut t = ElisionTable::new();
        t.set(0x1000, ELIDE_UMC | ELIDE_DIFT);
        t.set(0x1010, ELIDE_CFI);
        let back = ElisionTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_rejects_bad_format() {
        assert!(ElisionTable::from_json("{\"format\":99,\"entries\":[]}").is_err());
        assert!(ElisionTable::from_json("not json").is_err());
    }
}
