//! Dynamic Information Flow Tracking (DIFT).

use flexcore_fabric::{MacroBlock, Netlist, NetlistBuilder};
use flexcore_isa::{InstrClass, Instruction};
use flexcore_pipeline::TracePacket;

use crate::ext::{
    bit_tag_location, ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, META_BASE,
};
use crate::interface::{Cfgr, ForwardPolicy};

/// Software-visible `cpop1` sub-opcodes for DIFT.
pub mod ops {
    /// Taint the memory range `[rs1, rs1 + rs2)` (values arriving from
    /// untrusted I/O).
    pub const TAINT_RANGE: u16 = 0;
    /// Clear taint over `[rs1, rs1 + rs2)` (declassification).
    pub const CLEAR_RANGE: u16 = 1;
    /// Read the taint tag of the word at `rs1` into the destination
    /// register.
    pub const READ_TAG: u16 = 2;
    /// Set the policy register to `rs1` (bit 0: check indirect jumps;
    /// bit 1: also check load/store addresses).
    pub const SET_POLICY: u16 = 3;
    /// Set the taint tag of the register numbered `rs1` to `rs2 & 1`.
    pub const SET_REG_TAG: u16 = 4;
}

/// Policy register bit: trap on tainted indirect-jump targets.
pub const POLICY_CHECK_JUMPS: u32 = 1;
/// Policy register bit: trap on tainted load/store addresses.
pub const POLICY_CHECK_ADDRESSES: u32 = 2;

/// Memory-tag granularity (the paper's footnote 2: "DIFT
/// implementations may use multiple bits per tag, or have a tag per
/// each byte in memory. However, the basic operations are identical").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TagGranularity {
    /// One taint bit per 32-bit word (the paper's prototype — "enough
    /// to detect attacks").
    #[default]
    PerWord,
    /// One taint bit per byte: more meta-data traffic, no false taint
    /// from sub-word stores sharing a word with clean data.
    PerByte,
}

/// Dynamic Information Flow Tracking: a 1-bit taint tag per register
/// and per memory word (or byte; see [`TagGranularity`]); tags
/// propagate on ALU/load/store and are checked on security-critical
/// operations (§IV.B).
#[derive(Clone, Debug)]
pub struct Dift {
    policy: u32,
    granularity: TagGranularity,
    checks: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Dift {
    /// Creates the extension with the default policy (check indirect
    /// jumps) and per-word tags, as in the paper's prototype.
    pub fn new() -> Dift {
        Dift {
            policy: POLICY_CHECK_JUMPS,
            granularity: TagGranularity::PerWord,
            checks: 0,
            bypassed: false,
            suppressed: 0,
        }
    }

    /// Creates the byte-granular variant of footnote 2.
    pub fn per_byte() -> Dift {
        Dift { granularity: TagGranularity::PerByte, ..Dift::new() }
    }

    /// Current policy register value.
    pub fn policy(&self) -> u32 {
        self.policy
    }

    /// Configured memory-tag granularity.
    pub fn granularity(&self) -> TagGranularity {
        self.granularity
    }

    fn monitored(addr: u32) -> bool {
        addr < META_BASE
    }

    /// Meta word address and bit for one *byte*: 1 bit per byte packs
    /// 32 bytes per meta word.
    fn byte_bit_location(addr: u32) -> (u32, u32) {
        (META_BASE + ((addr >> 5) << 2), addr & 31)
    }

    /// Reads the taint of an access of `bytes` bytes at `addr` (OR over
    /// the covered granules).
    fn mem_tag(&self, env: &mut ExtEnv<'_>, addr: u32, bytes: u32) -> u32 {
        match self.granularity {
            TagGranularity::PerWord => {
                let (meta_addr, bit) = bit_tag_location(addr);
                // Doubleword accesses cover two word tags (8-byte
                // alignment keeps both in one meta word).
                let words = bytes.div_ceil(4);
                let mask = (((1u64 << words) - 1) as u32) << bit;
                u32::from(env.read_meta(meta_addr) & mask != 0)
            }
            TagGranularity::PerByte => {
                // All bytes of one access share a meta word (accesses
                // are aligned and <= 4 bytes; 32 byte-tags per word).
                let (meta_addr, bit) = Dift::byte_bit_location(addr);
                let word = env.read_meta(meta_addr);
                let mask = ((1u64 << bytes) - 1) as u32;
                u32::from((word >> bit) & mask != 0)
            }
        }
    }

    /// Writes the taint for an access of `bytes` bytes at `addr`.
    fn set_mem_tag(&self, env: &mut ExtEnv<'_>, addr: u32, bytes: u32, tag: u32) {
        match self.granularity {
            TagGranularity::PerWord => {
                let (meta_addr, bit) = bit_tag_location(addr);
                let words = bytes.div_ceil(4);
                let mask = (((1u64 << words) - 1) as u32) << bit;
                env.write_meta(meta_addr, if tag != 0 { mask } else { 0 }, mask);
            }
            TagGranularity::PerByte => {
                let (meta_addr, bit) = Dift::byte_bit_location(addr);
                let mask = (((1u64 << bytes) - 1) as u32) << bit;
                env.write_meta(meta_addr, if tag != 0 { mask } else { 0 }, mask);
            }
        }
    }

    fn set_range(&self, env: &mut ExtEnv<'_>, start: u32, len: u32, value: bool) {
        match self.granularity {
            TagGranularity::PerWord => {
                let mut a = start & !3;
                while a < start + len {
                    self.set_mem_tag(env, a, 4, u32::from(value));
                    a += 4;
                }
            }
            TagGranularity::PerByte => {
                let mut a = start;
                while a < start + len {
                    // One meta word covers 32 bytes; batch.
                    let span = (32 - (a & 31)).min(start + len - a);
                    let (meta_addr, bit) = Dift::byte_bit_location(a);
                    let mask =
                        if span >= 32 { u32::MAX } else { (((1u64 << span) - 1) as u32) << bit };
                    env.write_meta(meta_addr, if value { mask } else { 0 }, mask);
                    a += span;
                }
            }
        }
    }
}

impl Default for Dift {
    fn default() -> Dift {
        Dift::new()
    }
}

impl Extension for Dift {
    fn name(&self) -> &'static str {
        "DIFT"
    }

    fn snapshot_state(&self) -> Vec<u64> {
        // The policy register is software-writable at run time (the
        // SET_POLICY cpop), so it is run-time state, not configuration.
        vec![u64::from(self.policy), self.checks]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [policy, checks] = *state {
            self.policy = policy as u32;
            self.checks = checks;
        }
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "DIFT",
            name: "Dynamic Information Flow Tracking",
            meta_data: &["1-bit tag per register", "1-bit tag per word in memory"],
            transparent_ops: &[
                "Propagate tags on ALU/load/store",
                "Check tags on a control transfer",
            ],
            sw_visible_ops: &[
                "Set tags for values from I/O",
                "Clear tags on a declassification",
                "Set a security policy register",
                "Exception when a tag check fails",
            ],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new()
            .with_classes(|c| c.is_mem() || c.is_alu(), ForwardPolicy::Always)
            .with_class(InstrClass::Sethi, ForwardPolicy::Always)
            .with_class(InstrClass::Save, ForwardPolicy::Always)
            .with_class(InstrClass::Restore, ForwardPolicy::Always)
            .with_class(InstrClass::Jmpl, ForwardPolicy::Always)
            .with_class(InstrClass::Call, ForwardPolicy::Always)
            .with_class(InstrClass::Cpop1, ForwardPolicy::WaitForAck)
    }

    fn pipeline_stages(&self) -> u32 {
        4
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn elision_class(&self) -> u8 {
        crate::elide::ELIDE_DIFT
    }

    fn check_elidable(&self, pkt: &TracePacket) -> bool {
        // The static taint verdicts are computed against the paper's
        // prototype configuration: per-word tags and the default
        // check-jumps policy. Any drift from that — a SET_POLICY cpop
        // ran, the byte-granular variant, a software-visible `cpop`
        // packet, or an atomic swap (whose tag exchange the static
        // analysis never marks) — forfeits elision for this packet.
        !self.bypassed
            && self.policy == POLICY_CHECK_JUMPS
            && self.granularity == TagGranularity::PerWord
            && pkt.class != InstrClass::Cpop1
            && pkt.class != InstrClass::Cpop2
            && pkt.class != InstrClass::Swap
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        match pkt.inst {
            Instruction::Alu { rd, rs1, op2, .. } => {
                // Destination taint = OR of the source taints
                // (immediates are untainted).
                let t1 = env.shadow.tag(rs1) & 1;
                let t2 = op2.reg().map_or(0, |r| env.shadow.tag(r) & 1);
                env.shadow.set_tag(rd, t1 | t2);
                Ok(None)
            }
            Instruction::Sethi { rd, .. } => {
                // Immediate: clears the destination taint.
                env.shadow.set_tag(rd, 0);
                Ok(None)
            }
            Instruction::Call { .. } => {
                // The link register receives an untainted PC.
                env.shadow.set_tag(flexcore_isa::Reg::O7, 0);
                Ok(None)
            }
            Instruction::Jmpl { rd, rs1, .. } => {
                self.checks += 1;
                if self.policy & POLICY_CHECK_JUMPS != 0 && env.shadow.tag(rs1) & 1 != 0 {
                    return Err(MonitorTrap {
                        pc: pkt.pc,
                        reason: format!(
                            "tainted indirect jump through {} to {:#010x}",
                            rs1, pkt.addr
                        ),
                    });
                }
                env.shadow.set_tag(rd, 0);
                Ok(None)
            }
            Instruction::Mem { op, rd, rs1, op2 } => {
                if self.policy & POLICY_CHECK_ADDRESSES != 0 {
                    let at1 = env.shadow.tag(rs1) & 1;
                    let at2 = op2.reg().map_or(0, |r| env.shadow.tag(r) & 1);
                    if at1 | at2 != 0 {
                        return Err(MonitorTrap {
                            pc: pkt.pc,
                            reason: format!("tainted address {:#010x}", pkt.addr),
                        });
                    }
                }
                let bytes = op.access_bytes().expect("memory opcode");
                let pair = || flexcore_isa::Reg::new(rd.index() as u8 | 1).expect("pair register");
                if op == flexcore_isa::Opcode::Swap {
                    // Atomic exchange: tags swap along with the values.
                    if Dift::monitored(pkt.addr) {
                        let mem_t = self.mem_tag(env, pkt.addr, 4);
                        let reg_t = u32::from(env.shadow.tag(rd) & 1);
                        self.set_mem_tag(env, pkt.addr, 4, reg_t);
                        env.shadow.set_tag(rd, mem_t as u8);
                    } else {
                        env.shadow.set_tag(rd, 0);
                    }
                } else if op.is_load() {
                    let t = if Dift::monitored(pkt.addr) {
                        self.mem_tag(env, pkt.addr, bytes)
                    } else {
                        0
                    };
                    env.shadow.set_tag(rd, t as u8);
                    if op == flexcore_isa::Opcode::Ldd {
                        env.shadow.set_tag(pair(), t as u8);
                    }
                } else if Dift::monitored(pkt.addr) {
                    let mut t = u32::from(env.shadow.tag(rd) & 1);
                    if op == flexcore_isa::Opcode::Std {
                        t |= u32::from(env.shadow.tag(pair()) & 1);
                    }
                    self.set_mem_tag(env, pkt.addr, bytes, t);
                }
                Ok(None)
            }
            Instruction::Cpop { space: 1, opc, .. } => match opc {
                ops::TAINT_RANGE => {
                    self.set_range(env, pkt.srcv1, pkt.srcv2, true);
                    Ok(None)
                }
                ops::CLEAR_RANGE => {
                    self.set_range(env, pkt.srcv1, pkt.srcv2, false);
                    Ok(None)
                }
                ops::READ_TAG => Ok(Some(self.mem_tag(env, pkt.srcv1, 4))),
                ops::SET_POLICY => {
                    self.policy = pkt.srcv1;
                    Ok(None)
                }
                ops::SET_REG_TAG => {
                    if let Some(r) = flexcore_isa::Reg::new((pkt.srcv1 & 31) as u8) {
                        env.shadow.set_tag(r, (pkt.srcv2 & 1) as u8);
                    }
                    Ok(None)
                }
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }

    /// The DIFT datapath (§IV.B, Figure 3b): the UMC-style meta address
    /// path plus 1-bit tag propagation, the policy register, and the
    /// jump-check logic. The 1-bit-per-register tag file is the shadow
    /// register-file macro.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: addr[32], is_load, is_store, is_alu, is_jmpl,
        // tag_src1, tag_src2, imm_op, tag_word[32].
        let mut s = Vec::with_capacity(72);
        super::push_bits(&mut s, pkt.addr, 32);
        s.push(pkt.class.is_load());
        s.push(pkt.class.is_store());
        s.push(pkt.class.is_alu());
        s.push(pkt.class == InstrClass::Jmpl);
        s.push(false); // tag_src1 comes from the shadow register file
        s.push(false); // tag_src2 likewise
        s.push(pkt.src2.is_none()); // no source register 2 ⇒ immediate
        super::push_bits(&mut s, 0, 32); // tag_word comes from the meta cache
        s
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("dift");
        let addr = b.input_bus(32);
        let is_load = b.input();
        let is_store = b.input();
        let is_alu = b.input();
        let is_jmpl = b.input();
        let tag_src1 = b.input();
        let tag_src2 = b.input();
        let imm_op = b.input(); // operand 2 is an immediate
        let tag_word = b.input_bus(32);

        b.add_macro(MacroBlock::RegFile { entries: crate::ShadowRegFile::ENTRIES, width: 1 });

        // Stage 1 registers.
        let addr_r = b.register_bus(&addr);
        let ld_r = b.register(is_load);
        let st_r = b.register(is_store);
        let alu_r = b.register(is_alu);
        let jmp_r = b.register(is_jmpl);
        let t1_r = b.register(tag_src1);
        let t2_r = b.register(tag_src2);
        let imm_r = b.register(imm_op);

        // Meta address path (same structure as UMC).
        let base: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let shifted: Vec<_> = (0..32)
            .map(|i| if (2..27).contains(&i) { addr_r[i + 5] } else { b.constant(false) })
            .collect();
        let (meta_addr, _) = b.add(&base, &shifted);
        let meta_addr_r = b.register_bus(&meta_addr);
        b.output_bus("meta_addr", &meta_addr_r);

        let sel: Vec<_> = (2..7).map(|i| addr_r[i]).collect();
        let onehot = b.decoder(&sel);
        let onehot_r = b.register_bus(&onehot);

        // Tag propagation: dest = t1 | (t2 & !imm) for ALU; memory tag
        // for loads.
        let n_imm = b.not(imm_r);
        let t2_eff = b.and(t2_r, n_imm);
        let alu_tag = b.or(t1_r, t2_eff);
        let selected = b.bitwise(&tag_word, &onehot_r, |s, x, y| s.and(x, y));
        let mem_tag = b.reduce_or(&selected);
        let dest_tag = b.mux(ld_r, alu_tag, mem_tag);
        let dest_tag_r = b.register(dest_tag);
        b.output("dest_tag", dest_tag_r);

        // Store path: propagate the data register's tag to memory.
        let wen: Vec<_> = onehot_r.iter().map(|&m| b.and(m, st_r)).collect();
        b.output_bus("wen", &wen);
        let wdata: Vec<_> = onehot_r.iter().map(|&m| b.and(m, t1_r)).collect();
        b.output_bus("wdata", &wdata);

        // Destination write-enable: ALU ops and loads update the
        // shadow register file.
        let dest_wen = b.or(alu_r, ld_r);
        let dest_wen_r = b.register(dest_wen);
        b.output("dest_wen", dest_wen_r);

        // Policy register and the jump check.
        let policy: Vec<_> = (0..8).map(|_| b.dff()).collect();
        let check_jumps = policy[0];
        let jmp_tagged = b.and(jmp_r, t1_r);
        let trap = b.and(jmp_tagged, check_jumps);
        let trap_r = b.register(trap);
        b.output("trap", trap_r);

        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{alu_packet, env_parts, mem_packet, packet, packet_with_cpop};
    use flexcore_isa::{Instruction, Opcode, Operand2, Reg};

    fn jmpl_packet(rs1: Reg) -> flexcore_pipeline::TracePacket {
        packet(Instruction::Jmpl { rd: Reg::G0, rs1, op2: Operand2::Imm(0) })
    }

    #[test]
    fn alu_taint_propagates_by_or() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O0, 1);
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&alu_packet(Opcode::Add, Reg::O0, Reg::O1, Reg::O2, 1, 2, 3), &mut env)
            .unwrap();
        assert_eq!(env.shadow.tag(Reg::O2), 1, "taint flows to the destination");
        dift.process(&alu_packet(Opcode::Xor, Reg::O3, Reg::O4, Reg::O2, 0, 0, 0), &mut env)
            .unwrap();
        assert_eq!(env.shadow.tag(Reg::O2), 0, "clean sources scrub the destination");
    }

    #[test]
    fn taint_flows_through_memory() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O1, 1); // data register tainted
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&mem_packet(Opcode::St, 0x2000), &mut env).unwrap();
        // Clean register, load it back: taint returns.
        env.shadow.set_tag(Reg::O1, 0);
        dift.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 1);
        // A different address is untainted.
        dift.process(&mem_packet(Opcode::Ld, 0x2004), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 0);
    }

    #[test]
    fn tainted_indirect_jump_traps() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O0, 1);
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        let err = dift.process(&jmpl_packet(Reg::O0), &mut env).unwrap_err();
        assert!(err.reason.contains("tainted indirect jump"));
        assert!(dift.process(&jmpl_packet(Reg::O1), &mut env).is_ok());
    }

    #[test]
    fn policy_register_disables_and_extends_checks() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O0, 1);
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        // Disable all checks: tainted jump passes.
        dift.process(&packet_with_cpop(1, ops::SET_POLICY, 0, 0), &mut env).unwrap();
        assert!(dift.process(&jmpl_packet(Reg::O0), &mut env).is_ok());
        // Enable address checks: a tainted base address traps.
        dift.process(&packet_with_cpop(1, ops::SET_POLICY, POLICY_CHECK_ADDRESSES, 0), &mut env)
            .unwrap();
        let err = dift.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).unwrap_err();
        assert!(err.reason.contains("tainted address"));
    }

    #[test]
    fn sethi_and_call_clear_destination_taint() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::G1, 1);
        shadow.set_tag(Reg::O7, 1);
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&packet(Instruction::Sethi { rd: Reg::G1, imm22: 5 }), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::G1), 0);
        dift.process(&packet(Instruction::Call { disp30: 4 }), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O7), 0);
    }

    #[test]
    fn taint_range_and_read_tag() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&packet_with_cpop(1, ops::TAINT_RANGE, 0x3000, 16), &mut env).unwrap();
        let t = dift.process(&packet_with_cpop(1, ops::READ_TAG, 0x300c, 0), &mut env).unwrap();
        assert_eq!(t, Some(1));
        let t2 = dift.process(&packet_with_cpop(1, ops::READ_TAG, 0x3010, 0), &mut env).unwrap();
        assert_eq!(t2, Some(0));
        dift.process(&packet_with_cpop(1, ops::CLEAR_RANGE, 0x3000, 16), &mut env).unwrap();
        let t3 = dift.process(&packet_with_cpop(1, ops::READ_TAG, 0x300c, 0), &mut env).unwrap();
        assert_eq!(t3, Some(0));
    }

    #[test]
    fn set_reg_tag_marks_registers() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&packet_with_cpop(1, ops::SET_REG_TAG, 9, 1), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 1);
    }

    #[test]
    fn per_word_tags_overtaint_subword_neighbours() {
        // The paper's prototype granularity: a tainted byte store
        // taints the whole word (conservative, "enough to detect
        // attacks").
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O1, 1);
        let mut dift = Dift::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&mem_packet(Opcode::Stb, 0x2000), &mut env).unwrap();
        env.shadow.set_tag(Reg::O1, 0);
        // A load of the *other* bytes of the word still sees taint.
        dift.process(&mem_packet(Opcode::Ldub, 0x2003), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 1);
    }

    #[test]
    fn per_byte_tags_are_precise() {
        // Footnote 2's byte-granular variant: the same scenario does
        // NOT taint the neighbouring bytes.
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        shadow.set_tag(Reg::O1, 1);
        let mut dift = Dift::per_byte();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        dift.process(&mem_packet(Opcode::Stb, 0x2000), &mut env).unwrap();
        env.shadow.set_tag(Reg::O1, 0);
        dift.process(&mem_packet(Opcode::Ldub, 0x2003), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 0, "neighbour byte stays clean");
        // The tainted byte itself is still caught, including through a
        // covering word load.
        dift.process(&mem_packet(Opcode::Ldub, 0x2000), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 1);
        env.shadow.set_tag(Reg::O1, 0);
        dift.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 1, "word load ORs over its bytes");
    }

    #[test]
    fn per_byte_range_ops_handle_unaligned_spans() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut dift = Dift::per_byte();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        // Taint 40 bytes starting at an odd offset crossing a meta-word
        // boundary.
        dift.process(&packet_with_cpop(1, ops::TAINT_RANGE, 0x2005, 40), &mut env).unwrap();
        for addr in [0x2005u32, 0x2010, 0x202c] {
            dift.process(&mem_packet(Opcode::Ldub, addr), &mut env).unwrap();
            assert_eq!(env.shadow.tag(Reg::O1), 1, "{addr:#x}");
        }
        for addr in [0x2004u32, 0x202d] {
            dift.process(&mem_packet(Opcode::Ldub, addr), &mut env).unwrap();
            assert_eq!(env.shadow.tag(Reg::O1), 0, "{addr:#x}");
        }
    }

    #[test]
    fn cfgr_forwards_alu_mem_and_jumps() {
        let c = Dift::new().cfgr();
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Jmpl), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Sethi), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::BranchCond), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::Nop), ForwardPolicy::Ignore);
    }

    #[test]
    fn netlist_is_larger_than_umc() {
        let d = Dift::new().netlist();
        let u = crate::ext::Umc::new().netlist();
        let dl = flexcore_fabric::map_to_luts(&d, 6).lut_count();
        let ul = flexcore_fabric::map_to_luts(&u, 6).lut_count();
        assert!(dl > ul, "DIFT {dl} LUTs vs UMC {ul}");
    }
}
