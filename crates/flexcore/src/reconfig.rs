//! Mid-run bitstream hot-swap: quiesce / drain / swap / rearm.
//!
//! A [`SwapRequest`] scheduled via
//! [`System::schedule_swap`](crate::System::schedule_swap) replaces the
//! active extension's bitstream at a *commit boundary* — the system
//! walks a four-state lifecycle:
//!
//! 1. **Quiesce** — at the scheduled boundary the commit stage stops
//!    accepting trace packets (the core stalls exactly as it does under
//!    FIFO back-pressure) and a [`SwapBegin`] event is emitted.
//! 2. **Drain** — every in-flight FIFO packet is processed to
//!    completion by the *outgoing* extension and the meta-data cache is
//!    written back; drained packets are counted in
//!    [`ResilienceStats::swap_drained_packets`] — nothing is silently
//!    dropped.
//! 3. **Swap** — the new bitstream is segmented into frames and shifted
//!    into the fabric's partial-reconfiguration region with the same
//!    validate-and-retry machinery as a cold load (bounded retries with
//!    backoff; exhaustion surfaces as
//!    [`SimError::UnrecoverableCorruption`](crate::SimError::UnrecoverableCorruption)
//!    and escalates through the recovery ladder, which replays the swap
//!    deterministically).
//! 4. **Rearm** — the incoming extension goes live with its monitor
//!    state initialized per the [`SwapPolicy`], and a [`SwapComplete`]
//!    event is emitted.
//!
//! The window is atomic with respect to monitoring: a swap at any
//! boundary yields bit-identical verdicts to a statically-configured
//! run from that boundary onward (only cycle counts differ, by the
//! drain + reprogram stall).
//!
//! [`SwapBegin`]: crate::obs::TraceEvent::SwapBegin
//! [`SwapComplete`]: crate::obs::TraceEvent::SwapComplete
//! [`ResilienceStats::swap_drained_packets`]: crate::ResilienceStats::swap_drained_packets

use std::fmt;

use crate::ext::Extension;

/// What happens to monitor state across a hot-swap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SwapPolicy {
    /// The incoming extension starts from its pristine state (the
    /// snapshot captured when the swap was scheduled). Runtime
    /// meta-data (shadow registers, meta cache) is *not* cleared —
    /// `Reset` resets the extension's internal registers only.
    #[default]
    Reset,
    /// The outgoing extension's snapshot is transplanted into the
    /// incoming one when both are the same extension kind (a bitstream
    /// *refresh*); falls back to [`Reset`](SwapPolicy::Reset) semantics
    /// when the kinds differ, since state words are not portable across
    /// extensions.
    Carry,
}

impl fmt::Display for SwapPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapPolicy::Reset => write!(f, "reset"),
            SwapPolicy::Carry => write!(f, "carry"),
        }
    }
}

/// A request to hot-swap the active extension at a commit boundary.
#[derive(Clone, Debug)]
pub struct SwapRequest<E> {
    /// The committed-instruction boundary the swap fires at: the swap
    /// executes once `instret >= at_commit`, before the next
    /// instruction commits.
    pub at_commit: u64,
    /// The serialized bitstream to program (produced by
    /// [`to_bitstream`](flexcore_fabric::to_bitstream) over the mapped
    /// incoming netlist).
    pub bitstream: Vec<u8>,
    /// The incoming extension (functional model of the new bitstream).
    pub ext: E,
    /// State carry-over policy.
    pub policy: SwapPolicy,
}

/// The record of one completed hot-swap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapReport {
    /// Boundary the swap was scheduled at.
    pub at_commit: u64,
    /// Name of the outgoing extension.
    pub from: &'static str,
    /// Name of the incoming extension.
    pub to: &'static str,
    /// State carry-over policy applied.
    pub policy: SwapPolicy,
    /// Core-clock cycle the quiesce began.
    pub quiesce_cycle: u64,
    /// Core-clock cycle the incoming extension went live.
    pub rearmed_cycle: u64,
    /// In-flight FIFO packets drained (processed, never dropped)
    /// during the quiesce.
    pub drained_packets: u64,
    /// Bitstream transfer retries consumed inside this swap window.
    pub retries: u64,
    /// Partial-reconfiguration frames shifted into the region.
    pub frames: u64,
}

impl fmt::Display for SwapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "swap at commit {}: {} -> {} ({}), {} packet(s) drained, {} frame(s), \
             {} retry(ies), cycles {}..{}",
            self.at_commit,
            self.from,
            self.to,
            self.policy,
            self.drained_packets,
            self.frames,
            self.retries,
            self.quiesce_cycle,
            self.rearmed_cycle
        )
    }
}

/// One scheduled swap and its lifecycle bookkeeping.
#[derive(Clone, Debug)]
pub(crate) struct SwapSlot<E> {
    pub(crate) at_commit: u64,
    pub(crate) bitstream: Vec<u8>,
    pub(crate) policy: SwapPolicy,
    /// The incoming extension, present until the swap completes.
    pub(crate) pending: Option<E>,
    /// The incoming extension's state as scheduled — `Reset` restores
    /// this, and a checkpoint replay that un-swaps re-pristines from it
    /// so a re-executed swap is deterministic.
    pub(crate) pristine: Vec<u64>,
    /// The outgoing extension, retained after completion so a restore
    /// to a pre-swap boundary can put it back.
    pub(crate) retired: Option<E>,
    pub(crate) done: bool,
}

/// Schedules hot-swaps and owns their lifecycle state.
///
/// The controller itself is pure bookkeeping — the actual quiesce /
/// drain / program / rearm sequence lives in
/// [`System`](crate::System), which consults
/// [`due`](ReconfigController::due) at the top of the run loop.
#[derive(Clone, Debug, Default)]
pub struct ReconfigController<E> {
    slots: Vec<SwapSlot<E>>,
    reports: Vec<SwapReport>,
}

impl<E: Extension> ReconfigController<E> {
    /// An empty controller.
    pub fn new() -> ReconfigController<E> {
        ReconfigController { slots: Vec::new(), reports: Vec::new() }
    }

    /// Schedules a swap. Multiple swaps may be scheduled; they fire in
    /// boundary order (ties fire in scheduling order).
    pub fn schedule(&mut self, req: SwapRequest<E>) {
        let pristine = req.ext.snapshot_state();
        self.slots.push(SwapSlot {
            at_commit: req.at_commit,
            bitstream: req.bitstream,
            policy: req.policy,
            pending: Some(req.ext),
            pristine,
            retired: None,
            done: false,
        });
        self.slots.sort_by_key(|s| s.at_commit);
    }

    /// The index of the next swap due at `committed` instructions, if
    /// any.
    pub(crate) fn due(&self, committed: u64) -> Option<usize> {
        self.slots.iter().position(|s| !s.done && s.at_commit <= committed)
    }

    /// `true` when at least one scheduled swap has not yet fired.
    pub fn any_pending(&self) -> bool {
        self.slots.iter().any(|s| !s.done)
    }

    /// Completed swaps, oldest first.
    pub fn reports(&self) -> &[SwapReport] {
        &self.reports
    }

    pub(crate) fn slots_mut(&mut self) -> &mut [SwapSlot<E>] {
        &mut self.slots
    }

    pub(crate) fn push_report(&mut self, report: SwapReport) {
        self.reports.push(report);
    }

    /// Drops reports for swaps that a checkpoint restore rewound past.
    pub(crate) fn truncate_reports(&mut self, committed: u64) {
        self.reports.retain(|r| r.at_commit <= committed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::Nop;

    fn req(at: u64) -> SwapRequest<Nop> {
        SwapRequest {
            at_commit: at,
            bitstream: vec![1, 2, 3],
            ext: Nop::new(),
            policy: SwapPolicy::Reset,
        }
    }

    #[test]
    fn due_fires_in_boundary_order() {
        let mut c = ReconfigController::new();
        c.schedule(req(50));
        c.schedule(req(10));
        assert_eq!(c.due(5), None);
        assert_eq!(c.due(10), Some(0));
        // Completing the first exposes the second.
        c.slots_mut()[0].done = true;
        assert_eq!(c.due(10), None);
        assert_eq!(c.due(60), Some(1));
        assert!(c.any_pending());
        c.slots_mut()[1].done = true;
        assert!(!c.any_pending());
    }

    #[test]
    fn truncate_reports_drops_rewound_swaps() {
        let mut c: ReconfigController<Nop> = ReconfigController::new();
        let r = SwapReport {
            at_commit: 100,
            from: "Nop",
            to: "Nop",
            policy: SwapPolicy::Reset,
            quiesce_cycle: 0,
            rearmed_cycle: 0,
            drained_packets: 0,
            retries: 0,
            frames: 0,
        };
        c.push_report(SwapReport { at_commit: 10, ..r.clone() });
        c.push_report(r);
        c.truncate_reports(50);
        assert_eq!(c.reports().len(), 1);
        assert_eq!(c.reports()[0].at_commit, 10);
    }

    #[test]
    fn policy_displays_lowercase() {
        assert_eq!(SwapPolicy::Reset.to_string(), "reset");
        assert_eq!(SwapPolicy::Carry.to_string(), "carry");
    }
}
