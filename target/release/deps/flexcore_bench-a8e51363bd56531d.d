/root/repo/target/release/deps/flexcore_bench-a8e51363bd56531d.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexcore_bench-a8e51363bd56531d.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexcore_bench-a8e51363bd56531d.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
