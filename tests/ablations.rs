//! Semantics of the ablation knobs: each removed mechanism must cost
//! cycles (never help), must not change functional results, and the
//! whole system must be deterministic.

use flexcore_suite::flexcore::ext::{Bc, Dift, Extension, Umc};
use flexcore_suite::flexcore::{RunResult, System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use flexcore_suite::workloads::Workload;

fn run<E: Extension>(cfg: SystemConfig, ext: E) -> RunResult {
    let program = Workload::bitcount().program().unwrap();
    let mut sys = System::new(cfg, ext);
    sys.load_program(&program);
    let r = sys.try_run(100_000_000).expect("simulation error");
    assert_eq!(r.exit, ExitReason::Halt(0), "{:?}", r.monitor_trap);
    r
}

#[test]
fn fabric_side_decode_costs_cycles() {
    let with = run(SystemConfig::fabric_half_speed(), Dift::new());
    let without = run(SystemConfig::fabric_half_speed().without_core_decode(), Dift::new());
    assert!(
        without.cycles > with.cycles,
        "no-decode {} must exceed decode {}",
        without.cycles,
        with.cycles
    );
    // The paper's observation: core-side decode makes DIFT meaningfully
    // faster (they report 30% on their prototype; the magnitude here
    // depends on how much slack the benchmark leaves the fabric).
    assert!(without.cycles as f64 / with.cycles as f64 > 1.02);
}

#[test]
fn read_modify_write_meta_updates_cost_cycles() {
    let masked = run(SystemConfig::fabric_half_speed(), Umc::new());
    let rmw = run(SystemConfig::fabric_half_speed().without_masked_writes(), Umc::new());
    assert!(rmw.cycles >= masked.cycles);
    // The RMW pair shows up as extra meta-cache reads.
    assert!(
        rmw.meta_cache.read_hits + rmw.meta_cache.read_misses
            > masked.meta_cache.read_hits + masked.meta_cache.read_misses,
        "RMW must issue extra reads"
    );
}

#[test]
fn precise_exceptions_cost_the_most() {
    let decoupled = run(SystemConfig::fabric_half_speed(), Dift::new());
    let precise = run(SystemConfig::fabric_half_speed().with_precise_exceptions(), Dift::new());
    assert!(
        precise.cycles as f64 > 1.5 * decoupled.cycles as f64,
        "lockstep {} vs decoupled {}",
        precise.cycles,
        decoupled.cycles
    );
    assert_eq!(precise.forward.dropped, 0);
}

#[test]
fn precise_exceptions_have_zero_skid() {
    use flexcore_suite::asm::assemble;
    let program = assemble(
        "start: set 0x8000, %o0
                ld [%o0], %o1        ! violation
                add %o2, 1, %o2
                add %o2, 2, %o2
                ta 0",
    )
    .unwrap();
    // Imprecise (default): skid >= 1 at a slow fabric clock.
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Umc::new());
    sys.load_program(&program);
    let imprecise = sys.try_run(100_000).expect("simulation error");
    assert!(imprecise.trap_skid.unwrap() >= 1);
    // Precise (ack per instruction): the violating instruction is the
    // last to commit.
    let mut sys =
        System::new(SystemConfig::fabric_quarter_speed().with_precise_exceptions(), Umc::new());
    sys.load_program(&program);
    let precise = sys.try_run(100_000).expect("simulation error");
    assert_eq!(precise.trap_skid, Some(0));
    assert!(matches!(precise.exit, ExitReason::MonitorTrap { .. }));
}

#[test]
fn meta_cache_capacity_is_configurable() {
    let small = run(SystemConfig::fabric_half_speed().with_meta_cache_bytes(1024), Bc::new());
    let big = run(SystemConfig::fabric_half_speed().with_meta_cache_bytes(16 * 1024), Bc::new());
    assert!(small.meta_cache.miss_ratio() >= big.meta_cache.miss_ratio());
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemConfig::fabric_half_speed(), Dift::new());
    let b = run(SystemConfig::fabric_half_speed(), Dift::new());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instret, b.instret);
    assert_eq!(a.forward.forwarded, b.forward.forwarded);
    assert_eq!(a.bus.busy_cycles, b.bus.busy_cycles);
}

#[test]
fn ablations_do_not_change_functional_results() {
    // Same self-checking workload passes under every knob setting —
    // the knobs are timing-only.
    for cfg in [
        SystemConfig::fabric_half_speed().without_core_decode(),
        SystemConfig::fabric_half_speed().without_masked_writes(),
        SystemConfig::fabric_half_speed().with_precise_exceptions(),
        SystemConfig::fabric_half_speed().with_meta_cache_bytes(1024),
    ] {
        let r = run(cfg, Dift::new());
        assert_eq!(r.exit, ExitReason::Halt(0));
    }
}
