/root/repo/target/debug/deps/assembler-c4ae2296c31fa9e9.d: crates/bench/benches/assembler.rs Cargo.toml

/root/repo/target/debug/deps/libassembler-c4ae2296c31fa9e9.rmeta: crates/bench/benches/assembler.rs Cargo.toml

crates/bench/benches/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
