/root/repo/target/debug/deps/proptest-391c0414d18393c4.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-391c0414d18393c4.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
