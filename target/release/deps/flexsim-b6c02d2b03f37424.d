/root/repo/target/release/deps/flexsim-b6c02d2b03f37424.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/release/deps/flexsim-b6c02d2b03f37424: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
