/root/repo/target/debug/deps/roundtrip-228320fb4e5215d3.d: crates/asm/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-228320fb4e5215d3: crates/asm/tests/roundtrip.rs

crates/asm/tests/roundtrip.rs:
