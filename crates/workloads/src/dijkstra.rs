//! `dijkstra` (MiBench network): single-source shortest paths by the
//! classic O(N²) scan over an adjacency matrix — the most load-heavy
//! kernel in the suite; an extra workload beyond the paper's six.

use crate::lcg;

const N: usize = 64;
const SOURCES: u32 = 4;
const SEED: u32 = 0xd1d5_70a1;
const INF: u32 = 0x0fff_ffff;

/// Edge weight between `u` and `v` — mirrors the assembly's generator
/// (bytes 1..=255 from the LCG stream, row-major).
fn adjacency() -> Vec<u8> {
    let mut seed = SEED;
    (0..N * N)
        .map(|_| {
            seed = lcg(seed);
            ((seed >> 13) as u8) | 1
        })
        .collect()
}

/// Rust reference producing the expected checksum. Tie-breaking
/// (first minimal index wins) mirrors the assembly scan exactly.
fn reference() -> u32 {
    let adj = adjacency();
    let mut check = 0u32;
    for s in 0..SOURCES as usize {
        let src = s * 7 % N;
        let mut dist = [INF; N];
        let mut visited = [false; N];
        dist[src] = 0;
        for _ in 0..N {
            // argmin over unvisited.
            let mut best = INF + 1;
            let mut u = N;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == N {
                break;
            }
            visited[u] = true;
            for v in 0..N {
                if !visited[v] {
                    let nd = dist[u] + u32::from(adj[u * N + v]);
                    if nd < dist[v] {
                        dist[v] = nd;
                    }
                }
            }
        }
        for d in dist {
            check = check.wrapping_add(d);
        }
    }
    check
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! dijkstra: O(N^2) shortest paths over a generated graph.
        .equ N, {N}
        .equ SOURCES, {SOURCES}
        .equ INF, {INF}
start:
        ! Generate the adjacency matrix (N*N weight bytes).
        set {SEED}, %g2
        set adj, %l6
        set {nn}, %l5
gen:
        {lcg}
        srl %g2, 13, %o0
        or %o0, 1, %o0
        stb %o0, [%l6]
        add %l6, 1, %l6
        subcc %l5, 1, %l5
        bne gen
        nop

        clr %g7                ! checksum
        clr %i0                ! source index s
src_loop:
        ! src = (s * 7) % N  (N = 64: mask with N-1)
        umul %i0, 7, %o0
        and %o0, N - 1, %i1    ! src
        ! init dist[] = INF, visited[] = 0
        set dist, %g3
        set visited, %g6
        set INF, %o1
        clr %l0
init:
        sll %l0, 2, %o0
        st %o1, [%g3 + %o0]
        stb %g0, [%g6 + %l0]
        add %l0, 1, %l0
        cmp %l0, N
        bl init
        nop
        sll %i1, 2, %o0
        st %g0, [%g3 + %o0]    ! dist[src] = 0

        clr %i2                ! outer iteration count
outer:
        ! find u = argmin dist over unvisited
        set INF + 1, %l1       ! best
        mov N, %l2             ! u = N (none)
        clr %l0                ! i
scan:
        ldub [%g6 + %l0], %o0
        cmp %o0, 0
        bne scan_next
        nop
        sll %l0, 2, %o0
        ld [%g3 + %o0], %o1    ! dist[i]
        cmp %o1, %l1
        bgeu scan_next
        nop
        mov %o1, %l1
        mov %l0, %l2
scan_next:
        add %l0, 1, %l0
        cmp %l0, N
        bl scan
        nop
        cmp %l2, N
        be src_done            ! no reachable unvisited node
        nop
        ! visited[u] = 1
        mov 1, %o0
        stb %o0, [%g6 + %l2]
        ! relax all unvisited v
        sll %l2, 2, %o0
        ld [%g3 + %o0], %l3    ! dist[u]
        ! row base = adj + u*N
        sll %l2, 6, %o0        ! u * 64
        set adj, %o1
        add %o1, %o0, %l4      ! &adj[u*N]
        clr %l0                ! v
relax:
        ldub [%g6 + %l0], %o0
        cmp %o0, 0
        bne relax_next
        nop
        ldub [%l4 + %l0], %o1  ! w(u,v)
        add %l3, %o1, %o1      ! nd
        sll %l0, 2, %o2
        ld [%g3 + %o2], %o3    ! dist[v]
        cmp %o1, %o3
        bgeu relax_next
        nop
        st %o1, [%g3 + %o2]
relax_next:
        add %l0, 1, %l0
        cmp %l0, N
        bl relax
        nop
        add %i2, 1, %i2
        cmp %i2, N
        bl outer
        nop
src_done:
        ! checksum += sum dist[]
        set dist, %g3
        clr %l0
sum:
        sll %l0, 2, %o0
        ld [%g3 + %o0], %o1
        add %g7, %o1, %g7
        add %l0, 1, %l0
        cmp %l0, N
        bl sum
        nop
        add %i0, 1, %i0
        cmp %i0, SOURCES
        bl src_loop
        nop

        set {expected}, %o1
        cmp %g7, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
dist:   .space {dist_bytes}
visited: .space {N}
        .align 4
adj:    .space {nn}
",
        nn = N * N,
        dist_bytes = N * 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_satisfies_triangle_inequality_spot_checks() {
        // Independent property: no distance exceeds N * max weight and
        // the source distance is zero (checked through a re-run of the
        // algorithm with explicit assertions).
        let adj = adjacency();
        let src = 0usize;
        let mut dist = [INF; N];
        let mut visited = [false; N];
        dist[src] = 0;
        for _ in 0..N {
            let mut best = INF + 1;
            let mut u = N;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == N {
                break;
            }
            visited[u] = true;
            for v in 0..N {
                if !visited[v] {
                    let nd = dist[u] + u32::from(adj[u * N + v]);
                    if nd < dist[v] {
                        dist[v] = nd;
                    }
                }
            }
        }
        assert_eq!(dist[src], 0);
        for (v, &d) in dist.iter().enumerate() {
            assert!(d <= 255, "complete graph: one hop suffices as a bound ({v}: {d})");
            // Triangle inequality against the direct edge.
            if v != src {
                assert!(d <= u32::from(adj[src * N + v]), "{v}");
            }
        }
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
