/root/repo/target/debug/examples/bounds_check-86927f42e484851e.d: examples/bounds_check.rs

/root/repo/target/debug/examples/bounds_check-86927f42e484851e: examples/bounds_check.rs

examples/bounds_check.rs:
