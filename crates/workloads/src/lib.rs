//! MiBench-like workloads for the FlexCore reproduction.
//!
//! The paper evaluates on MiBench programs and small kernels: `sha`,
//! `gmac`, `stringsearch`, `fft`, `basicmath`, and `bitcount` (§V.A,
//! Table IV). The original C binaries cannot be used here (no SPARC
//! compiler in the loop), so each kernel is reimplemented in assembly
//! for the `flexcore-asm` dialect, preserving what the evaluation
//! actually depends on: a realistic dynamic instruction mix
//! (load/store/ALU/branch fractions) and memory behaviour.
//!
//! Every workload is **self-checking**: a Rust reference implementation
//! computes the expected checksum, which is baked into the generated
//! assembly; the program compares its own result and exits with `ta 0`
//! on success or `ta 1` on mismatch. A workload run is only valid if it
//! halts with code 0 — the integration tests and the benchmark harness
//! both assert this.
//!
//! `fft` and `basicmath` use fixed-point arithmetic (the Leon3 FPU is
//! not modeled; see `DESIGN.md` §6).
//!
//! # Example
//!
//! ```
//! use flexcore_workloads::Workload;
//!
//! let w = Workload::bitcount();
//! let program = w.program()?;
//! assert!(program.len() > 0);
//! # Ok::<(), flexcore_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod basicmath;
mod bitcount;
mod crc32;
mod dijkstra;
mod fft;
mod gmac;
mod qsort;
mod sha;
mod stringsearch;

use flexcore_asm::{assemble, AsmError, Program};

/// The 32-bit linear congruential generator shared by the assembly
/// kernels and their Rust references (Numerical Recipes constants).
pub fn lcg(state: u32) -> u32 {
    state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223)
}

/// The assembly snippet computing one [`lcg`] step on `reg` (clobbers
/// `tmp`).
pub(crate) fn lcg_asm(reg: &str, tmp: &str) -> String {
    format!(
        "set 1664525, {tmp}
         umul {reg}, {tmp}, {reg}
         set 1013904223, {tmp}
         add {reg}, {tmp}, {reg}"
    )
}

/// One benchmark kernel.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    name: &'static str,
    source_fn: fn() -> String,
}

impl PartialEq for Workload {
    /// Workloads are identified by name (comparing the generator
    /// function pointers would be meaningless).
    fn eq(&self, other: &Workload) -> bool {
        self.name == other.name
    }
}

impl Eq for Workload {}

impl Workload {
    /// SHA-1 compression over LCG-generated blocks (ALU-heavy with a
    /// message-schedule working set).
    pub fn sha() -> Workload {
        Workload { name: "sha", source_fn: sha::source }
    }

    /// GHASH-style GF(2^32) MAC over a message buffer (shift/xor
    /// carry-less multiply loops).
    pub fn gmac() -> Workload {
        Workload { name: "gmac", source_fn: gmac::source }
    }

    /// Boyer–Moore–Horspool search over LCG-generated text (load- and
    /// branch-heavy).
    pub fn stringsearch() -> Workload {
        Workload { name: "stringsearch", source_fn: stringsearch::source }
    }

    /// Fixed-point radix-2 FFT, 128 points, Q14 twiddles
    /// (multiply-heavy with strided memory access).
    pub fn fft() -> Workload {
        Workload { name: "fft", source_fn: fft::source }
    }

    /// Integer square roots, GCDs, and divisions (divide-heavy).
    pub fn basicmath() -> Workload {
        Workload { name: "basicmath", source_fn: basicmath::source }
    }

    /// Bit counting by three methods including a lookup table
    /// (ALU/branch mix with table loads).
    pub fn bitcount() -> Workload {
        Workload { name: "bitcount", source_fn: bitcount::source }
    }

    /// CRC-32 over a generated buffer (extra workload, MiBench
    /// telecomm; not part of the paper's Table IV set).
    pub fn crc32() -> Workload {
        Workload { name: "crc32", source_fn: crc32::source }
    }

    /// Iterative quicksort over generated words (extra workload,
    /// MiBench auto; not part of the paper's Table IV set).
    pub fn qsort() -> Workload {
        Workload { name: "qsort", source_fn: qsort::source }
    }

    /// All six workloads in the paper's Table IV order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::sha(),
            Workload::gmac(),
            Workload::stringsearch(),
            Workload::fft(),
            Workload::basicmath(),
            Workload::bitcount(),
        ]
    }

    /// Single-source shortest paths over a generated graph (extra
    /// workload, MiBench network; not part of the paper's Table IV
    /// set).
    pub fn dijkstra() -> Workload {
        Workload { name: "dijkstra", source_fn: dijkstra::source }
    }

    /// Extra workloads beyond the paper's set (used by tests and the
    /// `flexsim` CLI, not by the table regenerators).
    pub fn extra() -> Vec<Workload> {
        vec![Workload::crc32(), Workload::qsort(), Workload::dijkstra()]
    }

    /// Workload name as it appears in the paper's tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The generated assembly source (with the expected checksum baked
    /// in).
    pub fn source(&self) -> String {
        (self.source_fn)()
    }

    /// Assembles the workload.
    ///
    /// # Errors
    ///
    /// Returns the assembler error on a malformed kernel (a bug; the
    /// test suite assembles every workload).
    pub fn program(&self) -> Result<Program, AsmError> {
        assemble(&self.source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_mem::{MainMemory, SystemBus};
    use flexcore_pipeline::{Core, CoreConfig, ExitReason};

    /// Runs a workload on the bare core; it must self-verify (halt 0).
    fn run_and_verify(w: Workload) -> Core {
        let program = w.program().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.load_program(&program, &mut mem);
        let exit = core.run(&mut mem, &mut bus, 50_000_000);
        assert_eq!(exit, ExitReason::Halt(0), "{} failed self-check", w.name());
        core
    }

    #[test]
    fn sha_self_checks() {
        let core = run_and_verify(Workload::sha());
        assert!(core.stats().instret > 50_000, "{}", core.stats().instret);
    }

    #[test]
    fn gmac_self_checks() {
        let core = run_and_verify(Workload::gmac());
        assert!(core.stats().instret > 50_000);
    }

    #[test]
    fn stringsearch_self_checks() {
        let core = run_and_verify(Workload::stringsearch());
        assert!(core.stats().instret > 50_000);
        // Load-heavy by design (the highest load fraction of the six
        // kernels).
        assert!(core.stats().class_fraction(|c| c.is_load()) > 0.10);
    }

    #[test]
    fn fft_self_checks() {
        let core = run_and_verify(Workload::fft());
        assert!(core.stats().instret > 50_000);
        assert!(core.stats().class_fraction(|c| c.is_mem()) > 0.10);
    }

    #[test]
    fn basicmath_self_checks() {
        let core = run_and_verify(Workload::basicmath());
        assert!(core.stats().instret > 30_000);
    }

    #[test]
    fn bitcount_self_checks() {
        let core = run_and_verify(Workload::bitcount());
        assert!(core.stats().instret > 50_000);
    }

    #[test]
    fn crc32_self_checks() {
        let core = run_and_verify(Workload::crc32());
        assert!(core.stats().instret > 100_000);
        assert!(core.stats().class_fraction(|c| c.is_load()) > 0.08);
    }

    #[test]
    fn qsort_self_checks() {
        let core = run_and_verify(Workload::qsort());
        assert!(core.stats().instret > 100_000);
        // Quicksort is branch-heavy.
        assert!(core.stats().class_fraction(|c| c == flexcore_isa::InstrClass::BranchCond) > 0.08);
    }

    #[test]
    fn dijkstra_self_checks() {
        let core = run_and_verify(Workload::dijkstra());
        assert!(core.stats().instret > 100_000);
        // The argmin/relax scans are load-rich (~14% of instructions).
        assert!(core.stats().class_fraction(|c| c.is_load()) > 0.12);
    }

    #[test]
    fn workload_names_match_table_iv() {
        let names: Vec<_> = Workload::all().iter().map(|w| w.name()).collect();
        assert_eq!(names, ["sha", "gmac", "stringsearch", "fft", "basicmath", "bitcount"]);
    }

    #[test]
    fn lcg_matches_reference_constants() {
        assert_eq!(lcg(0), 1_013_904_223);
        assert_eq!(lcg(1), 1_015_568_748);
    }
}
