//! Cross-crate integration tests: each extension detects the class of
//! bug it exists for, and stays silent on benign programs — driven
//! end-to-end through the assembler, the core, the interface, and the
//! meta-data subsystem.

use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::{bc, dift, Bc, Dift, Extension, Sec, Umc};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::isa::Reg;
use flexcore_suite::pipeline::ExitReason;

fn run<E: Extension>(src: &str, ext: E) -> flexcore_suite::flexcore::RunResult {
    let program = assemble(src).expect("assembles");
    let mut sys = System::new(SystemConfig::fabric_half_speed(), ext);
    sys.load_program(&program);
    sys.try_run(1_000_000).expect("simulation error")
}

// ---------------------------------------------------------------- UMC

#[test]
fn umc_catches_read_before_write() {
    let r = run(
        "start: set 0x8000, %o0
                ld [%o0], %o1
                ta 0",
        Umc::new(),
    );
    let trap = r.monitor_trap.expect("must trap");
    assert!(trap.reason.contains("uninitialized"));
    assert_eq!(r.exit, ExitReason::MonitorTrap { pc: trap.pc });
}

#[test]
fn umc_catches_use_after_free() {
    let src = format!(
        "start: set 0x8000, %o0
                st %g0, [%o0]
                ld [%o0], %o1        ! fine
                mov 4, %o1
                cpop1 {clear}, %o0, %o1, %g0  ! free the word
                ld [%o0], %o2        ! use after free
                ta 0",
        clear = flexcore_suite::flexcore::ext::umc::ops::CLEAR_RANGE,
    );
    let r = run(&src, Umc::new());
    assert!(r.monitor_trap.is_some());
}

#[test]
fn umc_is_silent_on_correct_programs() {
    let r = run(
        "start: set 0x8000, %o0
                mov 32, %o1
        wr:     st %o1, [%o0]
                add %o0, 4, %o0
                subcc %o1, 1, %o1
                bne wr
                nop
                set 0x8000, %o0
                mov 32, %o1
        rd:     ld [%o0], %o2
                add %o0, 4, %o0
                subcc %o1, 1, %o1
                bne rd
                nop
                ta 0",
        Umc::new(),
    );
    assert!(r.monitor_trap.is_none(), "{:?}", r.monitor_trap);
    assert_eq!(r.exit, ExitReason::Halt(0));
}

// --------------------------------------------------------------- DIFT

#[test]
fn dift_tracks_taint_through_arithmetic_chains() {
    // taint -> load -> add -> xor -> jump: still caught.
    let src = format!(
        "start: set 0x8000, %o0
                set target, %o1
                st %o1, [%o0]        ! store the target address
                mov 4, %o1
                cpop1 {taint}, %o0, %o1, %g0
                ld [%o0], %o2        ! tainted
                add %o2, %g0, %o3    ! taint propagates
                xor %o3, %g0, %o4    ! and again
                jmpl %o4, %o7
                nop
        target: ta 0",
        taint = dift::ops::TAINT_RANGE,
    );
    let r = run(&src, Dift::new());
    let trap = r.monitor_trap.expect("tainted jump must trap");
    assert!(trap.reason.contains("tainted"));
}

#[test]
fn dift_declassification_clears_taint() {
    let src = format!(
        "start: set 0x8000, %o0
                set target, %o1
                st %o1, [%o0]
                mov 4, %o1
                cpop1 {taint}, %o0, %o1, %g0
                mov 4, %o1
                cpop1 {clear}, %o0, %o1, %g0  ! declassify
                ld [%o0], %o2
                jmpl %o2, %o7
                nop
        target: ta 0",
        taint = dift::ops::TAINT_RANGE,
        clear = dift::ops::CLEAR_RANGE,
    );
    let r = run(&src, Dift::new());
    assert!(r.monitor_trap.is_none(), "{:?}", r.monitor_trap);
    assert_eq!(r.exit, ExitReason::Halt(0));
}

#[test]
fn dift_immediate_overwrite_scrubs_taint() {
    // Overwriting a tainted register with an immediate makes a later
    // jump through it safe (no taint explosion).
    let src = format!(
        "start: set 0x8000, %o0
                mov 4, %o1
                cpop1 {taint}, %o0, %o1, %g0
                ld [%o0], %o2        ! tainted garbage
                set target, %o2      ! immediate overwrite
                jmpl %o2, %o7
                nop
        target: ta 0",
        taint = dift::ops::TAINT_RANGE,
    );
    let r = run(&src, Dift::new());
    assert!(r.monitor_trap.is_none(), "{:?}", r.monitor_trap);
}

// ----------------------------------------------------------------- BC

#[test]
fn bc_catches_negative_indexing() {
    let src = format!(
        "start: set 0x8000, %o0
                set {lc}, %o1
                cpop1 {color}, %o0, %o1, %g0
                mov {o0}, %o2
                mov 5, %o3
                cpop1 {setreg}, %o2, %o3, %g0
                ld [%o0 - 4], %o4    ! array[-1]
                ta 0",
        color = bc::ops::COLOR_RANGE,
        setreg = bc::ops::SET_REG_COLOR,
        o0 = Reg::O0.index(),
        lc = (32u32 << 4) | 5,
    );
    let r = run(&src, Bc::new());
    assert!(r.monitor_trap.is_some());
}

#[test]
fn bc_pointer_passed_through_memory_keeps_working() {
    // Spill the colored pointer to (colored) memory, reload it, use it.
    let src = format!(
        "start: set 0x8000, %o0      ! the array
                set {lc}, %o1
                cpop1 {color}, %o0, %o1, %g0
                mov {o0}, %o2
                mov 5, %o3
                cpop1 {setreg}, %o2, %o3, %g0
                set 0x9000, %o5      ! a spill slot (color 0)
                st %o0, [%o5]        ! spill the pointer
                clr %o0
                ld [%o5], %o0        ! reload: color must come back
                ld [%o0 + 8], %o4    ! in-bounds use
                ta 0",
        color = bc::ops::COLOR_RANGE,
        setreg = bc::ops::SET_REG_COLOR,
        o0 = Reg::O0.index(),
        lc = (32u32 << 4) | 5,
    );
    let r = run(&src, Bc::new());
    assert!(r.monitor_trap.is_none(), "{:?}", r.monitor_trap);
    assert_eq!(r.exit, ExitReason::Halt(0));
}

// ---------------------------------------------------------------- SEC

#[test]
fn sec_detects_injected_faults_at_every_bit_position() {
    let src = "start: clr %o0
                mov 100, %o1
        loop:   add %o0, %o1, %o0
                subcc %o1, 1, %o1
                bne loop
                nop
                ta 0";
    for bit in [0, 9, 21, 31] {
        let program = assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
        sys.load_program(&program);
        // Instruction 7 is the second loop `add`.
        sys.inject_result_fault(7, bit);
        let r = sys.try_run(100_000).expect("simulation error");
        assert!(r.monitor_trap.is_some(), "bit {bit} escaped");
    }
}

#[test]
fn sec_is_silent_without_faults() {
    let r = run(
        "start: mov 7, %o0
                umul %o0, %o0, %o1
                udiv %o1, %o0, %o2
                sll %o2, 3, %o3
                sra %o3, 1, %o4
                subcc %o4, %o0, %o5
                ta 0",
        Sec::new(),
    );
    assert!(r.monitor_trap.is_none(), "{:?}", r.monitor_trap);
    assert_eq!(r.exit, ExitReason::Halt(0));
}

// ------------------------------------------- doubleword & atomic ops

#[test]
fn dift_taint_flows_through_ldd_std_and_swap() {
    let src = format!(
        "start: set 0x8000, %o0
                st %g0, [%o0]
                st %g0, [%o0 + 4]
                set target, %o2
                st %o2, [%o0]        ! plant the jump target
                mov 8, %o1
                cpop1 {taint}, %o0, %o1, %g0  ! taint the doubleword
                ldd [%o0], %o2       ! taints BOTH %o2 and %o3
                set 0x8010, %o0
                std %o2, [%o0]       ! taint follows to memory
                ld [%o0], %o4        ! reload the tainted target
                jmpl %o4, %o7
                nop
        target: ta 0",
        taint = flexcore_suite::flexcore::ext::dift::ops::TAINT_RANGE,
    );
    let r = run(&src, Dift::new());
    assert!(r.monitor_trap.is_some(), "taint must survive ldd -> std -> ld: {:?}", r.exit);
}

#[test]
fn umc_checks_both_words_of_a_doubleword_load() {
    let r = run(
        "start: set 0x8000, %o0
                st %g0, [%o0]        ! only the first word initialized
                ldd [%o0], %o2
                ta 0",
        Umc::new(),
    );
    assert!(r.monitor_trap.is_some(), "half-initialized ldd must trap");
    let ok = run(
        "start: set 0x8000, %o0
                st %g0, [%o0]
                st %g0, [%o0 + 4]
                ldd [%o0], %o2
                ta 0",
        Umc::new(),
    );
    assert!(ok.monitor_trap.is_none(), "{:?}", ok.monitor_trap);
}

#[test]
fn umc_swap_checks_and_initializes() {
    // Swapping into uninitialized memory traps (it reads)...
    let r = run(
        "start: set 0x8000, %o0
                swap [%o0], %o1
                ta 0",
        Umc::new(),
    );
    assert!(r.monitor_trap.is_some());
    // ...but after initialization a swap chain is fine.
    let ok = run(
        "start: set 0x8000, %o0
                st %g0, [%o0]
                swap [%o0], %o1
                swap [%o0], %o2
                ta 0",
        Umc::new(),
    );
    assert!(ok.monitor_trap.is_none(), "{:?}", ok.monitor_trap);
}

#[test]
fn bc_checks_both_words_of_doubleword_accesses() {
    // Color 8 bytes; an ldd one word before the end straddles the
    // boundary and must trap.
    let src = format!(
        "start: set 0x8000, %o0
                set {lc}, %o1
                cpop1 {color}, %o0, %o1, %g0
                mov {o0}, %o2
                mov 5, %o3
                cpop1 {setreg}, %o2, %o3, %g0
                ldd [%o0], %o2       ! fully inside: fine
                ldd [%o0 + 8], %o4   ! second word out of bounds
                ta 0",
        color = bc::ops::COLOR_RANGE,
        setreg = bc::ops::SET_REG_COLOR,
        o0 = Reg::O0.index(),
        lc = (12u32 << 4) | 5, // 12 bytes = 3 words colored
    );
    let r = run(&src, Bc::new());
    let trap = r.monitor_trap.expect("boundary-straddling ldd must trap");
    assert!(trap.reason.contains("out-of-bound"));
}

// ----------------------------------------------- cross-cutting checks

#[test]
fn monitored_runs_preserve_program_results() {
    // The monitor is transparent: the workload's own self-check passes
    // under every extension.
    let w = flexcore_suite::workloads::Workload::bitcount();
    let program = w.program().unwrap();
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Dift::new());
    sys.load_program(&program);
    assert_eq!(sys.try_run(100_000_000).expect("simulation error").exit, ExitReason::Halt(0));
}

#[test]
fn traps_are_imprecise_but_always_delivered() {
    // The violating load is followed by work; with a slow fabric the
    // TRAP arrives late (non-zero skid), but even if the program
    // reaches its own `ta 0` first, the exception still wins (the core
    // waits for EMPTY before completing).
    let program = assemble(
        "start: set 0x8000, %o0
                ld [%o0], %o1        ! uninitialized: the violation
                add %o2, 1, %o2
                add %o2, 2, %o2
                ta 0",
    )
    .unwrap();
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(100_000).expect("simulation error");
    assert!(matches!(r.exit, ExitReason::MonitorTrap { .. }), "{:?}", r.exit);
    let skid = r.trap_skid.expect("trap fired");
    assert!(skid >= 1, "imprecise delivery lets later instructions commit: skid {skid}");
    // The trap still reports the *violating* PC, not where the core
    // stopped.
    assert!(r.monitor_trap.unwrap().reason.contains("uninitialized"));
}

#[test]
fn traps_report_the_offending_pc() {
    let program = assemble(
        "start: nop
                nop
        bugpc:  set 0x8000, %o0
                ld [%o0], %o1
                ta 0",
    )
    .unwrap();
    let bugpc = program.symbol("bugpc").unwrap();
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(100_000).expect("simulation error");
    // The `set` is two instructions; the load is 8 bytes past bugpc.
    assert_eq!(r.monitor_trap.unwrap().pc, bugpc + 8);
}
