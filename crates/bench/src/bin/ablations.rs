//! Ablation study of the FlexCore design choices called out in the
//! paper:
//!
//! * **Core-side pre-decode** (§III.C): "our DIFT prototype can run 30%
//!   faster by performing the instruction decoding for operands and
//!   control signals on the core side" — ablated by making the fabric
//!   decode the raw instruction word itself (one extra fabric cycle
//!   per packet).
//! * **Bit-granular meta-data writes** (§III.D): "without this feature,
//!   a co-processor needs to perform an explicit cache read and then an
//!   explicit cache write in order to update meta-data" — ablated by
//!   turning every masked write into a read-modify-write pair.
//! * **Decoupled execution** (§III.B): the FIFO lets the core commit
//!   without waiting for the fabric — ablated by requiring an
//!   acknowledgment per forwarded instruction (precise exceptions).
//! * **Meta-data cache capacity**: the paper's prototype uses 4 KB;
//!   swept here from 1 KB to 16 KB.
//!
//! ```sh
//! cargo run --release -p flexcore-bench --bin ablations
//! ```

use flexcore::SystemConfig;
use flexcore_bench::{baseline_cycles, geomean, run_extension, ExtKind};
use flexcore_workloads::Workload;

fn sweep(label: &str, cfg: SystemConfig, workloads: &[Workload], baselines: &[u64], ext: ExtKind) {
    let ratios: Vec<f64> = workloads
        .iter()
        .zip(baselines)
        .map(|(w, &b)| run_extension(w, ext, cfg).cycles as f64 / b as f64)
        .collect();
    println!("  {:<44}{:>8.3}", label, geomean(&ratios));
}

fn main() {
    let workloads = vec![Workload::sha(), Workload::stringsearch(), Workload::bitcount()];
    let baselines: Vec<u64> = workloads.iter().map(baseline_cycles).collect();

    println!("Ablations (geomean normalized time over sha/stringsearch/bitcount)");
    println!("{}", "=".repeat(60));

    for ext in [ExtKind::Dift, ExtKind::Bc] {
        let base_cfg = SystemConfig::fabric_half_speed();
        println!("\n{} at 0.5X fabric clock:", ext.name());
        sweep("FlexCore as proposed", base_cfg, &workloads, &baselines, ext);
        sweep(
            "- no core-side pre-decode (fabric decodes)",
            base_cfg.without_core_decode(),
            &workloads,
            &baselines,
            ext,
        );
        sweep(
            "- no bit-masked meta writes (RMW pairs)",
            base_cfg.without_masked_writes(),
            &workloads,
            &baselines,
            ext,
        );
        sweep(
            "- no decoupling (ack per instruction)",
            base_cfg.with_precise_exceptions(),
            &workloads,
            &baselines,
            ext,
        );
    }

    println!("\nMeta-data cache capacity (BC at 0.25X — a saturated fabric, where");
    println!("meta misses cost throughput directly — on stringsearch, whose");
    println!("24-KB meta footprint exceeds the default 4-KB cache):");
    let w = [Workload::stringsearch()];
    let b = [baseline_cycles(&w[0])];
    for kb in [1u32, 2, 4, 8, 16, 32] {
        let cfg = SystemConfig::fabric_quarter_speed().with_meta_cache_bytes(kb * 1024);
        sweep(&format!("{kb} KB meta cache"), cfg, &w, &b, ExtKind::Bc);
    }

    println!("\nExpected shapes: each removed mechanism costs performance; the");
    println!("pre-decode ablation hits DIFT hardest (the paper's 30% note);");
    println!("the RMW ablation hits store/allocation-heavy monitoring; the");
    println!("no-decoupling ablation is the most expensive of all. The cache");
    println!("sweep is nearly flat below the footprint size: streaming meta");
    println!("access is compulsory-miss-bound, so only a cache that holds the");
    println!("whole footprint (32 KB) helps — evidence for the paper's choice");
    println!("of a small 4-KB meta cache.");
}
