//! Regenerates the paper's **Figure 4**: the percentage of committed
//! instructions forwarded to the reconfigurable fabric, per benchmark,
//! for each extension prototype.
//!
//! The forwarded fraction is a property of the CFGR configuration and
//! the benchmark's dynamic instruction mix, so it is independent of the
//! fabric clock; the runs use the 1X configuration.
//!
//! `--series <dir>` additionally writes each run's cycle-resolved epoch
//! metrics as `<dir>/fig4_<workload>_<ext>.jsonl`.

use flexcore::SystemConfig;
use flexcore_bench::{geomean, run_extension, run_extension_series, series_dir_from_args, ExtKind};
use flexcore_workloads::Workload;

fn main() {
    let series = series_dir_from_args();
    println!("Figure 4: % of instructions forwarded to the fabric");
    println!("{}", "=".repeat(66));
    print!("{:<14}", "Benchmark");
    for ext in ExtKind::ALL {
        print!("{:>10}", ext.name());
    }
    println!();
    println!("{}", "-".repeat(66));
    let mut per_ext: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for workload in Workload::all() {
        print!("{:<14}", workload.name());
        for (ei, ext) in ExtKind::ALL.into_iter().enumerate() {
            let cfg = SystemConfig::fabric_full_speed();
            let run = match &series {
                Some(dir) => {
                    let stem = format!("fig4_{}_{}", workload.name(), ext.name().to_lowercase());
                    run_extension_series(&workload, ext, cfg, dir, &stem)
                }
                None => run_extension(&workload, ext, cfg),
            };
            per_ext[ei].push(run.forwarded_fraction.max(1e-6));
            print!("{:>9.1}%", run.forwarded_fraction * 100.0);
        }
        println!();
    }
    println!("{}", "-".repeat(66));
    print!("{:<14}", "geomean");
    for r in &per_ext {
        print!("{:>9.1}%", geomean(r) * 100.0);
    }
    println!();
    println!(
        "\nShape check vs the paper's Figure 4: UMC forwards the least\n\
         (loads/stores only); DIFT the most (loads/stores/ALU/jumps);\n\
         BC slightly below DIFT; SEC in between (ALU only)."
    );
}
