/root/repo/target/debug/deps/golden-ba5b298404b50262.d: crates/pipeline/tests/golden.rs

/root/repo/target/debug/deps/libgolden-ba5b298404b50262.rmeta: crates/pipeline/tests/golden.rs

crates/pipeline/tests/golden.rs:
