//! `gmac`: a GHASH-style message authentication kernel over GF(2^32)
//! (the paper lists `gmac` among its benchmarks; this kernel performs
//! the defining operation — accumulate-then-carry-less-multiply over a
//! message buffer — using the CRC-32 polynomial for reduction).

use crate::lcg;

const MSG_WORDS: u32 = 480;
const SEED: u32 = 0xcafe_babe;
const H_KEY: u32 = 0x8765_4321;
const POLY: u32 = 0x04c1_1db7;

/// Carry-less multiply of `a` by `b` in GF(2^32) mod POLY, bit-serial —
/// exactly the loop the assembly runs.
fn gfmul(mut a: u32, mut b: u32) -> u32 {
    let mut r = 0u32;
    for _ in 0..32 {
        if b & 1 != 0 {
            r ^= a;
        }
        b >>= 1;
        let hi = a & 0x8000_0000;
        a <<= 1;
        if hi != 0 {
            a ^= POLY;
        }
    }
    r
}

/// Rust reference producing the expected tag.
fn reference() -> u32 {
    // The message the assembly writes to memory first.
    let mut seed = SEED;
    let mut acc = 0u32;
    for _ in 0..MSG_WORDS {
        seed = lcg(seed);
        acc = gfmul(acc ^ seed, H_KEY);
    }
    acc
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! gmac: GHASH-style MAC, acc = (acc ^ m[i]) * H in GF(2^32).
        .equ WORDS, {MSG_WORDS}
start:
        ! Write the message buffer.
        set {SEED}, %g2
        set msg, %l6
        set WORDS, %l5
wr:
        {lcg}
        st %g2, [%l6]
        add %l6, 4, %l6
        subcc %l5, 1, %l5
        bne wr
        nop
        ! MAC pass.
        set msg, %l6
        set WORDS, %l5
        clr %g5                ! acc
        set 0x87654321, %g6    ! H
        set 0x04c11db7, %g7    ! reduction polynomial
mac:
        ld [%l6], %o0          ! m[i]
        xor %g5, %o0, %o1      ! a = acc ^ m
        mov %g6, %o2           ! b = H
        clr %g5                ! r = 0
        mov 32, %o5
gf:
        andcc %o2, 1, %g0
        be no_acc
        nop
        xor %g5, %o1, %g5
no_acc:
        srl %o2, 1, %o2
        sll %o1, 1, %o3
        ! if the shifted-out bit was set, fold in the polynomial
        srl %o1, 31, %o4
        cmp %o4, 0
        be no_fold
        mov %o3, %o1           ! delay slot: a <<= 1 either way
        xor %o1, %g7, %o1
no_fold:
        subcc %o5, 1, %o5
        bne gf
        nop
        add %l6, 4, %l6
        subcc %l5, 1, %l5
        bne mac
        nop

        set {expected}, %o1
        cmp %g5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
msg:    .space {msg_bytes}
",
        msg_bytes = MSG_WORDS * 4
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gfmul_is_linear_in_its_first_argument() {
        // (a ^ b) * h == a*h ^ b*h — the defining GF(2) property.
        for (a, b, h) in [(0x1234u32, 0x9999u32, H_KEY), (0xffff_ffff, 1, POLY), (7, 11, 13)] {
            assert_eq!(gfmul(a ^ b, h), gfmul(a, h) ^ gfmul(b, h));
        }
    }

    #[test]
    fn gfmul_identity_and_zero() {
        assert_eq!(gfmul(0x1234_5678, 0), 0);
        assert_eq!(gfmul(0, H_KEY), 0);
        assert_eq!(gfmul(0x1234_5678, 1), 0x1234_5678);
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
