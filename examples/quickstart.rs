//! Quickstart: assemble a tiny program, run it on the bare Leon3
//! model, then run it again under FlexCore with the UMC extension and
//! watch the monitor catch an uninitialized read.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::{Nop, Umc};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a bug: it sums five array elements but only
    // initializes four.
    let program = assemble(
        "start:  set 0x8000, %o0     ! heap array base
                mov 4, %o1           ! initialize only 4 of 5 elements
                mov %o0, %o2
        init:   st %o1, [%o2]
                add %o2, 4, %o2
                subcc %o1, 1, %o1
                bne init
                nop
                ! sum 5 elements (the fifth was never written)
                clr %o3
                mov 5, %o1
                mov %o0, %o2
        sum:    ld [%o2], %o4
                add %o3, %o4, %o3
                add %o2, 4, %o2
                subcc %o1, 1, %o1
                bne sum
                nop
                ta 0",
    )?;

    // 1. Unmonitored: the Nop extension forwards nothing, so this is
    //    the bare-core baseline — and the bug goes unnoticed.
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Nop::new());
    sys.load_program(&program);
    let baseline = sys.try_run(100_000).expect("simulation error");
    println!("unmonitored:  exit = {:?} (bug silently ignored)", baseline.exit);
    assert_eq!(baseline.exit, ExitReason::Halt(0));
    assert!(baseline.monitor_trap.is_none());

    // 2. FlexCore with UMC on the fabric at half the core clock.
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let result = sys.try_run(100_000).expect("simulation error");
    match &result.monitor_trap {
        Some(trap) => println!("with UMC:     {trap}"),
        None => println!("with UMC:     no trap?!"),
    }
    assert!(result.monitor_trap.is_some(), "UMC must catch the uninitialized read");

    println!(
        "\nrun stats: {} instructions, {} cycles (CPI {:.2}), {:.1}% forwarded to the fabric",
        result.instret,
        result.cycles,
        result.cpi(),
        result.forward.forwarded_fraction() * 100.0
    );
    Ok(())
}
