/root/repo/target/debug/deps/table3-96fd5d121e5b22f2.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-96fd5d121e5b22f2.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
