//! `Serialize` implementations for run results and diagnostics
//! (behind the `serde` feature).

use flexcore_isa::InstrClass;
use serde::{Serialize, Value};

use crate::error::{DeadlockSnapshot, SimError};
use crate::ext::MonitorTrap;
use crate::lockstep::{DivergenceReport, LockstepCommit, RegMismatch};
use crate::obs::FlightEntry;
use crate::recovery::RecoveryPolicy;
use crate::stats::{ForwardStats, ResilienceStats, RunResult};

fn per_class_value(per_class: &[u64]) -> Value {
    let mut obj = Value::object();
    for c in InstrClass::all() {
        let n = per_class[c.index()];
        if n > 0 {
            obj = obj.field(&format!("{c:?}").to_lowercase(), &n);
        }
    }
    obj.build()
}

impl Serialize for ForwardStats {
    fn to_value(&self) -> Value {
        Value::object()
            .field("committed", &self.committed)
            .field("forwarded", &self.forwarded)
            .field("dropped", &self.dropped)
            .field("forwarded_fraction", &self.forwarded_fraction())
            .field("fifo_stall_cycles", &self.fifo_stall_cycles)
            .field("peak_occupancy", &self.peak_occupancy)
            .raw("per_class", per_class_value(&self.per_class))
            .build()
    }
}

impl Serialize for ResilienceStats {
    fn to_value(&self) -> Value {
        Value::object()
            .field("faults_injected", &self.faults_injected)
            .field("packets_corrupted", &self.packets_corrupted)
            .field("dropped_overflow", &self.dropped_overflow)
            .field("bitstream_retries", &self.bitstream_retries)
            .field("bitstream_reloads", &self.bitstream_reloads)
            .field("unmonitored_commits", &self.unmonitored_commits)
            .field("suppressed_checks", &self.suppressed_checks)
            .field("swaps_completed", &self.swaps_completed)
            .field("swap_drained_packets", &self.swap_drained_packets)
            .field("swap_stall_cycles", &self.swap_stall_cycles)
            .field("elided_checks", &self.elided_checks)
            .build()
    }
}

impl Serialize for MonitorTrap {
    fn to_value(&self) -> Value {
        Value::object()
            .field("pc", &format!("{:#010x}", self.pc))
            .field("reason", &self.reason)
            .build()
    }
}

impl Serialize for FlightEntry {
    fn to_value(&self) -> Value {
        Value::object()
            .field("instret", &self.instret)
            .field("cycle", &self.cycle)
            .field("pc", &format!("{:#010x}", self.pc))
            .field("disassembly", &self.inst.to_string())
            .build()
    }
}

impl Serialize for DeadlockSnapshot {
    fn to_value(&self) -> Value {
        Value::object()
            .field("cycle", &self.cycle)
            .field("pc", &format!("{:#010x}", self.pc))
            .field("instret", &self.instret)
            .field("fifo_occupancy", &self.fifo_occupancy)
            .field("fifo_depth", &self.fifo_depth)
            .field("fabric_free_at", &self.fabric_free_at)
            .field("fabric_stuck", &self.fabric_stuck)
            .field("bus", &self.bus)
            .field("recent", &self.recent)
            .build()
    }
}

impl Serialize for LockstepCommit {
    fn to_value(&self) -> Value {
        Value::object()
            .field("index", &self.index)
            .field("pc", &format!("{:#010x}", self.pc))
            .field("inst_word", &format!("{:#010x}", self.inst_word))
            .build()
    }
}

impl Serialize for RegMismatch {
    fn to_value(&self) -> Value {
        Value::object()
            .field("reg", &u64::from(self.reg))
            .field("dut", &format!("{:#010x}", self.dut))
            .field("golden", &format!("{:#010x}", self.golden))
            .build()
    }
}

impl Serialize for DivergenceReport {
    fn to_value(&self) -> Value {
        Value::object()
            .field("commit_index", &self.commit_index)
            .field("cycle", &self.cycle)
            .field("reason", &self.reason)
            .field("dut_pc", &format!("{:#010x}", self.dut_pc))
            .field("golden_pc", &format!("{:#010x}", self.golden_pc))
            .field("dut_inst_word", &format!("{:#010x}", self.dut_inst_word))
            .field("golden_inst_word", &format!("{:#010x}", self.golden_inst_word))
            .field("reg_mismatches", &self.reg_mismatches)
            .raw(
                "icc_mismatch",
                self.icc_mismatch.map_or(Value::Null, |(dut, golden)| {
                    Value::object()
                        .field("dut", &u64::from(dut))
                        .field("golden", &u64::from(golden))
                        .build()
                }),
            )
            .field("dut_recent", &self.dut_recent)
            .field("golden_recent", &self.golden_recent)
            .field("flight", &self.flight)
            .build()
    }
}

impl Serialize for SimError {
    fn to_value(&self) -> Value {
        match self {
            SimError::Deadlock(snap) => {
                Value::object().field("kind", &"deadlock").field("detail", snap).build()
            }
            SimError::Divergence(report) => {
                Value::object().field("kind", &"divergence").field("detail", &**report).build()
            }
            SimError::CycleBudgetExceeded { budget, cycle, instret } => Value::object()
                .field("kind", &"cycle_budget_exceeded")
                .raw(
                    "detail",
                    Value::object()
                        .field("budget", budget)
                        .field("cycle", cycle)
                        .field("instret", instret)
                        .build(),
                )
                .build(),
            SimError::UnrecoverableCorruption { context, attempts, detail } => Value::object()
                .field("kind", &"unrecoverable_corruption")
                .raw(
                    "detail",
                    Value::object()
                        .field("context", context)
                        .field("attempts", attempts)
                        .field("detail", detail)
                        .build(),
                )
                .build(),
        }
    }
}

impl Serialize for RecoveryPolicy {
    fn to_value(&self) -> Value {
        Value::object()
            .field("checkpoint_every", &self.checkpoint_every)
            .field("max_replays", &self.max_replays)
            .field("max_reload_replays", &self.max_reload_replays)
            .field("allow_degraded", &self.allow_degraded)
            .field("checkpoint_cost_cycles", &self.checkpoint_cost_cycles)
            .build()
    }
}

impl RecoveryPolicy {
    /// Decodes a serialized policy; fields that are absent keep their
    /// defaults, so campaign/job specs can override selectively.
    pub fn from_value(v: &Value) -> RecoveryPolicy {
        let d = RecoveryPolicy::default();
        let u64_or =
            |key: &str, fallback: u64| v.get(key).and_then(Value::as_u64).unwrap_or(fallback);
        RecoveryPolicy {
            checkpoint_every: u64_or("checkpoint_every", d.checkpoint_every),
            max_replays: u64_or("max_replays", u64::from(d.max_replays)) as u32,
            max_reload_replays: u64_or("max_reload_replays", u64::from(d.max_reload_replays))
                as u32,
            allow_degraded: match v.get("allow_degraded") {
                Some(Value::Bool(b)) => *b,
                _ => d.allow_degraded,
            },
            checkpoint_cost_cycles: u64_or("checkpoint_cost_cycles", d.checkpoint_cost_cycles),
        }
    }
}

impl Serialize for RunResult {
    fn to_value(&self) -> Value {
        Value::object()
            .field("exit", &self.exit)
            .field("monitor_trap", &self.monitor_trap)
            .field("trap_skid", &self.trap_skid)
            .field("cycles", &self.cycles)
            .field("instret", &self.instret)
            .field("cpi", &self.cpi())
            .field("forward", &self.forward)
            .field("core", &self.core)
            .field("icache", &self.icache)
            .field("dcache", &self.dcache)
            .field("meta_cache", &self.meta_cache)
            .field("bus", &self.bus)
            .field("resilience", &self.resilience)
            .field("console", &String::from_utf8_lossy(&self.console).into_owned())
            .field("flight", &self.flight)
            // Host-time measurement fields all carry the `host_` prefix
            // so determinism gates can filter them (`grep -v '"host_'`):
            // wall-clock legitimately differs between identical runs.
            .field("host_ns", &self.host_ns)
            .field("host_sim_insns_per_sec", &self.sim_insns_per_sec())
            .field("host_sim_cycles_per_sec", &self.sim_cycles_per_sec())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_stats_round_trip_key_counters() {
        let s =
            ForwardStats { committed: 10, forwarded: 4, peak_occupancy: 3, ..Default::default() };
        let v = s.to_value();
        assert_eq!(v.get("committed").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("peak_occupancy").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("forwarded_fraction").and_then(Value::as_f64), Some(0.4));
    }

    #[test]
    fn sim_error_serializes_tagged() {
        let e = SimError::CycleBudgetExceeded { budget: 10, cycle: 11, instret: 2 };
        let v = e.to_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("cycle_budget_exceeded"));
        let json = serde::to_string(&v);
        assert!(serde::from_str(&json).is_ok(), "emitted JSON parses");
    }
}
