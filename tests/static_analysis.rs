//! The static-verification acceptance gates, as integration tests:
//!
//! * every paper workload analyzes with zero error-severity findings;
//! * every extension netlist lints with zero error-severity findings;
//! * the static/dynamic cross-check holds — UMC never traps at a load
//!   the analysis proved initialized, and the proven set is non-empty
//!   across the suite (the gate is not vacuous);
//! * seeded defects ARE caught (the analyzer is not silently inert).

use flexcore_suite::analysis::{analyze_program, lint_netlist, Rule, Severity};
use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::{Bc, Dift, Extension, Mprot, Sec, Umc};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use flexcore_suite::workloads::Workload;

#[test]
fn all_workloads_analyze_clean() {
    for w in Workload::all() {
        let report = analyze_program(&w.program().unwrap());
        let errors: Vec<_> = report.errors().collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name());
    }
}

#[test]
fn all_extension_netlists_lint_clean() {
    let netlists = [
        Umc::new().netlist(),
        Dift::new().netlist(),
        Bc::new().netlist(),
        Sec::new().netlist(),
        Mprot::new().netlist(),
    ];
    for nl in netlists {
        let errors: Vec<_> =
            lint_netlist(&nl, 6).into_iter().filter(|d| d.severity == Severity::Error).collect();
        assert!(errors.is_empty(), "{}: {errors:?}", nl.name());
    }
}

/// The soundness direction of `flexcheck --xcheck`: a load the static
/// pass proves in-image must never raise a UMC uninitialized-read
/// trap, because the loader marks the whole image initialized.
#[test]
fn umc_never_traps_on_statically_proven_loads() {
    let mut total_proven = 0usize;
    for w in Workload::all() {
        let program = w.program().unwrap();
        let report = analyze_program(&program);
        total_proven += report.proven_loads.len();

        let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        sys.load_program(&program);
        let r = sys.try_run(200_000_000).unwrap();
        assert_eq!(r.exit, ExitReason::Halt(0), "{}: {:?}", w.name(), r.monitor_trap);
        if let Some(trap) = &r.monitor_trap {
            assert!(
                !report.proven_loads.iter().any(|p| p.pc == trap.pc),
                "{}: UMC trap at statically proven load: {trap}",
                w.name()
            );
        }
    }
    // The gate must not hold vacuously: the interval domain proves
    // loads in several kernels (sha, stringsearch, bitcount).
    assert!(total_proven >= 10, "only {total_proven} proven loads across the suite");
}

/// A seeded uninitialized *register* read is caught statically —
/// the register-level analog of UMC's memory check.
#[test]
fn seeded_uninit_register_read_is_caught_statically() {
    let src = "start: add %l5, 1, %o0
                      set out, %l1
                      st %o0, [%l1]
                      ta 0
               out:   .space 4";
    let report = analyze_program(&assemble(src).unwrap());
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::UninitRead && d.is_error()),
        "{:?}",
        report.diagnostics
    );
}

/// A seeded uninitialized *memory* read: the static pass flags the
/// load (wild address, never initialized at load), the dynamic UMC
/// monitor traps on it, and — the cross-check invariant — the trapped
/// pc is not in the proven set.
#[test]
fn seeded_uninit_memory_read_is_caught_statically_and_dynamically() {
    let src = "start: set 0x00200000, %l1
                      ld [%l1], %o0
                      tst %o0
                      ta 0";
    let program = assemble(src).unwrap();
    let report = analyze_program(&program);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::LoadOutOfImage && d.is_error()),
        "{:?}",
        report.diagnostics
    );

    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(1_000_000).unwrap();
    let trap = r.monitor_trap.expect("UMC must trap the seeded read");
    assert!(trap.reason.contains("uninitialized"), "{trap}");
    assert!(
        !report.proven_loads.iter().any(|p| p.pc == trap.pc),
        "a trapped load must never be in the proven set: {trap}"
    );
}

/// A seeded delay-slot hazard (CTI in a delay slot) is an error.
#[test]
fn seeded_delay_slot_hazard_is_an_error() {
    let program = assemble("start: ba out\n ba out\nout: ta 0").unwrap();
    let report = analyze_program(&program);
    assert!(report.diagnostics.iter().any(|d| d.rule == Rule::DelaySlotCti && d.is_error()));
}
