/root/repo/target/debug/deps/faultsweep-f8e710aa1288c1bf.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/faultsweep-f8e710aa1288c1bf: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
