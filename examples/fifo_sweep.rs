//! FIFO sweep: reproduce the Figure 5 experiment interactively on one
//! workload — how the forward-FIFO depth trades area against commit
//! stalls.
//!
//! ```sh
//! cargo run --release --example fifo_sweep
//! ```

use flexcore_suite::flexcore::ext::{Dift, Nop};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::sha();
    let program = workload.program()?;

    // Baseline: the Nop extension forwards nothing, so the system runs
    // at bare-core speed regardless of FIFO depth.
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Nop::new());
    sys.load_program(&program);
    let base = sys.try_run(10_000_000).expect("simulation error").cycles;
    println!("workload: {}, baseline {} cycles\n", workload.name(), base);

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>6}",
        "FIFO", "cycles", "normalized", "stall cyc", "peak"
    );
    for depth in [2, 4, 8, 16, 32, 64, 128, 256] {
        let cfg = SystemConfig::fabric_half_speed().with_fifo_depth(depth);
        let mut sys = System::new(cfg, Dift::new());
        sys.load_program(&program);
        let r = sys.try_run(10_000_000).expect("simulation error");
        println!(
            "{:>6} {:>10} {:>12.3} {:>12} {:>6}",
            depth,
            r.cycles,
            r.cycles as f64 / base as f64,
            r.forward.fifo_stall_cycles,
            r.forward.peak_occupancy
        );
    }
    println!("\nThe curve flattens around 64 entries — the paper's chosen depth.");
    Ok(())
}
