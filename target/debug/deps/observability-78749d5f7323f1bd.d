/root/repo/target/debug/deps/observability-78749d5f7323f1bd.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-78749d5f7323f1bd.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
