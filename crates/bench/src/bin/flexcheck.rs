//! `flexcheck` — static verification of both halves of the FlexCore
//! artifact, cross-checked against the dynamic monitors.
//!
//! ```text
//! flexcheck [OPTIONS] [workload ...]
//!
//! OPTIONS:
//!   --json <file>   write the findings as a JSON artifact
//!   --xcheck        additionally run every selected workload under the
//!                   UMC extension and fail if the dynamic monitor
//!                   traps on a load the static pass proved initialized
//!   --taint         run the interprocedural taint pass and report the
//!                   check-elision table it proves (tainted-jump /
//!                   tainted-store findings plus per-class PC counts)
//!   --emit-elision <dir>  write each workload's elision table to
//!                   `<dir>/<workload>.elision.json` (implies --taint)
//!   --verify-elision  run every selected workload under UMC, DIFT, and
//!                   CFI twice — full and with the elision table — and
//!                   fail on any divergence (implies --taint)
//!   --max <N>       instruction budget for --xcheck / --verify-elision
//!                   runs (default 200M)
//!   --quiet         print only errors and the per-target summary
//!
//! With no workload arguments, all six paper kernels are analyzed
//! (sha gmac stringsearch fft basicmath bitcount) along with the seven
//! extension netlists (umc dift bc sec mprot cfi nop).
//! ```
//!
//! Exit codes: `0` clean, `1` at least one error-severity finding,
//! `2` usage or harness failure, `3` static/dynamic contradiction in
//! `--xcheck` mode or lockstep divergence in `--verify-elision` mode.
//!
//! The `--xcheck` soundness direction: the static must-initialize
//! analysis under-approximates (it only *proves* loads whose address
//! it resolves to the loaded image), so every proven load must be
//! silent under UMC. A UMC trap at a proven location means one of the
//! two oracles is wrong — either the analysis proved too much or the
//! monitor's tag pipeline lost an initialization — and either way the
//! build must not ship.
//!
//! The hot-swap direction: every ordered pair of swappable extension
//! bitstreams is rehearsed through one partial-reconfiguration region
//! — map, serialize, frame, program A, then program B over it — with
//! each committed mapping proven consistent against a fresh technology
//! mapping of its netlist. A pair that cannot complete this sequence
//! would brick a mid-run `--swap-at` between those extensions.

use std::collections::BTreeSet;
use std::process::ExitCode;

use flexcore::ext::{Bc, Cfi, CfiTable, Dift, Extension, Mprot, Nop, Sec, Umc};
use flexcore::{System, SystemConfig};
use flexcore_analysis::{analyze_program, lint_netlist, AnalysisReport, Diagnostic, Severity};
use flexcore_bench::elide::{build_elision_table, verify_elision, ELIDABLE_EXTENSIONS};
use flexcore_fabric::{
    from_bitstream, map_to_luts, segment_bitstream, to_bitstream, verify_consistent, Netlist,
    PartialRegion, FRAME_BYTES,
};
use flexcore_workloads::Workload;

/// LUT input count the netlist checks map against (Virtex-5, paper §5).
const LUT_K: usize = 6;

struct Options {
    workloads: Vec<String>,
    json: Option<String>,
    xcheck: bool,
    taint: bool,
    emit_elision: Option<String>,
    verify_elision: bool,
    max: u64,
    quiet: bool,
}

impl Options {
    /// `true` when any mode needing the taint pass and elision table is
    /// on (`--emit-elision` / `--verify-elision` imply `--taint`).
    fn wants_elision(&self) -> bool {
        self.taint || self.emit_elision.is_some() || self.verify_elision
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workloads: Vec::new(),
        json: None,
        xcheck: false,
        taint: false,
        emit_elision: None,
        verify_elision: false,
        max: 200_000_000,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = Some(args.next().ok_or("--json needs a file")?),
            "--xcheck" => opts.xcheck = true,
            "--taint" => opts.taint = true,
            "--emit-elision" => {
                opts.emit_elision = Some(args.next().ok_or("--emit-elision needs a directory")?);
            }
            "--verify-elision" => opts.verify_elision = true,
            "--max" => {
                opts.max = args
                    .next()
                    .ok_or("--max needs a value")?
                    .parse()
                    .map_err(|e| format!("--max: {e}"))?;
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other if !other.starts_with('-') => opts.workloads.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

fn selected_workloads(opts: &Options) -> Result<Vec<Workload>, String> {
    let all: Vec<Workload> = Workload::all().into_iter().chain(Workload::extra()).collect();
    if opts.workloads.is_empty() {
        return Ok(Workload::all().into_iter().collect());
    }
    opts.workloads
        .iter()
        .map(|name| {
            all.iter()
                .find(|w| w.name() == name)
                .copied()
                .ok_or_else(|| format!("unknown workload `{name}`"))
        })
        .collect()
}

/// Severity counts of one finding list.
fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let count = |s| diags.iter().filter(|d| d.severity == s).count();
    (count(Severity::Error), count(Severity::Warning), count(Severity::Info))
}

fn print_findings(target: &str, diags: &[Diagnostic], quiet: bool) {
    for d in diags {
        if !quiet || d.is_error() {
            println!("{target}: {d}");
        }
    }
    let (e, w, i) = tally(diags);
    println!("[{target}] {e} error(s), {w} warning(s), {i} note(s)");
}

fn diag_json(d: &Diagnostic) -> serde::Value {
    let mut obj =
        serde::Value::object().field("rule", &d.rule.id()).field("severity", &d.severity.name());
    if let Some(a) = d.addr {
        obj = obj.field("addr", &a);
    }
    obj.field("message", &d.message.as_str()).build()
}

fn findings_json(name: &str, diags: &[Diagnostic]) -> serde::Value {
    let (e, w, i) = tally(diags);
    serde::Value::object()
        .field("name", &name)
        .field("errors", &(e as u64))
        .field("warnings", &(w as u64))
        .field("infos", &(i as u64))
        .raw("diagnostics", serde::Value::Array(diags.iter().map(diag_json).collect()))
        .build()
}

/// Analyzes one workload program; returns the report for xcheck reuse.
fn check_workload(w: Workload, opts: &Options) -> Result<AnalysisReport, String> {
    let program = w.program().map_err(|e| format!("{}: {e}", w.name()))?;
    let report = analyze_program(&program);
    print_findings(w.name(), &report.diagnostics, opts.quiet);
    if !opts.quiet {
        println!(
            "[{}] {} blocks, {} reachable instructions, {} proven load(s)",
            w.name(),
            report.cfg.blocks().len(),
            report.cfg.code_len(),
            report.proven_loads.len()
        );
    }
    Ok(report)
}

fn extension_netlists() -> Vec<Netlist> {
    vec![
        Umc::new().netlist(),
        Dift::new().netlist(),
        Bc::new().netlist(),
        Sec::new().netlist(),
        Mprot::new().netlist(),
        // The CFI datapath (CAM lookups + class decode) is independent
        // of the edge table contents, so an empty table lints the same
        // netlist every program-specific instance uses.
        Cfi::new(CfiTable::new()).netlist(),
        Nop::new().netlist(),
    ]
}

/// Result of rehearsing one ordered swap pair through a fresh
/// partial-reconfiguration region.
struct SwapPairRow {
    from: String,
    to: String,
    from_frames: usize,
    to_frames: usize,
    error: Option<String>,
}

/// Programs `from`'s bitstream into a blank region, then `to`'s over
/// it — the exact frame sequence a mid-run swap performs — proving
/// each committed mapping consistent against a fresh mapping of its
/// netlist.
fn rehearse_swap_pair(from: &Netlist, to: &Netlist) -> SwapPairRow {
    let mut row = SwapPairRow {
        from: from.name().to_string(),
        to: to.name().to_string(),
        from_frames: 0,
        to_frames: 0,
        error: None,
    };
    let mut region = PartialRegion::new();
    let mut program = |netlist: &Netlist, frames_out: &mut usize| -> Result<(), String> {
        let bytes = to_bitstream(&map_to_luts(netlist, LUT_K));
        let decoded = from_bitstream(&bytes)
            .map_err(|e| format!("{}: bitstream does not round-trip: {e}", netlist.name()))?;
        verify_consistent(netlist, &decoded)
            .map_err(|e| format!("{}: decoded mapping: {e}", netlist.name()))?;
        let frames = segment_bitstream(&bytes, FRAME_BYTES);
        *frames_out = frames.len();
        region.begin_load(frames.len() as u32);
        for f in &frames {
            region
                .push_frame(f)
                .map_err(|e| format!("{}: frame {}: {e}", netlist.name(), f.index))?;
        }
        let mapping = region.commit().map_err(|e| format!("{}: commit: {e}", netlist.name()))?;
        verify_consistent(netlist, mapping)
            .map_err(|e| format!("{}: programmed mapping: {e}", netlist.name()))
    };
    row.error =
        program(from, &mut row.from_frames).and_then(|()| program(to, &mut row.to_frames)).err();
    row
}

/// Result of one `--xcheck` run.
struct XcheckRow {
    workload: String,
    proven: usize,
    forwarded_loads: u64,
    trap: Option<String>,
    contradiction: bool,
}

/// Runs `w` under UMC and compares the dynamic trap (if any) against
/// the static proven-load set.
fn xcheck_workload(w: Workload, report: &AnalysisReport, max: u64) -> Result<XcheckRow, String> {
    let program = w.program().map_err(|e| format!("{}: {e}", w.name()))?;
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(max).map_err(|e| format!("{}: {e}", w.name()))?;
    let proven: BTreeSet<u32> = report.proven_loads.iter().map(|p| p.pc).collect();
    let loads = [
        flexcore_isa::InstrClass::Ld,
        flexcore_isa::InstrClass::Ldub,
        flexcore_isa::InstrClass::Lduh,
        flexcore_isa::InstrClass::Ldsb,
        flexcore_isa::InstrClass::Ldsh,
    ]
    .iter()
    .map(|&c| r.forward.class_count(c))
    .sum();
    let contradiction = r.monitor_trap.as_ref().is_some_and(|t| proven.contains(&t.pc));
    Ok(XcheckRow {
        workload: w.name().to_string(),
        proven: proven.len(),
        forwarded_loads: loads,
        trap: r.monitor_trap.as_ref().map(|t| t.to_string()),
        contradiction,
    })
}

fn run() -> Result<u8, String> {
    let opts = parse_args()?;
    let workloads = selected_workloads(&opts)?;

    let mut any_error = false;
    let mut program_values = Vec::new();
    let mut reports = Vec::new();
    for &w in &workloads {
        let report = check_workload(w, &opts)?;
        any_error |= !report.is_clean();
        program_values.push(findings_json(w.name(), &report.diagnostics));
        reports.push(report);
    }

    let mut netlist_values = Vec::new();
    let netlists = extension_netlists();
    for netlist in &netlists {
        let diags = lint_netlist(netlist, LUT_K);
        print_findings(netlist.name(), &diags, opts.quiet);
        any_error |= diags.iter().any(Diagnostic::is_error);
        netlist_values.push(findings_json(netlist.name(), &diags));
    }

    // Every ordered pair (including A -> A, the bitstream-refresh case)
    // must survive the frame-by-frame region reprogramming a hot-swap
    // performs.
    let mut swap_values = Vec::new();
    let mut swap_failures = 0usize;
    for from in &netlists {
        for to in &netlists {
            let row = rehearse_swap_pair(from, to);
            match &row.error {
                Some(e) => {
                    swap_failures += 1;
                    println!("[swap {} -> {}] ERROR: {e}", row.from, row.to);
                }
                None if !opts.quiet => println!(
                    "[swap {} -> {}] ok ({} then {} frame(s) through one region)",
                    row.from, row.to, row.from_frames, row.to_frames
                ),
                None => {}
            }
            let mut obj = serde::Value::object()
                .field("from", &row.from.as_str())
                .field("to", &row.to.as_str())
                .field("from_frames", &(row.from_frames as u64))
                .field("to_frames", &(row.to_frames as u64))
                .field("ok", &row.error.is_none());
            if let Some(e) = &row.error {
                obj = obj.field("error", &e.as_str());
            }
            swap_values.push(obj.build());
        }
    }
    any_error |= swap_failures > 0;
    println!(
        "[swap-pairs] {} ordered pair(s) rehearsed, {} failure(s)",
        netlists.len() * netlists.len(),
        swap_failures
    );

    let mut contradictions = 0usize;
    let mut xcheck_values = Vec::new();
    if opts.xcheck {
        for (w, report) in workloads.iter().zip(&reports) {
            let row = xcheck_workload(*w, report, opts.max)?;
            println!(
                "[xcheck {}] {} proven load(s) static, {} loads forwarded to UMC, {}",
                row.workload,
                row.proven,
                row.forwarded_loads,
                match (&row.trap, row.contradiction) {
                    (None, _) => "no monitor trap".to_string(),
                    (Some(t), false) => format!("trap outside the proven set: {t}"),
                    (Some(t), true) => format!("CONTRADICTION: {t} at a statically proven load"),
                }
            );
            contradictions += usize::from(row.contradiction);
            let mut obj = serde::Value::object()
                .field("workload", &row.workload.as_str())
                .field("static_proven_loads", &(row.proven as u64))
                .field("dynamic_forwarded_loads", &row.forwarded_loads)
                .field("contradiction", &row.contradiction);
            if let Some(t) = &row.trap {
                obj = obj.field("monitor_trap", &t.as_str());
            }
            xcheck_values.push(obj.build());
        }
    }

    let mut divergences = 0usize;
    let mut taint_values = Vec::new();
    if opts.wants_elision() {
        if let Some(dir) = &opts.emit_elision {
            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        }
        for &w in &workloads {
            let program = w.program().map_err(|e| format!("{}: {e}", w.name()))?;
            let (table, summary) = build_elision_table(&program);
            let target = format!("taint {}", w.name());
            print_findings(&target, &summary.taint_diagnostics, opts.quiet);
            println!(
                "[elide {}] {} UMC, {} DIFT, {} CFI PC(s) elidable{}",
                w.name(),
                summary.umc_pcs,
                summary.dift_pcs,
                summary.cfi_pcs,
                if summary.taint_forfeited { " (taint forfeited its elision set)" } else { "" }
            );
            let mut obj = serde::Value::object()
                .field("workload", &w.name())
                .field("umc_pcs", &(summary.umc_pcs as u64))
                .field("dift_pcs", &(summary.dift_pcs as u64))
                .field("cfi_pcs", &(summary.cfi_pcs as u64))
                .field("taint_forfeited", &summary.taint_forfeited)
                .raw(
                    "diagnostics",
                    serde::Value::Array(summary.taint_diagnostics.iter().map(diag_json).collect()),
                );
            if let Some(dir) = &opts.emit_elision {
                let path = format!("{dir}/{}.elision.json", w.name());
                std::fs::write(&path, table.to_json()).map_err(|e| format!("{path}: {e}"))?;
                if !opts.quiet {
                    println!("[elide {}] wrote {} entries to {path}", w.name(), table.len());
                }
                obj = obj.field("table", &path.as_str());
            }
            let mut verify_values = Vec::new();
            if opts.verify_elision {
                for ext in ELIDABLE_EXTENSIONS {
                    let v = verify_elision(&program, ext, &table, opts.max)?;
                    match &v.divergence {
                        Some(d) => {
                            divergences += 1;
                            println!("[verify {} {ext}] DIVERGENCE: {d}", w.name());
                        }
                        None => println!(
                            "[verify {} {ext}] ok: {} of {} check(s) elided, verdict identical",
                            w.name(),
                            v.elided_checks,
                            v.full_forwarded
                        ),
                    }
                    let mut row = serde::Value::object()
                        .field("extension", &ext)
                        .field("elided_checks", &v.elided_checks)
                        .field("full_forwarded", &v.full_forwarded)
                        .field("elided_forwarded", &v.elided_forwarded)
                        .field("ok", &v.is_clean());
                    if let Some(d) = &v.divergence {
                        row = row.field("divergence", &d.as_str());
                    }
                    verify_values.push(row.build());
                }
                obj = obj.raw("verify", serde::Value::Array(verify_values));
            }
            taint_values.push(obj.build());
        }
        if opts.verify_elision {
            println!(
                "[verify-elision] {} workload(s) x {} extension(s), {} divergence(s)",
                workloads.len(),
                ELIDABLE_EXTENSIONS.len(),
                divergences
            );
        }
    }

    if let Some(path) = &opts.json {
        let mut artifact = serde::Value::object()
            .field("version", &1u64)
            .raw("programs", serde::Value::Array(program_values))
            .raw("netlists", serde::Value::Array(netlist_values))
            .raw("swaps", serde::Value::Array(swap_values));
        if opts.xcheck {
            artifact = artifact.raw("xcheck", serde::Value::Array(xcheck_values));
        }
        if opts.wants_elision() {
            artifact = artifact.raw("elision", serde::Value::Array(taint_values));
        }
        std::fs::write(path, serde::to_string_pretty(&artifact.build()))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote findings to {path}");
    }

    if contradictions > 0 {
        eprintln!(
            "{contradictions} static/dynamic contradiction(s): the static analysis and the \
             UMC monitor disagree"
        );
        return Ok(3);
    }
    if divergences > 0 {
        eprintln!("{divergences} lockstep divergence(s): an elided run did not match its full run");
        return Ok(3);
    }
    Ok(u8::from(any_error))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: flexcheck [--json FILE] [--xcheck] [--taint] [--emit-elision DIR]\n\
                 \x20                [--verify-elision] [--max N] [--quiet] [workload ...]\n\
                 \x20      workloads default to: sha gmac stringsearch fft basicmath bitcount"
            );
            ExitCode::from(2)
        }
    }
}
