//! Typed admission outcomes and the overload accounting trail.
//!
//! Admission is where `flexserve` refuses to fall over: the queue has
//! a bounded depth, so a submission burst cannot grow memory without
//! limit. Over-depth submissions come back as a typed
//! [`AdmitError::Rejected`] with a `retry_after_ms` hint (backpressure
//! the client can act on), and when a higher-priority job arrives at a
//! full queue the lowest-priority queued job is shed — recorded in a
//! [`ShedRecord`], never dropped silently.

use crate::job::JobId;

/// Why a job submission was not enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at its depth bound and the new job does not outrank
    /// any queued job. Retry after the hinted delay.
    Rejected {
        /// Queue depth at rejection.
        depth: usize,
        /// The configured depth bound.
        max_depth: usize,
        /// Backpressure hint: how long to wait before resubmitting,
        /// scaled by how deep the queue is.
        retry_after_ms: u64,
    },
    /// A job with the same campaign hash is already queued; the work
    /// would be identical, so the duplicate is refused.
    Duplicate {
        /// The queued campaign's id.
        id: JobId,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Rejected { depth, max_depth, retry_after_ms } => write!(
                f,
                "queue full (depth {depth}/{max_depth}); retry after ~{retry_after_ms} ms"
            ),
            AdmitError::Duplicate { id } => {
                write!(f, "campaign {id} is already queued (identical work)")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Admission counters — every submission lands in exactly one bucket,
/// so `admitted + rejected + duplicates` equals the submissions seen
/// and `shed` says how many admitted jobs were later displaced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Submissions refused with [`AdmitError::Rejected`].
    pub rejected: u64,
    /// Submissions refused with [`AdmitError::Duplicate`].
    pub duplicates: u64,
    /// Queued jobs displaced by higher-priority arrivals.
    pub shed: u64,
}

/// One graceful-degradation event: a queued job displaced by a
/// higher-priority arrival at a full queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShedRecord {
    /// The displaced campaign.
    pub id: JobId,
    /// Its human-readable name.
    pub name: String,
    /// Its priority (strictly below the displacer's).
    pub priority: u8,
    /// The campaign that took its place.
    pub displaced_by: JobId,
}

impl std::fmt::Display for ShedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shed campaign {} (`{}`, priority {}) for higher-priority campaign {}",
            self.id, self.name, self.priority, self.displaced_by
        )
    }
}
