//! Benchmark harness regenerating every table and figure of the
//! FlexCore paper.
//!
//! Binaries (each prints the paper's rows/series and, where available,
//! the paper's published numbers next to the measured ones):
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `table1` | Table I (extension descriptors) and Table II (interface fields) |
//! | `table3` | Table III (area / power / frequency, ASIC and FlexCore) |
//! | `table4` | Table IV (normalized execution time per benchmark × extension × fabric clock); `--software` adds the §V.C software baselines |
//! | `fig4`   | Figure 4 (fraction of instructions forwarded to the fabric) |
//! | `fig5`   | Figure 5 (average performance vs. forward-FIFO size) |
//!
//! The library part hosts the shared runners so the binaries and the
//! criterion benches stay thin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
mod runner;

pub use runner::{
    baseline_cycles, geomean, run_extension, ExtKind, RunSummary, MAX_INSTRUCTIONS,
};
