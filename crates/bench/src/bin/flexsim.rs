//! `flexsim` — run an assembly program (or a named workload) on the
//! FlexCore system from the command line.
//!
//! ```text
//! flexsim [OPTIONS] <program.s | workload-name>
//!
//! OPTIONS:
//!   --ext <umc|dift|bc|sec|mprot|cfi|none>  monitoring extension (default: none)
//!   --swap-at <COMMIT:ext[:policy]>      hot-swap the fabric bitstream to `ext` at the
//!                                        given commit boundary (repeatable; policy is
//!                                        reset|carry, default reset); CFI's edge table
//!                                        is recovered statically from the program
//!   --elide <table.json>                 install a check-elision table emitted by
//!                                        `flexcheck --emit-elision`; statically
//!                                        discharged checks are never enqueued
//!   --clock <1x|0.5x|0.25x>              fabric clock ratio (default: 0.5x)
//!   --fifo <N>                           forward-FIFO depth (default: 64)
//!   --max <N>                            instruction budget (default: 200M)
//!   --metrics <file>                     epoch-bucketed metrics as JSONL
//!   --epoch <N>                          metrics epoch width in cycles (default: 1000)
//!   --trace <file>                       Chrome trace-event JSON (open in Perfetto)
//!   --flight-recorder <N>                keep the last N commits for diagnostics
//!   --vcd <file>                         fabric waveform from the first forwarded packets
//!   --json                               print the full run result as JSON
//!   --commits                            print every committed instruction (bare core)
//!   --disasm                             print the assembled listing and exit
//!   --checkpoint-every <N>               write a checkpoint every N committed instructions
//!   --checkpoint-path <file>             where checkpoints go (default: flexsim.ckpt.json)
//!   --quit-after-checkpoint              exit 0 after the first checkpoint (deterministic
//!                                        stand-in for an interrupted run)
//!   --resume <file>                      restore a checkpoint before running
//!   --lockstep                           step an ISA-level golden model commit-for-commit
//!                                        and fail on any architectural divergence
//!   --recover                            run under the rollback-and-replay supervisor:
//!                                        checkpoint in memory every --checkpoint-every
//!                                        commits (default 10000) and walk the escalation
//!                                        ladder (replay, bitstream reload, degraded mode)
//!                                        on any monitor trap or simulation error
//!
//! Workload names: sha gmac stringsearch fft basicmath bitcount
//!                  crc32 qsort dijkstra
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p flexcore-bench --bin flexsim -- sha --ext dift
//! cargo run --release -p flexcore-bench --bin flexsim -- sha --ext umc \
//!     --metrics sha.jsonl --trace sha.trace.json --flight-recorder 32
//! # start under UMC, hot-swap the fabric to CFI after 5000 commits
//! cargo run --release -p flexcore-bench --bin flexsim -- sha --ext umc \
//!     --swap-at 5000:cfi
//! ```
//!
//! The observability outputs (`--metrics`, `--trace`, `--flight-recorder`,
//! `--vcd`, `--json`) require a monitoring extension: they observe the
//! [`System`] commit/forward path, which the bare core does not have.
//! The same goes for `--checkpoint-every`/`--resume`/`--lockstep`:
//! checkpointing and golden-model lockstep are [`System`]-level
//! machinery.
//!
//! A `--resume`d run must be built the same way as the one that wrote
//! the checkpoint: same program, same `--ext`, `--clock`, and `--fifo`.
//! The restored run finishes with output bit-identical to the
//! uninterrupted run, so `flexsim sha --ext umc --json` and the pair
//! "checkpoint, then resume" can be `diff`ed directly (CI does).

use std::process::ExitCode;

use flexcore::checkpoint::Snapshot;
use flexcore::ext::Extension;
use flexcore::obs::{ChromeRecorder, MetricsRecorder, Observer, TraceSink};
use flexcore::recovery::{RecoveryPolicy, Supervisor};
use flexcore::{RunOutcome, RunResult, SimError, System, SystemConfig};
use flexcore_asm::{assemble, Program};
use flexcore_bench::swap::{self, SwapPoint};
use flexcore_fabric::write_vcd;
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult};
use flexcore_workloads::Workload;

/// How many forwarded packets feed the `--vcd` waveform. One packet is
/// one fabric clock cycle; beyond a few hundred cycles the waveform
/// stops being something a human scrolls through.
const VCD_PACKET_CAP: usize = 256;

struct Options {
    input: String,
    ext: String,
    clock: String,
    fifo: usize,
    max: u64,
    commits: bool,
    disasm: bool,
    metrics: Option<String>,
    epoch: u64,
    trace: Option<String>,
    flight: usize,
    vcd: Option<String>,
    json: bool,
    checkpoint_every: Option<u64>,
    checkpoint_path: String,
    quit_after_checkpoint: bool,
    resume: Option<String>,
    lockstep: bool,
    recover: bool,
    swaps: Vec<SwapPoint>,
    elide: Option<String>,
}

impl Options {
    /// Whether any flag that needs a [`System`]-level sink is set.
    fn wants_observability(&self) -> bool {
        self.metrics.is_some()
            || self.trace.is_some()
            || self.flight > 0
            || self.vcd.is_some()
            || self.json
    }

    /// Whether any flag that needs [`System`]-level checkpoint or
    /// lockstep machinery is set.
    fn wants_system(&self) -> bool {
        self.checkpoint_every.is_some() || self.resume.is_some() || self.lockstep || self.recover
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        ext: "none".into(),
        clock: "0.5x".into(),
        fifo: 64,
        max: 200_000_000,
        commits: false,
        disasm: false,
        metrics: None,
        epoch: MetricsRecorder::DEFAULT_EPOCH_CYCLES,
        trace: None,
        flight: 0,
        vcd: None,
        json: false,
        checkpoint_every: None,
        checkpoint_path: "flexsim.ckpt.json".into(),
        quit_after_checkpoint: false,
        resume: None,
        lockstep: false,
        recover: false,
        swaps: Vec::new(),
        elide: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ext" => opts.ext = args.next().ok_or("--ext needs a value")?,
            "--clock" => opts.clock = args.next().ok_or("--clock needs a value")?,
            "--fifo" => {
                opts.fifo = args
                    .next()
                    .ok_or("--fifo needs a value")?
                    .parse()
                    .map_err(|e| format!("--fifo: {e}"))?;
            }
            "--max" => {
                opts.max = args
                    .next()
                    .ok_or("--max needs a value")?
                    .parse()
                    .map_err(|e| format!("--max: {e}"))?;
            }
            "--metrics" => opts.metrics = Some(args.next().ok_or("--metrics needs a file")?),
            "--epoch" => {
                opts.epoch = args
                    .next()
                    .ok_or("--epoch needs a value")?
                    .parse()
                    .map_err(|e| format!("--epoch: {e}"))?;
            }
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a file")?),
            "--flight-recorder" => {
                opts.flight = args
                    .next()
                    .ok_or("--flight-recorder needs a value")?
                    .parse()
                    .map_err(|e| format!("--flight-recorder: {e}"))?;
            }
            "--vcd" => opts.vcd = Some(args.next().ok_or("--vcd needs a file")?),
            "--json" => opts.json = true,
            "--commits" => opts.commits = true,
            "--disasm" => opts.disasm = true,
            "--checkpoint-every" => {
                let n: u64 = args
                    .next()
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be > 0".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--checkpoint-path" => {
                opts.checkpoint_path = args.next().ok_or("--checkpoint-path needs a file")?;
            }
            "--quit-after-checkpoint" => opts.quit_after_checkpoint = true,
            "--resume" => opts.resume = Some(args.next().ok_or("--resume needs a file")?),
            "--swap-at" => {
                let spec = args.next().ok_or("--swap-at needs COMMIT:ext[:policy]")?;
                opts.swaps.push(SwapPoint::parse(&spec).map_err(|e| format!("--swap-at {e}"))?);
            }
            "--lockstep" => opts.lockstep = true,
            "--recover" => opts.recover = true,
            "--elide" => opts.elide = Some(args.next().ok_or("--elide needs a table file")?),
            "--help" | "-h" => return Err("help".into()),
            other if opts.input.is_empty() => opts.input = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing program file or workload name".into());
    }
    if opts.ext == "none" && opts.wants_observability() {
        return Err("--metrics/--trace/--flight-recorder/--vcd/--json observe the monitored \
             commit path; pick an extension with --ext umc|dift|bc|sec|mprot"
            .into());
    }
    if opts.ext == "none" && opts.wants_system() {
        return Err("--checkpoint-every/--resume/--lockstep need the full system model; \
             pick an extension with --ext umc|dift|bc|sec|mprot"
            .into());
    }
    if opts.ext == "none" && opts.elide.is_some() {
        return Err("--elide filters the monitored forward path; pick an extension with \
             --ext umc|dift|cfi"
            .into());
    }
    if opts.ext == "none" && !opts.swaps.is_empty() {
        return Err("--swap-at reprograms the monitored fabric; pick a starting extension \
             with --ext umc|dift|bc|sec|mprot|cfi"
            .into());
    }
    if opts.quit_after_checkpoint && opts.checkpoint_every.is_none() {
        return Err("--quit-after-checkpoint needs --checkpoint-every".into());
    }
    if opts.recover && (opts.quit_after_checkpoint || opts.resume.is_some()) {
        return Err("--recover keeps its checkpoints in memory; it cannot be combined with \
             --quit-after-checkpoint or --resume"
            .into());
    }
    Ok(opts)
}

fn load_program(input: &str) -> Result<Program, String> {
    let named = Workload::all().into_iter().chain(Workload::extra()).find(|w| w.name() == input);
    let source = match named {
        Some(w) => w.source(),
        None => std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?,
    };
    assemble(&source).map_err(|e| format!("{input}: {e}"))
}

fn config(opts: &Options) -> Result<SystemConfig, String> {
    let base = match opts.clock.as_str() {
        "1x" | "1X" => SystemConfig::fabric_full_speed(),
        "0.5x" | "0.5X" => SystemConfig::fabric_half_speed(),
        "0.25x" | "0.25X" => SystemConfig::fabric_quarter_speed(),
        other => return Err(format!("unknown clock ratio `{other}`")),
    };
    Ok(base.with_fifo_depth(opts.fifo))
}

fn report_exit(exit: &ExitReason) -> i32 {
    match exit {
        ExitReason::Halt(0) => 0,
        ExitReason::Halt(n) => {
            eprintln!("program failed its own check (ta {n})");
            *n as i32
        }
        other => {
            eprintln!("abnormal exit: {other:?}");
            2
        }
    }
}

fn write_file(path: &str, contents: &str) -> i32 {
    match std::fs::write(path, contents) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            2
        }
    }
}

/// What driving the system produced: a finished run, or a clean early
/// exit after `--quit-after-checkpoint` wrote its checkpoint.
#[allow(clippy::large_enum_variant)] // Finished is the overwhelmingly common case
enum Driven {
    Finished(RunResult),
    QuitAfterCheckpoint,
}

/// Runs the system, writing a checkpoint every `--checkpoint-every`
/// commits (if requested).
fn drive<E: Extension, S: TraceSink>(
    sys: &mut System<E, S>,
    opts: &Options,
    name: &str,
) -> Result<Result<Driven, SimError>, i32> {
    let Some(every) = opts.checkpoint_every else {
        return Ok(sys.try_run(opts.max).map(Driven::Finished));
    };
    loop {
        let next = sys.core().stats().instret.saturating_add(every);
        match sys.try_run_until(opts.max, next) {
            Ok(RunOutcome::Done(r)) => return Ok(Ok(Driven::Finished(r))),
            Ok(RunOutcome::Paused { instret, cycle }) => {
                let json = sys.snapshot().to_json();
                if let Err(e) = std::fs::write(&opts.checkpoint_path, json) {
                    eprintln!("error: {}: {e}", opts.checkpoint_path);
                    return Err(2);
                }
                eprintln!(
                    "[{name}] checkpoint at instret {instret} (cycle {cycle}) -> {}",
                    opts.checkpoint_path
                );
                if opts.quit_after_checkpoint {
                    return Ok(Ok(Driven::QuitAfterCheckpoint));
                }
            }
            Err(e) => return Ok(Err(e)),
        }
    }
}

fn run_monitored(program: &Program, opts: &Options, ext: Box<dyn Extension>) -> i32 {
    let cfg = match config(opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let name = ext.name();

    let mut obs = Observer::new();
    if opts.metrics.is_some() {
        obs = obs.with_metrics(MetricsRecorder::new(opts.epoch));
    }
    if opts.trace.is_some() {
        obs = obs.with_chrome(ChromeRecorder::new());
    }
    if opts.flight > 0 {
        obs = obs.with_flight(opts.flight);
    }
    if opts.vcd.is_some() {
        obs = obs.with_packet_tap(VCD_PACKET_CAP);
    }

    let mut sys = System::with_sink(cfg, ext, obs);
    sys.load_program(program);
    if let Some(path) = &opts.elide {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        let table = match flexcore::ElisionTable::from_json(&json) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        eprintln!("[{name}] elision table installed: {} PC(s) from {path}", table.len());
        sys.set_elision(table);
    }
    // Swaps are scheduled before a checkpoint restore: `restore`
    // realigns the scheduled timeline against the checkpoint's commit
    // count, so a resumed run re-executes (or fast-forwards) its swaps
    // exactly like the uninterrupted one.
    for point in &opts.swaps {
        if let Err(e) = swap::schedule(&mut sys, point, program) {
            eprintln!("error: --swap-at: {e}");
            return 2;
        }
    }
    if let Some(path) = &opts.resume {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        let snap = match Snapshot::from_json(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        if let Err(e) = sys.restore(&snap) {
            eprintln!("error: {path}: {e}");
            return 2;
        }
        eprintln!("[{name}] resumed from {path} at instret {}", sys.core().stats().instret);
    }
    if opts.lockstep {
        sys.enable_lockstep();
    }
    let mut recoveries = 0;
    let driven = if opts.recover {
        let policy = RecoveryPolicy {
            checkpoint_every: opts.checkpoint_every.unwrap_or(10_000),
            ..RecoveryPolicy::default()
        };
        let mut sup = Supervisor::new(sys, policy);
        let outcome = sup.run(opts.max);
        let report = sup.report().clone();
        sys = sup.into_system();
        recoveries = report.errors_detected;
        if report.errors_detected > 0 || report.checkpoints_taken > 0 {
            eprintln!("[{name}] recovery report:");
            eprint!("{report}");
        }
        Ok(outcome.map(Driven::Finished))
    } else {
        drive(&mut sys, opts, name)
    };
    let r = match driven {
        Err(code) => return code,
        Ok(Ok(Driven::QuitAfterCheckpoint)) => return 0,
        Ok(Ok(Driven::Finished(r))) => r,
        Ok(Err(SimError::Deadlock(snap))) => {
            eprintln!("[{name}] {}", SimError::Deadlock(snap.clone()));
            let recent = snap.recent_disassembly();
            if !recent.is_empty() {
                eprintln!("last commits before the wedge:\n{recent}");
            }
            return 4;
        }
        Ok(Err(SimError::Divergence(report))) => {
            eprintln!("[{name}] lockstep divergence: {report}");
            if !report.dut_recent.is_empty() {
                eprintln!("last pipeline commits:");
                for c in &report.dut_recent {
                    eprintln!("  {c}");
                }
            }
            if !report.golden_recent.is_empty() {
                eprintln!("last golden-model commits:");
                for c in &report.golden_recent {
                    eprintln!("  {c}");
                }
            }
            return 4;
        }
        Ok(Err(e)) => {
            eprintln!("[{name}] {e}");
            return 4;
        }
    };
    if opts.lockstep {
        let checked = sys.lockstep().map_or(0, |c| c.commits_checked());
        eprintln!("[{name}] lockstep: {checked} commits agreed with the golden model");
    }
    for report in sys.swap_reports() {
        eprintln!("[{name}] {report}");
    }
    if sys.swap_pending() {
        eprintln!("[{name}] note: a scheduled --swap-at boundary was never reached");
    }

    // The VCD dump needs both the tapped packets (in the sink) and the
    // extension's netlist, so write it before consuming `sys`.
    if let Some(path) = &opts.vcd {
        let stimulus: Vec<Vec<bool>> = sys
            .sink()
            .packets
            .as_ref()
            .map(|tap| tap.packets().iter().map(|p| sys.extension().vcd_stimulus(p)).collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        if let Err(e) = write_vcd(&sys.extension().netlist(), &stimulus, &mut out) {
            eprintln!("error: {path}: {e}");
            return 2;
        }
        let text = String::from_utf8_lossy(&out);
        let code = write_file(path, &text);
        if code != 0 {
            return code;
        }
        eprintln!("[{name}] wrote {} fabric cycles to {path}", stimulus.len());
    }

    let obs = sys.into_sink();
    if let (Some(path), Some(m)) = (&opts.metrics, &obs.metrics) {
        // A recovered run replays rolled-back windows, so the epoch
        // series legitimately holds more commits than the final result;
        // the bit-exact cross-check only applies to uninterrupted runs.
        if recoveries == 0 {
            if let Err(e) = m.check_against(&r) {
                eprintln!("internal error: metrics disagree with the run result: {e}");
                return 4;
            }
        }
        let code = write_file(path, &m.to_jsonl(&r));
        if code != 0 {
            return code;
        }
        eprintln!("[{name}] wrote {} epochs to {path}", m.epochs().len());
    }
    if let (Some(path), Some(c)) = (&opts.trace, &obs.chrome) {
        let code = write_file(path, &c.to_chrome_json());
        if code != 0 {
            return code;
        }
        eprintln!("[{name}] wrote {} trace events to {path}", c.events().len());
    }

    if opts.json {
        println!("{}", serde::to_string_pretty(&r));
    } else {
        print!("{}", r.summary());
        if !r.console.is_empty() {
            println!("--- console ---\n{}", String::from_utf8_lossy(&r.console));
        }
    }
    if let Some(trap) = &r.monitor_trap {
        eprintln!("[{name}] {trap}");
        return 3;
    }
    report_exit(&r.exit)
}

fn run_bare(program: &Program, opts: &Options) -> i32 {
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(program, &mut mem);
    let exit = loop {
        match core.step(&mut mem, &mut bus) {
            StepResult::Committed(pkt) => {
                if opts.commits {
                    println!("{:>10}  {:#010x}  {}", pkt.commit_cycle, pkt.pc, pkt.inst);
                }
                if core.stats().instret >= opts.max {
                    core.halt(ExitReason::InstructionLimit);
                }
            }
            StepResult::Annulled => {}
            StepResult::Exited(e) => break e,
        }
    };
    println!(
        "[core] {} instructions, {} cycles (CPI {:.3}); icache {}; dcache {}",
        core.stats().instret,
        core.quiesced_at(),
        core.quiesced_at() as f64 / core.stats().instret.max(1) as f64,
        core.icache_stats(),
        core.dcache_stats()
    );
    if !core.console().is_empty() {
        println!("--- console ---\n{}", String::from_utf8_lossy(core.console()));
    }
    report_exit(&exit)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: flexsim [--ext umc|dift|bc|sec|mprot|cfi|none] [--clock 1x|0.5x|0.25x]\n\
                 \x20              [--fifo N] [--max N] [--metrics FILE] [--epoch N]\n\
                 \x20              [--trace FILE] [--flight-recorder N] [--vcd FILE]\n\
                 \x20              [--checkpoint-every N] [--checkpoint-path FILE]\n\
                 \x20              [--quit-after-checkpoint] [--resume FILE] [--lockstep]\n\
                 \x20              [--recover] [--swap-at COMMIT:ext[:policy]] [--elide FILE]\n\
                 \x20              [--json] [--commits] [--disasm] <program.s | workload>"
            );
            return ExitCode::from(2);
        }
    };
    let program = match load_program(&opts.input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.disasm {
        print!("{}", program.listing());
        return ExitCode::SUCCESS;
    }
    let code = match opts.ext.as_str() {
        "none" => run_bare(&program, &opts),
        name => match swap::build_extension(name, &program) {
            Some(ext) => run_monitored(&program, &opts, ext),
            None => {
                eprintln!("unknown extension `{name}`");
                2
            }
        },
    };
    ExitCode::from(code.clamp(0, 255) as u8)
}
