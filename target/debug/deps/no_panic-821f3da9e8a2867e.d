/root/repo/target/debug/deps/no_panic-821f3da9e8a2867e.d: crates/asm/tests/no_panic.rs Cargo.toml

/root/repo/target/debug/deps/libno_panic-821f3da9e8a2867e.rmeta: crates/asm/tests/no_panic.rs Cargo.toml

crates/asm/tests/no_panic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
