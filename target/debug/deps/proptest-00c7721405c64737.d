/root/repo/target/debug/deps/proptest-00c7721405c64737.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-00c7721405c64737.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
