//! Gate-level netlist IR, builder, and functional simulator.

use std::fmt;

/// A signal in the netlist (index into the gate array).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Net(pub(crate) u32);

impl Net {
    /// Index into [`Netlist::gates`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A word-level signal: LSB first.
pub type Bus = Vec<Net>;

/// One gate. Every net is driven by exactly one gate (its array slot).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gate {
    /// Primary input.
    Input,
    /// Constant 0/1.
    Const(bool),
    /// Inverter.
    Not(Net),
    /// 2-input AND.
    And(Net, Net),
    /// 2-input OR.
    Or(Net, Net),
    /// 2-input XOR.
    Xor(Net, Net),
    /// 2-to-1 multiplexer: output = `sel ? b : a`.
    Mux {
        /// Select input.
        sel: Net,
        /// Output when `sel` is 0.
        a: Net,
        /// Output when `sel` is 1.
        b: Net,
    },
    /// D flip-flop. The data input is patched in by
    /// [`NetlistBuilder::connect_dff`]; until then it points at the
    /// flop itself (a legal self-loop meaning "hold").
    Dff(Net),
}

impl Gate {
    /// The nets this gate reads.
    pub fn inputs(&self) -> Vec<Net> {
        match *self {
            Gate::Input | Gate::Const(_) => vec![],
            Gate::Not(a) => vec![a],
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => vec![a, b],
            Gate::Mux { sel, a, b } => vec![sel, a, b],
            Gate::Dff(d) => vec![d],
        }
    }
}

/// A hard block that is not mapped to LUTs: memories and register
/// files are implemented as dedicated macros on both flows (the paper's
/// meta-data register file comes from a memory compiler; FPGA RAMs use
/// BRAM/distributed RAM).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacroBlock {
    /// An SRAM block: `words × width` bits.
    Ram {
        /// Number of addressable words.
        words: u32,
        /// Bits per word.
        width: u32,
    },
    /// A multi-ported register file: `entries × width` bits (the
    /// FlexCore shadow meta-data register file is `32 × 8`).
    RegFile {
        /// Number of registers.
        entries: u32,
        /// Bits per register.
        width: u32,
    },
    /// A FIFO: `depth` entries of `width` bits (the core-fabric forward
    /// FIFO is `64 × 293`).
    Fifo {
        /// Number of entries.
        depth: u32,
        /// Bits per entry.
        width: u32,
    },
}

impl MacroBlock {
    /// Total storage bits.
    pub fn bits(&self) -> u64 {
        match *self {
            MacroBlock::Ram { words, width } => u64::from(words) * u64::from(width),
            MacroBlock::RegFile { entries, width } => u64::from(entries) * u64::from(width),
            MacroBlock::Fifo { depth, width } => u64::from(depth) * u64::from(width),
        }
    }
}

/// A complete netlist: gates, primary outputs, and macro blocks.
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<Net>,
    outputs: Vec<(String, Net)>,
    macros: Vec<MacroBlock>,
}

impl Netlist {
    /// Name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, indexed by net id.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary inputs, in creation order.
    pub fn inputs(&self) -> &[Net] {
        &self.inputs
    }

    /// Named primary outputs.
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    /// Macro blocks (RAMs, register files, FIFOs).
    pub fn macros(&self) -> &[MacroBlock] {
        &self.macros
    }

    /// Number of combinational gates (excludes inputs, constants, and
    /// flops).
    pub fn logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input | Gate::Const(_) | Gate::Dff(_)))
            .count()
    }

    /// Number of D flip-flops.
    pub fn flops(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::Dff(_))).count()
    }

    /// Evaluates the combinational logic for one clock cycle.
    ///
    /// `input_values` must match [`Netlist::inputs`] in length;
    /// `state` holds the flop values and is updated to the next state.
    /// Returns the output values in [`Netlist::outputs`] order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values` or `state` have the wrong length.
    pub fn eval(&self, input_values: &[bool], state: &mut Vec<bool>) -> Vec<bool> {
        assert_eq!(input_values.len(), self.inputs.len(), "input vector length");
        assert_eq!(state.len(), self.flops(), "state vector length");
        let mut values = vec![false; self.gates.len()];
        let mut in_iter = input_values.iter();
        let mut flop_iter = state.iter();
        // First pass: seed inputs, constants, and current flop outputs.
        for (i, gate) in self.gates.iter().enumerate() {
            match gate {
                Gate::Input => values[i] = *in_iter.next().expect("checked above"),
                Gate::Const(v) => values[i] = *v,
                Gate::Dff(_) => values[i] = *flop_iter.next().expect("checked above"),
                _ => {}
            }
        }
        // Combinational pass. Builder order is topological for
        // combinational gates (they can only reference earlier nets;
        // only DFF data inputs may point forward).
        for (i, gate) in self.gates.iter().enumerate() {
            let v = match *gate {
                Gate::Input | Gate::Const(_) | Gate::Dff(_) => continue,
                Gate::Not(a) => !values[a.index()],
                Gate::And(a, b) => values[a.index()] && values[b.index()],
                Gate::Or(a, b) => values[a.index()] || values[b.index()],
                Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
                Gate::Mux { sel, a, b } => {
                    if values[sel.index()] {
                        values[b.index()]
                    } else {
                        values[a.index()]
                    }
                }
            };
            values[i] = v;
        }
        // Clock edge: capture flop next-states.
        let mut next = Vec::with_capacity(state.len());
        for (i, gate) in self.gates.iter().enumerate() {
            if let Gate::Dff(d) = gate {
                let _ = i;
                next.push(values[d.index()]);
            }
        }
        *state = next;
        self.outputs.iter().map(|(_, n)| values[n.index()]).collect()
    }

    /// Fresh all-zero flop state for [`Netlist::eval`].
    pub fn initial_state(&self) -> Vec<bool> {
        vec![false; self.flops()]
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} logic, {} flops), {} inputs, {} outputs, {} macros",
            self.name,
            self.gates.len(),
            self.logic_gates(),
            self.flops(),
            self.inputs.len(),
            self.outputs.len(),
            self.macros.len()
        )
    }
}

/// Builder for [`Netlist`]s, with word-level helpers.
///
/// # Example
///
/// ```
/// use flexcore_fabric::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("adder8");
/// let x = b.input_bus(8);
/// let y = b.input_bus(8);
/// let (sum, carry) = b.add(&x, &y);
/// b.output_bus("sum", &sum);
/// b.output("carry", carry);
/// let n = b.finish();
/// assert_eq!(n.inputs().len(), 16);
/// assert_eq!(n.outputs().len(), 9);
/// ```
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<Net>,
    outputs: Vec<(String, Net)>,
    macros: Vec<MacroBlock>,
}

impl NetlistBuilder {
    /// Starts a netlist called `name`.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            macros: Vec::new(),
        }
    }

    fn push(&mut self, g: Gate) -> Net {
        let n = Net(self.gates.len() as u32);
        self.gates.push(g);
        n
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> Net {
        let n = self.push(Gate::Input);
        self.inputs.push(n);
        n
    }

    /// Adds `width` primary inputs as a bus (LSB first).
    pub fn input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.input()).collect()
    }

    /// A constant signal.
    pub fn constant(&mut self, v: bool) -> Net {
        self.push(Gate::Const(v))
    }

    /// A constant bus holding `value` (LSB first).
    pub fn constant_bus(&mut self, value: u64, width: usize) -> Bus {
        (0..width).map(|i| self.constant((value >> i) & 1 == 1)).collect()
    }

    /// Inverter.
    pub fn not(&mut self, a: Net) -> Net {
        self.push(Gate::Not(a))
    }

    /// 2-input AND.
    pub fn and(&mut self, a: Net, b: Net) -> Net {
        self.push(Gate::And(a, b))
    }

    /// 2-input OR.
    pub fn or(&mut self, a: Net, b: Net) -> Net {
        self.push(Gate::Or(a, b))
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: Net, b: Net) -> Net {
        self.push(Gate::Xor(a, b))
    }

    /// 2-to-1 mux: `sel ? b : a`.
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        self.push(Gate::Mux { sel, a, b })
    }

    /// A D flip-flop whose data input is connected later with
    /// [`connect_dff`](NetlistBuilder::connect_dff) (it holds its value
    /// until then).
    pub fn dff(&mut self) -> Net {
        let slot = Net(self.gates.len() as u32);
        self.push(Gate::Dff(slot))
    }

    /// Connects the data input of a flop created by
    /// [`dff`](NetlistBuilder::dff).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a flop.
    pub fn connect_dff(&mut self, q: Net, d: Net) {
        match &mut self.gates[q.index()] {
            Gate::Dff(slot) => *slot = d,
            other => panic!("connect_dff on non-flop {other:?}"),
        }
    }

    /// A registered version of `d` (flop with input already connected).
    pub fn register(&mut self, d: Net) -> Net {
        let q = self.dff();
        self.connect_dff(q, d);
        q
    }

    /// Registers a whole bus.
    pub fn register_bus(&mut self, d: &Bus) -> Bus {
        d.iter().map(|&n| self.register(n)).collect()
    }

    /// Adds a macro block (not mapped to LUTs; costed separately).
    pub fn add_macro(&mut self, m: MacroBlock) {
        self.macros.push(m);
    }

    /// Names a primary output.
    pub fn output(&mut self, name: impl Into<String>, n: Net) {
        self.outputs.push((name.into(), n));
    }

    /// Names each bit of a bus as `name[i]`.
    pub fn output_bus(&mut self, name: &str, bus: &Bus) {
        for (i, &n) in bus.iter().enumerate() {
            self.outputs.push((format!("{name}[{i}]"), n));
        }
    }

    // ---- word-level helpers ----------------------------------------

    /// Reduction OR of a bus (0 for an empty bus).
    pub fn reduce_or(&mut self, bus: &Bus) -> Net {
        self.reduce(bus, |b, x, y| b.or(x, y), false)
    }

    /// Reduction AND of a bus (1 for an empty bus).
    pub fn reduce_and(&mut self, bus: &Bus) -> Net {
        self.reduce(bus, |b, x, y| b.and(x, y), true)
    }

    /// Reduction XOR of a bus (0 for an empty bus).
    pub fn reduce_xor(&mut self, bus: &Bus) -> Net {
        self.reduce(bus, |b, x, y| b.xor(x, y), false)
    }

    fn reduce(
        &mut self,
        bus: &Bus,
        mut f: impl FnMut(&mut Self, Net, Net) -> Net,
        empty: bool,
    ) -> Net {
        // Balanced tree to keep logic depth logarithmic, as a mapper
        // would see from synthesis.
        let mut layer: Vec<Net> = bus.clone();
        if layer.is_empty() {
            return self.constant(empty);
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 { f(self, pair[0], pair[1]) } else { pair[0] });
            }
            layer = next;
        }
        layer[0]
    }

    /// Bitwise binary op over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn bitwise(
        &mut self,
        a: &Bus,
        b: &Bus,
        mut f: impl FnMut(&mut Self, Net, Net) -> Net,
    ) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| f(self, x, y)).collect()
    }

    /// Parallel-prefix (Sklansky) addition with carry-in; returns
    /// `(sum, carry_out)`. Log-depth, like the carry structures real
    /// synthesis infers — a ripple chain would give the frequency
    /// model an unrealistically deep critical path.
    fn prefix_add(&mut self, a: &Bus, b: &Bus, cin: Net) -> (Bus, Net) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let n = a.len();
        if n == 0 {
            return (Vec::new(), cin);
        }
        let p0: Vec<Net> = a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect();
        let mut g: Vec<Net> = a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect();
        let mut p = p0.clone();
        // Fold the carry-in into bit 0's generate.
        let pc = self.and(p[0], cin);
        g[0] = self.or(g[0], pc);
        // Sklansky up-sweep: after the sweep, g[i] is the carry out of
        // bit i.
        let mut stride = 1usize;
        while stride < n {
            for i in 0..n {
                if i & stride != 0 {
                    let j = (i & !(stride - 1)) - 1;
                    let t = self.and(p[i], g[j]);
                    g[i] = self.or(g[i], t);
                    p[i] = self.and(p[i], p[j]);
                }
            }
            stride <<= 1;
        }
        let mut sum = Vec::with_capacity(n);
        sum.push(self.xor(p0[0], cin));
        for i in 1..n {
            sum.push(self.xor(p0[i], g[i - 1]));
        }
        (sum, g[n - 1])
    }

    /// Addition; returns `(sum, carry_out)`.
    pub fn add(&mut self, a: &Bus, b: &Bus) -> (Bus, Net) {
        let zero = self.constant(false);
        self.prefix_add(a, b, zero)
    }

    /// Two's-complement subtraction `a - b`; returns `(diff, borrow)`
    /// where `borrow` is the *inverted* carry-out (set when `a < b`
    /// unsigned).
    pub fn sub(&mut self, a: &Bus, b: &Bus) -> (Bus, Net) {
        let nb: Bus = b.iter().map(|&n| self.not(n)).collect();
        let one = self.constant(true);
        let (diff, carry) = self.prefix_add(a, &nb, one);
        let borrow = self.not(carry);
        (diff, borrow)
    }

    /// Equality comparator.
    pub fn eq(&mut self, a: &Bus, b: &Bus) -> Net {
        let diffs = self.bitwise(a, b, |s, x, y| s.xor(x, y));
        let any = self.reduce_or(&diffs);
        self.not(any)
    }

    /// Word-level 2-to-1 mux.
    pub fn mux_bus(&mut self, sel: Net, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.mux(sel, x, y)).collect()
    }

    /// One-hot decoder: `2^n` outputs from an `n`-bit select bus.
    pub fn decoder(&mut self, sel: &Bus) -> Bus {
        let n = sel.len();
        let inv: Bus = sel.iter().map(|&s| self.not(s)).collect();
        (0..1usize << n)
            .map(|code| {
                let terms: Bus = (0..n)
                    .map(|bit| if code >> bit & 1 == 1 { sel[bit] } else { inv[bit] })
                    .collect();
                self.reduce_and(&terms)
            })
            .collect()
    }

    /// Barrel shifter: logical right shift of `value` by `amount`
    /// (stages of muxes; `amount` is LSB-first). Fills with zeros.
    pub fn shift_right(&mut self, value: &Bus, amount: &Bus) -> Bus {
        let zero = self.constant(false);
        let mut cur = value.clone();
        for (stage, &sel) in amount.iter().enumerate() {
            let dist = 1usize << stage;
            let shifted: Bus = (0..cur.len())
                .map(|i| if i + dist < cur.len() { cur[i + dist] } else { zero })
                .collect();
            cur = self.mux_bus(sel, &cur, &shifted);
        }
        cur
    }

    /// Finishes the netlist.
    pub fn finish(self) -> Netlist {
        Netlist {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            macros: self.macros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_comb(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut st = n.initial_state();
        n.eval(inputs, &mut st)
    }

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn adder_adds() {
        let mut b = NetlistBuilder::new("add8");
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        for (a, bb) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (17, 42)] {
            let mut inp = to_bits(a, 8);
            inp.extend(to_bits(bb, 8));
            let out = eval_comb(&n, &inp);
            let sum = from_bits(&out[..8]);
            let carry = out[8] as u64;
            assert_eq!(sum + (carry << 8), a + bb, "{a}+{bb}");
        }
    }

    #[test]
    fn subtractor_and_borrow() {
        let mut b = NetlistBuilder::new("sub8");
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let (d, borrow) = b.sub(&x, &y);
        b.output_bus("d", &d);
        b.output("borrow", borrow);
        let n = b.finish();
        for (a, bb) in [(5u64, 3u64), (3, 5), (0, 0), (255, 1), (0, 255)] {
            let mut inp = to_bits(a, 8);
            inp.extend(to_bits(bb, 8));
            let out = eval_comb(&n, &inp);
            assert_eq!(from_bits(&out[..8]), a.wrapping_sub(bb) & 0xff, "{a}-{bb}");
            assert_eq!(out[8], a < bb, "borrow {a}-{bb}");
        }
    }

    #[test]
    fn equality_comparator() {
        let mut b = NetlistBuilder::new("eq4");
        let x = b.input_bus(4);
        let y = b.input_bus(4);
        let e = b.eq(&x, &y);
        b.output("eq", e);
        let n = b.finish();
        for a in 0..16u64 {
            for c in 0..16u64 {
                let mut inp = to_bits(a, 4);
                inp.extend(to_bits(c, 4));
                assert_eq!(eval_comb(&n, &inp)[0], a == c);
            }
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("dec3");
        let s = b.input_bus(3);
        let outs = b.decoder(&s);
        b.output_bus("o", &outs);
        let n = b.finish();
        for code in 0..8u64 {
            let out = eval_comb(&n, &to_bits(code, 3));
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i as u64 == code, "code {code} bit {i}");
            }
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut b = NetlistBuilder::new("shr8");
        let v = b.input_bus(8);
        let a = b.input_bus(3);
        let out = b.shift_right(&v, &a);
        b.output_bus("o", &out);
        let n = b.finish();
        for value in [0b1011_0110u64, 0xff, 0x01, 0x80] {
            for amt in 0..8u64 {
                let mut inp = to_bits(value, 8);
                inp.extend(to_bits(amt, 3));
                let out = eval_comb(&n, &inp);
                assert_eq!(from_bits(&out), value >> amt, "{value:#x} >> {amt}");
            }
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut b = NetlistBuilder::new("reg1");
        let d = b.input();
        let q = b.register(d);
        b.output("q", q);
        let n = b.finish();
        let mut st = n.initial_state();
        assert_eq!(n.eval(&[true], &mut st), vec![false], "reset state visible");
        assert_eq!(n.eval(&[false], &mut st), vec![true], "previous input appears");
        assert_eq!(n.eval(&[false], &mut st), vec![false]);
    }

    #[test]
    fn unconnected_dff_holds_value() {
        let mut b = NetlistBuilder::new("hold");
        let q = b.dff();
        b.output("q", q);
        let n = b.finish();
        let mut st = vec![true];
        assert_eq!(n.eval(&[], &mut st), vec![true]);
        assert_eq!(st, vec![true], "self-loop holds");
    }

    #[test]
    fn reduce_helpers() {
        let mut b = NetlistBuilder::new("red");
        let x = b.input_bus(5);
        let o = b.reduce_or(&x);
        let a = b.reduce_and(&x);
        let p = b.reduce_xor(&x);
        b.output("or", o);
        b.output("and", a);
        b.output("xor", p);
        let n = b.finish();
        for v in 0..32u64 {
            let out = eval_comb(&n, &to_bits(v, 5));
            assert_eq!(out[0], v != 0);
            assert_eq!(out[1], v == 31);
            assert_eq!(out[2], (v.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn counts_and_display() {
        let mut b = NetlistBuilder::new("counts");
        let x = b.input();
        let y = b.input();
        let z = b.and(x, y);
        let q = b.register(z);
        b.output("q", q);
        b.add_macro(MacroBlock::RegFile { entries: 32, width: 8 });
        let n = b.finish();
        assert_eq!(n.logic_gates(), 1);
        assert_eq!(n.flops(), 1);
        assert_eq!(n.macros()[0].bits(), 256);
        assert!(n.to_string().contains("counts"));
    }
}
