/root/repo/target/debug/deps/flexcore_mem-d8b41e3cde6a46f0.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_mem-d8b41e3cde6a46f0.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/serde_impls.rs:
crates/mem/src/storebuf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
