/root/repo/target/debug/deps/flexcore_asm-ea3a98ce76fd1065.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_asm-ea3a98ce76fd1065.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
