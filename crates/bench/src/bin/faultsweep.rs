//! `faultsweep` — seeded fault-injection campaigns that validate the
//! SEC soft-error story end-to-end (§IV.D / §V).
//!
//! Three campaigns, all byte-identical for a given `--seed`:
//!
//! 1. **SEC detection coverage** — single-bit flips in the
//!    execute-stage result of randomly chosen ALU commits of `sha` and
//!    `bitcount`; SEC re-executes every forwarded ALU op, so it must
//!    trap on ≥90% of them (the escapes are mod-3-invisible residue
//!    cases on div).
//! 2. **Clean-run false traps** — the rate-0 rows of the sweep: with no
//!    faults injected, UMC/DIFT/BC/SEC must never trap on the benign
//!    workloads.
//! 3. **Rate × target sweep** — Bernoulli faults at increasing rates
//!    against architectural results, registers, FFIFO packets, and
//!    meta-data lines, with per-extension outcome accounting
//!    (trap / silent / deadlock / budget), driven through
//!    [`System::try_run`] so a wedged configuration is a data point,
//!    not a hang.
//!
//! Options: `--seed N` (default 0xf1ec), `--trials N` per workload for
//! campaign 1 (default 100).

use flexcore::ext::{Bc, Dift, ExtEnv, Sec, Umc};
use flexcore::faults::{FaultModel, FaultPlan, FaultRng, FaultSchedule, FaultTarget};
use flexcore::{
    Cfgr, Extension, ExtensionDescriptor, ForwardPolicy, MonitorTrap, SimError, System,
    SystemConfig,
};
use flexcore_bench::{run_panic_tolerant, ExtKind, MAX_INSTRUCTIONS};
use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_isa::Instruction;
use flexcore_pipeline::TracePacket;
use flexcore_workloads::Workload;

/// Cycle budget per faulted run: generous (clean sha needs ~2M) but
/// bounded, so a corrupted loop counter cannot spin forever.
const CYCLE_BUDGET: u64 = 50_000_000;

/// Forwards every commit and records the 1-based commit indices of ALU
/// operations — the population SEC protects. Commit indices here match
/// `FaultSchedule::AtCommit` exactly: the system polls the injector
/// with the same counter that orders these packets.
#[derive(Default)]
struct CommitProfiler {
    commits: u64,
    alu_commits: Vec<u64>,
}

impl Extension for CommitProfiler {
    fn name(&self) -> &'static str {
        "profiler"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "PROF",
            name: "commit profiler",
            meta_data: &[],
            transparent_ops: &[],
            sw_visible_ops: &[],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new().with_classes(|_| true, ForwardPolicy::Always)
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        _env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        self.commits += 1;
        if matches!(pkt.inst, Instruction::Alu { .. }) {
            self.alu_commits.push(self.commits);
        }
        Ok(None)
    }

    fn netlist(&self) -> Netlist {
        NetlistBuilder::new("profiler").finish()
    }
}

/// What one faulted simulation did.
#[derive(Clone, Copy, Debug)]
struct Outcome {
    trapped: bool,
    deadlocked: bool,
    over_budget: bool,
    faults_injected: u64,
    trap_skid: Option<u64>,
}

fn run_one<E: Extension>(
    workload: &Workload,
    config: SystemConfig,
    ext: E,
    plan: &FaultPlan,
) -> Outcome {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(config, ext);
    sys.load_program(&program);
    sys.arm_faults(plan.clone());
    match sys.try_run(MAX_INSTRUCTIONS) {
        Ok(r) => Outcome {
            trapped: r.monitor_trap.is_some(),
            deadlocked: false,
            over_budget: false,
            faults_injected: r.resilience.faults_injected,
            trap_skid: r.trap_skid,
        },
        Err(SimError::Deadlock(_)) => Outcome {
            trapped: false,
            deadlocked: true,
            over_budget: false,
            faults_injected: 0,
            trap_skid: None,
        },
        Err(_) => Outcome {
            trapped: false,
            deadlocked: false,
            over_budget: true,
            faults_injected: 0,
            trap_skid: None,
        },
    }
}

fn run_kind(workload: &Workload, ext: ExtKind, config: SystemConfig, plan: &FaultPlan) -> Outcome {
    match ext {
        ExtKind::Umc => run_one(workload, config, Umc::new(), plan),
        ExtKind::Dift => run_one(workload, config, Dift::new(), plan),
        ExtKind::Bc => run_one(workload, config, Bc::new(), plan),
        ExtKind::Sec => run_one(workload, config, Sec::new(), plan),
    }
}

fn paper_config(ext: ExtKind) -> SystemConfig {
    let base = match ext.paper_divisor() {
        4 => SystemConfig::fabric_quarter_speed(),
        _ => SystemConfig::fabric_half_speed(),
    };
    base.with_cycle_budget(CYCLE_BUDGET)
}

/// ALU commit indices of one clean run (the fault-site population).
fn profile_alu_commits(workload: &Workload) -> Vec<u64> {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(
        SystemConfig::fabric_full_speed().with_cycle_budget(CYCLE_BUDGET),
        CommitProfiler::default(),
    );
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("clean profiling run completes");
    assert!(r.monitor_trap.is_none());
    assert_eq!(r.forward.committed, r.forward.forwarded, "profiler must see every commit");
    sys.extension().alu_commits.clone()
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == name)?;
    let Some(v) = args.get(i + 1) else {
        eprintln!("faultsweep: {name} requires a value");
        std::process::exit(2);
    };
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    };
    if parsed.is_none() {
        eprintln!("faultsweep: invalid value for {name}: {v} (expected decimal or 0x-hex)");
        std::process::exit(2);
    }
    parsed
}

fn main() {
    let seed = arg_value("--seed").unwrap_or(0xf1ec);
    let trials = arg_value("--trials").unwrap_or(100) as usize;
    let workloads = [Workload::sha(), Workload::bitcount()];

    println!(
        "faultsweep: seeded fault-injection campaign (seed {seed:#x}, {trials} trials/workload)"
    );
    println!("{}", "=".repeat(78));

    // ── Campaign 1: SEC detection coverage on single-bit ALU-result flips ──
    println!("\nSEC detection coverage (single-bit flips of ALU results, paper 0.25X config)");
    println!(
        "{:<12}{:>8}{:>10}{:>10}{:>10}{:>11}{:>12}",
        "benchmark", "trials", "detected", "silent", "hung", "coverage", "mean skid"
    );
    let mut all_pass = true;
    for workload in &workloads {
        let sites = profile_alu_commits(workload);
        assert!(!sites.is_empty(), "{} has ALU commits", workload.name());
        let jobs = (0..trials)
            .map(|t| {
                let w = *workload;
                let sites_len = sites.len() as u64;
                let trial_seed = seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let site = sites[FaultRng::new(trial_seed).below(sites_len) as usize];
                let bit = FaultRng::new(trial_seed.rotate_left(17)).below(32) as u32;
                (format!("{} trial {t}", w.name()), move || {
                    let plan = FaultPlan::new(trial_seed).inject(
                        FaultTarget::CommitResult,
                        FaultSchedule::AtCommit(site),
                        FaultModel::Mask(1 << bit),
                    );
                    run_kind(&w, ExtKind::Sec, paper_config(ExtKind::Sec), &plan)
                })
            })
            .collect();
        let reports = run_panic_tolerant(jobs);
        let mut detected = 0u64;
        let mut silent = 0u64;
        let mut hung = 0u64;
        let mut skids = Vec::new();
        for rep in &reports {
            match &rep.outcome {
                Ok(o) if o.trapped => {
                    detected += 1;
                    skids.extend(o.trap_skid);
                }
                Ok(o) if o.deadlocked || o.over_budget => hung += 1,
                Ok(_) => silent += 1,
                Err(msg) => {
                    silent += 1;
                    eprintln!("  {} panicked: {msg}", rep.label);
                }
            }
        }
        let coverage = detected as f64 / trials as f64;
        let mean_skid = if skids.is_empty() {
            0.0
        } else {
            skids.iter().sum::<u64>() as f64 / skids.len() as f64
        };
        all_pass &= coverage >= 0.90;
        println!(
            "{:<12}{:>8}{:>10}{:>10}{:>10}{:>10.1}%{:>12.1}",
            workload.name(),
            trials,
            detected,
            silent,
            hung,
            coverage * 100.0,
            mean_skid,
        );
    }
    println!("coverage target ≥ 90.0%: {}", if all_pass { "PASS" } else { "FAIL" });

    // ── Campaigns 2+3: rate × target sweep (rate 0 = clean false-trap check) ──
    let rates: [u64; 4] = [0, 10, 100, 1000];
    let targets: [(&str, FaultTarget); 4] = [
        ("result", FaultTarget::CommitResult),
        ("register", FaultTarget::Register),
        ("fifo-pkt", FaultTarget::FifoPacket),
        ("metacache", FaultTarget::MetaCache),
    ];

    println!("\nRate × target sweep (Bernoulli faults/commit; cell = outcome:faults-injected)");
    println!("  outcome key: trap / ok (ran clean) / dead (deadlock) / budget");
    let mut clean_false_traps = 0u64;
    for workload in &workloads {
        println!("\n{} ({} per-million rates: {:?})", workload.name(), rates.len(), rates);
        print!("{:<6}{:<11}", "ext", "target");
        for r in rates {
            print!("{:>16}", format!("rate {r}"));
        }
        println!();
        for ext in ExtKind::ALL {
            for (tname, target) in targets {
                let jobs = rates
                    .iter()
                    .map(|&rate| {
                        let w = *workload;
                        let plan_seed = seed
                            ^ rate.wrapping_mul(0x2545_f491_4f6c_dd1d)
                            ^ (target_tag(target) << 48);
                        (format!("{} {} {tname} rate {rate}", w.name(), ext.name()), move || {
                            let mut plan = FaultPlan::new(plan_seed);
                            if rate > 0 {
                                plan = plan.inject(
                                    target,
                                    FaultSchedule::Bernoulli { per_million: rate as u32 },
                                    FaultModel::BitFlip { bits: 1 },
                                );
                            }
                            run_kind(&w, ext, paper_config(ext), &plan)
                        })
                    })
                    .collect();
                let reports = run_panic_tolerant(jobs);
                print!("{:<6}{:<11}", ext.name(), tname);
                for (ri, rep) in reports.iter().enumerate() {
                    let cell = match &rep.outcome {
                        Ok(o) => {
                            if rates[ri] == 0 && o.trapped {
                                clean_false_traps += 1;
                            }
                            let tag = if o.trapped {
                                "trap"
                            } else if o.deadlocked {
                                "dead"
                            } else if o.over_budget {
                                "budget"
                            } else {
                                "ok"
                            };
                            format!("{tag}:{}", o.faults_injected)
                        }
                        Err(_) => "panic".to_string(),
                    };
                    print!("{cell:>16}");
                }
                println!();
            }
        }
    }
    println!(
        "\nclean-run (rate 0) false traps across all extensions/targets: {} ({})",
        clean_false_traps,
        if clean_false_traps == 0 { "PASS" } else { "FAIL" }
    );
    println!("\nre-run with the same --seed to reproduce these numbers exactly");
    if !all_pass || clean_false_traps != 0 {
        std::process::exit(1);
    }
}

fn target_tag(target: FaultTarget) -> u64 {
    match target {
        FaultTarget::CommitResult => 1,
        FaultTarget::Register => 2,
        FaultTarget::FifoPacket => 3,
        FaultTarget::MetaCache => 4,
        _ => 5,
    }
}
