/root/repo/target/debug/deps/fig5-5417a75b1e8a20ab.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-5417a75b1e8a20ab: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
