/root/repo/target/debug/deps/fig5-720d846bf0f012bc.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-720d846bf0f012bc: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
