/root/repo/target/release/deps/ablations-93a226b8985dd18e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-93a226b8985dd18e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
