//! Writing your own extension: the whole point of FlexCore is that new
//! monitors can be added post-fabrication. This example implements a
//! **memory-access profiler** — a bookkeeping extension the original
//! hardware never shipped with — by implementing the [`Extension`]
//! trait: it histograms store addresses into meta-data counters and
//! flags any write into a protected region (a tiny fine-grained memory
//! protection scheme, cf. the paper's "other extensions" discussion in
//! §II.B).
//!
//! ```sh
//! cargo run --example custom_monitor
//! ```

use flexcore_suite::asm::assemble;
use flexcore_suite::fabric::{Netlist, NetlistBuilder};
use flexcore_suite::flexcore::ext::{
    ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, META_BASE,
};
use flexcore_suite::flexcore::{Cfgr, ForwardPolicy, System, SystemConfig};
use flexcore_suite::pipeline::TracePacket;

/// A write-watchpoint + histogram monitor.
struct WriteProfiler {
    /// Protected region (half-open).
    guard: std::ops::Range<u32>,
    /// Histogram bucket shift (bucket = addr >> shift).
    bucket_shift: u32,
    stores_seen: u64,
}

impl WriteProfiler {
    fn new(guard: std::ops::Range<u32>) -> WriteProfiler {
        WriteProfiler { guard, bucket_shift: 8, stores_seen: 0 }
    }
}

impl Extension for WriteProfiler {
    fn name(&self) -> &'static str {
        "WPROF"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "WPROF",
            name: "Write profiler with guard region",
            meta_data: &["32-bit store counter per 256-byte bucket"],
            transparent_ops: &["Count stores per bucket", "Check stores against the guard region"],
            sw_visible_ops: &["Read a bucket counter", "Exception on a guarded write"],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new()
            .with_classes(|c| c.is_store(), ForwardPolicy::Always)
            .with_class(flexcore_suite::isa::InstrClass::Cpop1, ForwardPolicy::WaitForAck)
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        use flexcore_suite::isa::Instruction;
        match pkt.inst {
            Instruction::Mem { op, .. } if op.is_store() => {
                if self.guard.contains(&pkt.addr) {
                    return Err(MonitorTrap {
                        pc: pkt.pc,
                        reason: format!("write to guarded address {:#010x}", pkt.addr),
                    });
                }
                self.stores_seen += 1;
                // Bump the bucket counter in meta-data memory.
                let bucket = pkt.addr >> self.bucket_shift;
                let counter_addr = META_BASE + bucket * 4;
                let count = env.read_meta(counter_addr);
                env.write_meta(counter_addr, count.wrapping_add(1), !0);
                Ok(None)
            }
            // cpop1 0, addr, _, rd: read back a bucket counter.
            Instruction::Cpop { space: 1, opc: 0, .. } => {
                let bucket = pkt.srcv1 >> self.bucket_shift;
                Ok(Some(env.read_meta(META_BASE + bucket * 4)))
            }
            _ => Ok(None),
        }
    }

    fn netlist(&self) -> Netlist {
        // Bucket shift (pure wiring), a 32-bit counter incrementer, and
        // guard-range comparators against two software-loaded bound
        // registers.
        let mut b = NetlistBuilder::new("wprof");
        let addr = b.input_bus(32);
        let count_in = b.input_bus(32);
        let addr_r = b.register_bus(&addr);
        let one = b.constant_bus(1, 32);
        let (inc, _) = b.add(&count_in, &one);
        b.output_bus("count_out", &inc);
        // Guard bounds live in config registers (written via cpop).
        let guard_lo: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let guard_hi: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let (_, below_lo) = b.sub(&addr_r, &guard_lo); // borrow: addr < lo
        let (_, below_hi) = b.sub(&addr_r, &guard_hi); // borrow: addr < hi
        let ge_lo = b.not(below_lo);
        let viol = b.and(ge_lo, below_hi); // lo <= addr < hi
        let viol_r = b.register(viol);
        b.output("trap", viol_r);
        b.finish()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program that scribbles over two buffers, then pokes a guarded
    // page.
    let program = assemble(
        "start:  set 0x8000, %o0
                mov 64, %o1
        w1:     st %o1, [%o0]
                add %o0, 4, %o0
                subcc %o1, 1, %o1
                bne w1
                nop
                set 0x9000, %o0
                mov 16, %o1
        w2:     st %o1, [%o0]
                add %o0, 4, %o0
                subcc %o1, 1, %o1
                bne w2
                nop
                ! Read back the store count of bucket 0x8000 >> 8.
                set 0x8000, %o0
                cpop1 0, %o0, %g0, %o5
                ! Now violate the guard region.
                set 0xa000, %o0
                st %g0, [%o0]
                ta 0",
    )?;

    let mut sys =
        System::new(SystemConfig::fabric_half_speed(), WriteProfiler::new(0xa000..0xb000));
    sys.load_program(&program);
    let result = sys.try_run(100_000).expect("simulation error");

    println!("stores profiled: {}", sys.extension().stores_seen);
    println!(
        "bucket counter read back via BFIFO: %o5 = {}",
        sys.core().reg(flexcore_suite::isa::Reg::O5)
    );
    match &result.monitor_trap {
        Some(trap) => println!("guard violation caught: {trap}"),
        None => println!("guard violation NOT caught"),
    }
    assert_eq!(sys.core().reg(flexcore_suite::isa::Reg::O5), 64, "bucket 0x80 saw 64 stores");
    assert!(result.monitor_trap.is_some());

    // The custom monitor also has a synthesizable datapath:
    let cost = flexcore_suite::fabric::FpgaCost::of(&WriteProfiler::new(0..0).netlist());
    println!(
        "custom monitor maps to {} LUTs at {:.0} MHz — loadable into the 0.4 mm^2 fabric",
        cost.luts(),
        cost.fmax_mhz()
    );
    Ok(())
}
