/root/repo/target/debug/deps/golden_control_flow-9cff21212e57be6c.d: crates/pipeline/tests/golden_control_flow.rs

/root/repo/target/debug/deps/golden_control_flow-9cff21212e57be6c: crates/pipeline/tests/golden_control_flow.rs

crates/pipeline/tests/golden_control_flow.rs:
