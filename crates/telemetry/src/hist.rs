//! Log₂-bucketed latency histograms.
//!
//! Latency distributions are heavy-tailed, so fixed-width buckets
//! either waste resolution on the tail or lose it at the head.
//! Power-of-two buckets give constant *relative* resolution across the
//! whole range at a fixed 64-slot footprint, and recording is a
//! `leading_zeros` plus three adds — cheap enough for per-span use.
//!
//! All arithmetic saturates, which keeps [`Log2Histogram::merge`]
//! associative and commutative even at the (unreachable in practice)
//! counter ceiling — a property the proptests in this module pin down.

use serde::{Serialize, Value};

/// Number of buckets; bucket `b ≥ 1` covers values whose bit length is
/// `b`, i.e. `[2^(b-1), 2^b)`, bucket 0 holds exactly zero, and the
/// last bucket absorbs everything from `2^62` up (146 years in
/// nanoseconds — effectively "the clock glitched").
pub const BUCKETS: usize = 64;

/// A fixed-footprint log₂ histogram over `u64` samples (nanoseconds,
/// byte counts, queue depths — any non-negative magnitude).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

/// The bucket index a sample lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper edge of a bucket (used for quantile estimates).
fn bucket_upper_edge(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a histogram from raw bucket counts (atomic-snapshot
    /// path). The count is derived from the buckets so the
    /// monotone-total invariant holds by construction.
    pub(crate) fn from_raw(buckets: [u64; BUCKETS], sum: u64) -> Self {
        let count = buckets.iter().fold(0u64, |a, &n| a.saturating_add(n));
        Log2Histogram { buckets, count, sum }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] = self.buckets[bucket_of(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded. Always equals the sum of all bucket
    /// counts (the "monotone-total" invariant the proptests check).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Non-empty `(bucket, count)` pairs in ascending bucket order —
    /// the sparse form the serde codec emits.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i, n))
    }

    /// Folds another histogram into this one (elementwise saturating
    /// add). Associative and commutative, so shards can merge in any
    /// order.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper-edge estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper bound of the first bucket at which the
    /// cumulative count reaches `q * count`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bucket, n) in self.nonzero_buckets() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                return bucket_upper_edge(bucket);
            }
        }
        bucket_upper_edge(BUCKETS - 1)
    }

    /// Strict decode of the sparse serde form; `None` on any missing
    /// field, out-of-range bucket, or count/bucket-total mismatch.
    pub fn from_value(v: &Value) -> Option<Log2Histogram> {
        let mut h = Log2Histogram::new();
        h.count = v.get("count").and_then(Value::as_u64)?;
        h.sum = v.get("sum").and_then(Value::as_u64)?;
        for pair in v.get("buckets").and_then(Value::as_array)? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let bucket = pair[0].as_u64()? as usize;
            let n = pair[1].as_u64()?;
            if bucket >= BUCKETS || h.buckets[bucket] != 0 || n == 0 {
                return None;
            }
            h.buckets[bucket] = n;
        }
        let total = h.buckets.iter().fold(0u64, |a, &n| a.saturating_add(n));
        if total != h.count {
            return None;
        }
        Some(h)
    }
}

impl Serialize for Log2Histogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .map(|(b, n)| Value::Array(vec![Value::U64(b as u64), Value::U64(n)]))
            .collect();
        Value::object()
            .field("count", &self.count)
            .field("sum", &self.sum)
            .raw("buckets", Value::Array(buckets))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket b >= 1 covers [2^(b-1), 2^b).
        for b in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(1u64 << (b - 1)), b);
            assert_eq!(bucket_of((1u64 << b) - 1), b);
        }
    }

    #[test]
    fn quantile_is_an_upper_edge() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        // p50 of 6 samples -> 3rd sample, in bucket for 2..4 -> edge 3.
        assert_eq!(h.quantile(0.5), 3);
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(Log2Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn serde_round_trip_is_bit_exact() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 7, 8, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let json = serde::to_string(&h.to_value());
        let back =
            Log2Histogram::from_value(&serde::from_str(&json).expect("parses")).expect("decodes");
        assert_eq!(h, back);
    }

    #[test]
    fn decode_rejects_corrupt_forms() {
        let v = serde::from_str(r#"{"count":1,"sum":1,"buckets":[[99,1]]}"#).unwrap();
        assert!(Log2Histogram::from_value(&v).is_none(), "bucket out of range");
        let v = serde::from_str(r#"{"count":1,"buckets":[]}"#).unwrap();
        assert!(Log2Histogram::from_value(&v).is_none(), "missing sum");
        let v = serde::from_str(r#"{"count":2,"sum":2,"buckets":[[1,1],[1,1]]}"#).unwrap();
        assert!(Log2Histogram::from_value(&v).is_none(), "duplicate bucket");
    }
}
