//! The observability layer: cycle-resolved tracing, epoch-bucketed
//! metrics, and a crash-context flight recorder.
//!
//! The paper's headline numbers — Figure 4 forwarding fractions,
//! Figure 5 slowdowns, the §III.C trap imprecision — are all
//! *time-series* phenomena: FIFO occupancy swells, commit stalls
//! cluster, traps skid. End-of-run aggregates in
//! [`RunResult`](crate::RunResult) cannot show *when* the FIFO backs up
//! or *why* a Table IV cell is slow. This module instruments the
//! simulator so every run can optionally produce the time series its
//! summary numbers collapse.
//!
//! # Architecture
//!
//! [`System`](crate::System) takes a second type parameter `S:`
//! [`TraceSink`] (default [`NullSink`]). Hook points in the commit
//! stage, forward FIFO, fabric interface, meta-data cache path, bus
//! accounting, bitstream loader, and fault injector emit
//! [`TraceEvent`]s into the sink. Dispatch is static — no `dyn` in the
//! hot loop — and every hook is guarded by the associated constant
//! [`TraceSink::ENABLED`], so with the default [`NullSink`] the
//! compiler removes both the event construction and the call: the
//! disabled path costs nothing measurable (see the `sim_throughput`
//! bench).
//!
//! Four sinks are provided:
//!
//! * [`MetricsRecorder`] — buckets events into fixed-width cycle
//!   epochs, yielding time series of CPI, FIFO occupancy (min / mean /
//!   peak), stall-cycle breakdown, and per-class forward rates. Its
//!   totals are *exactly* consistent with the [`RunResult`] aggregates
//!   ([`MetricsRecorder::check_against`] enforces this; tests run it on
//!   all six workloads).
//! * [`ChromeRecorder`] — records fabric-activity spans, commit-stall
//!   spans, occupancy counters, and instants in Chrome trace-event
//!   JSON, viewable at `ui.perfetto.dev`.
//! * [`FlightRecorder`] — a ring buffer of the last N committed
//!   instructions (disassembled via the ISA crate's `Display`),
//!   attached to monitor-trap diagnostics and
//!   [`DeadlockSnapshot`](crate::DeadlockSnapshot)s.
//! * [`Observer`] — a composite of the above (plus a [`PacketTap`] for
//!   waveform dumps) so one run can feed several exporters.
//!
//! [`RunResult`]: crate::RunResult
//!
//! # Example
//!
//! ```
//! use flexcore::ext::Umc;
//! use flexcore::obs::{MetricsRecorder, Observer};
//! use flexcore::{System, SystemConfig};
//! use flexcore_asm::assemble;
//!
//! let program = assemble("
//!     start:  set 0x8000, %o0
//!             st %g0, [%o0]
//!             ld [%o0], %o1
//!             ta 0
//! ")?;
//! let obs = Observer::new().with_metrics(MetricsRecorder::new(100)).with_flight(8);
//! let mut sys = System::with_sink(SystemConfig::fabric_half_speed(), Umc::new(), obs);
//! sys.load_program(&program);
//! let result = sys.try_run(1_000)?;
//! let obs = sys.into_sink();
//! let metrics = obs.metrics.expect("installed above");
//! metrics.check_against(&result).expect("epoch totals match the aggregates");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod chrome;
mod event;
mod flight;
mod metrics;
mod sink;

pub use chrome::ChromeRecorder;
pub use event::TraceEvent;
pub use flight::{FlightEntry, FlightRecorder};
pub use metrics::{EpochSample, MetricsRecorder, MAX_EPOCHS};
pub use sink::{NullSink, Observer, PacketTap, TraceSink, VecSink};
