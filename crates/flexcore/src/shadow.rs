//! The shadow meta-data register file.

use flexcore_isa::{Reg, NUM_REGS};

/// The fabric's embedded meta-data register file: an 8-bit shadow
/// register for each general-purpose architectural register (§III.E).
///
/// Implemented as custom hardware in the real design (memory-compiler
/// macro) because LUT fabrics implement memory arrays poorly; its
/// area/power are accounted with the dedicated FlexCore modules.
///
/// Extensions use as many of the 8 bits as they need: DIFT keeps a
/// 1-bit taint per register, BC a 4-bit color.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowRegFile {
    tags: [u8; NUM_REGS],
}

impl ShadowRegFile {
    /// Entries in the file (one per architectural register).
    pub const ENTRIES: u32 = NUM_REGS as u32;
    /// Bits per entry.
    pub const WIDTH: u32 = 8;

    /// All-zero shadow state.
    pub fn new() -> ShadowRegFile {
        ShadowRegFile::default()
    }

    /// Reads the shadow tag of a register. `%g0`'s shadow is hardwired
    /// to 0, mirroring the zero register itself (an immediate/zero
    /// operand never carries meta-data).
    pub fn tag(&self, r: Reg) -> u8 {
        if r.is_zero() {
            0
        } else {
            self.tags[r.index()]
        }
    }

    /// Writes the shadow tag of a register (writes to `%g0`'s shadow
    /// are discarded).
    pub fn set_tag(&mut self, r: Reg, tag: u8) {
        if !r.is_zero() {
            self.tags[r.index()] = tag;
        }
    }

    /// Clears every tag (used by the software-visible "clear all"
    /// operations).
    pub fn clear(&mut self) {
        self.tags = [0; NUM_REGS];
    }

    /// Number of registers with a non-zero tag.
    pub fn tagged_count(&self) -> usize {
        self.tags.iter().filter(|&&t| t != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g0_shadow_is_hardwired_zero() {
        let mut s = ShadowRegFile::new();
        s.set_tag(Reg::G0, 0xff);
        assert_eq!(s.tag(Reg::G0), 0);
        assert_eq!(s.tagged_count(), 0);
    }

    #[test]
    fn tags_are_per_register() {
        let mut s = ShadowRegFile::new();
        s.set_tag(Reg::O1, 1);
        s.set_tag(Reg::L5, 0x0f);
        assert_eq!(s.tag(Reg::O1), 1);
        assert_eq!(s.tag(Reg::L5), 0x0f);
        assert_eq!(s.tag(Reg::O2), 0);
        assert_eq!(s.tagged_count(), 2);
    }

    #[test]
    fn clear_wipes_everything() {
        let mut s = ShadowRegFile::new();
        for r in Reg::all() {
            s.set_tag(r, 5);
        }
        s.clear();
        assert_eq!(s.tagged_count(), 0);
    }

    #[test]
    fn geometry_matches_paper() {
        assert_eq!(ShadowRegFile::ENTRIES, 32);
        assert_eq!(ShadowRegFile::WIDTH, 8);
    }
}
