/root/repo/target/debug/deps/fig5-7652dec452e8efaa.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7652dec452e8efaa: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
