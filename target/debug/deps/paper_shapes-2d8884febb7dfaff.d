/root/repo/target/debug/deps/paper_shapes-2d8884febb7dfaff.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-2d8884febb7dfaff.rmeta: tests/paper_shapes.rs

tests/paper_shapes.rs:
