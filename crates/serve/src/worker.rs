//! Trial supervision and the per-call job-run façade.
//!
//! The execution substrate lives in [`crate::pool`]: a long-lived
//! [`WorkerPool`](crate::pool::WorkerPool) of threads shared across
//! every job the server runs. This module keeps the two pieces that
//! are about a *single* trial or a *single* job:
//!
//! * [`supervised`] — one trial under supervision. Every attempt runs
//!   under `catch_unwind`, a panicking trial is retried with bounded
//!   exponential backoff, and after [`WorkerPolicy::max_attempts`] it
//!   is quarantined as a typed [`TrialFailure`] — one poisoned trial
//!   cannot take down the campaign, and the failure is reported,
//!   never swallowed. A deterministic chaos hook injects panics on
//!   demand so the supervision path itself is exercised in tests and
//!   CI.
//! * [`run_job`] / [`run_job_observed`] — the one-shot convenience
//!   used by `flexserve run` and tests: spin up a transient pool,
//!   run one trial list, tear it down. Each worker builds its own
//!   fresh [`System`](flexcore::System) per trial via
//!   [`trial::run_trial`]; there is no shared mutable simulation
//!   state anywhere.

use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use flexcore::RunResult;
use flexcore_bench::trial::{self, TrialOutcome, TrialSpec};
use flexcore_telemetry::Gauge;

use crate::pool::WorkerPool;

/// Supervision knobs for the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPolicy {
    /// Pool width; `0` means one worker per available core.
    pub workers: usize,
    /// Attempts per trial before quarantine (clamped to ≥ 1).
    pub max_attempts: u32,
    /// First retry backoff; doubles per subsequent attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Chaos hook: panic the **first** attempt of every trial whose
    /// label hash is divisible by this, proving isolation + retry.
    pub chaos_panic_every: Option<u64>,
    /// Chaos escalation: panic *every* attempt of the selected trials,
    /// forcing them through the full quarantine path.
    pub chaos_all_attempts: bool,
}

impl Default for WorkerPolicy {
    fn default() -> WorkerPolicy {
        WorkerPolicy {
            workers: 0,
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            chaos_panic_every: None,
            chaos_all_attempts: false,
        }
    }
}

impl WorkerPolicy {
    /// The resolved pool width.
    pub fn pool_width(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(4, usize::from),
            n => n,
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        Duration::from_millis(self.backoff_cap_ms.min(self.backoff_base_ms << shift))
    }

    fn chaos_hits(&self, label: &str, attempt: u32) -> bool {
        let Some(every) = self.chaos_panic_every else { return false };
        if !(attempt == 1 || self.chaos_all_attempts) {
            return false;
        }
        fnv1a(label.as_bytes()).is_multiple_of(every.max(1))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A trial that exhausted its supervision budget — the typed terminal
/// failure a campaign reports instead of crashing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialFailure {
    /// Every attempt panicked.
    Panicked {
        /// Attempts spent (== the policy's `max_attempts`).
        attempts: u32,
        /// The final panic's message.
        last_message: String,
    },
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let TrialFailure::Panicked { attempts, last_message } = self;
        write!(f, "quarantined after {attempts} panicking attempts (last: {last_message})")
    }
}

/// One trial's execution record, delivered to the journaling callback
/// in completion order.
#[derive(Clone, Debug)]
pub struct TrialRecord {
    /// Submission index in the job's full trial list.
    pub index: usize,
    /// The trial label (the resume key).
    pub label: String,
    /// Which worker ran the final attempt.
    pub worker: usize,
    /// Attempts spent (1 = clean first try).
    pub attempts: u32,
    /// The outcome, or the typed quarantine failure.
    pub outcome: Result<TrialOutcome, TrialFailure>,
    /// Microseconds from job start to the first attempt's start.
    pub start_us: u64,
    /// Microseconds spent across all attempts (including backoff).
    pub dur_us: u64,
}

/// What a [`run_job`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobRunStats {
    /// Trials executed to completion (including quarantines).
    pub executed: u64,
    /// Trials skipped because the journal already had them.
    pub reused: u64,
    /// Trials that succeeded only after ≥ 1 panicking attempt.
    pub retried: u64,
    /// Trials quarantined as [`TrialFailure`].
    pub quarantined: u64,
    /// Individual panicking attempts observed (supervised, not fatal).
    pub panics: u64,
    /// Trials left unclaimed because a stop was requested.
    pub remaining: u64,
    /// Workers in the pool.
    pub workers: usize,
    /// Wall-clock time inside the pool, microseconds.
    pub elapsed_us: u64,
}

pub(crate) struct Attempted {
    pub(crate) outcome: Result<TrialOutcome, TrialFailure>,
    pub(crate) attempts: u32,
}

/// Runs one trial under supervision: `catch_unwind` isolation, bounded
/// exponential backoff between attempts, typed quarantine at budget.
pub(crate) fn supervised(
    spec: &TrialSpec,
    reference: Option<&RunResult>,
    policy: &WorkerPolicy,
) -> Attempted {
    let budget = policy.max_attempts.max(1);
    let mut last_message = String::new();
    for attempt in 1..=budget {
        if attempt > 1 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        let chaos = policy.chaos_hits(&spec.label, attempt);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if chaos {
                panic!("chaos: injected worker panic for `{}`", spec.label);
            }
            trial::run_trial(spec, reference)
        }));
        match result {
            Ok(outcome) => {
                return Attempted { outcome: Ok(outcome), attempts: attempt };
            }
            Err(payload) => {
                last_message = panic_message(payload.as_ref());
            }
        }
    }
    Attempted {
        outcome: Err(TrialFailure::Panicked { attempts: budget, last_message }),
        attempts: budget,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shards `trials` across a supervised worker pool.
///
/// Trials whose label is in `skip` are counted as reused and never
/// claimed (journal resume). `on_record` runs on the calling thread in
/// completion order — journal there without locking. When `stop_after`
/// is `Some(n)`, no new trials are claimed once `n` records have been
/// delivered (in-flight trials still finish and are delivered), which
/// is how tests and the soak interrupt a campaign at a deterministic
/// point.
pub fn run_job<F>(
    trials: &[TrialSpec],
    skip: &HashSet<String>,
    policy: &WorkerPolicy,
    stop_after: Option<u64>,
    on_record: F,
) -> JobRunStats
where
    F: FnMut(&TrialRecord),
{
    run_job_observed(trials, skip, policy, stop_after, None, on_record)
}

/// [`run_job`] with an optional busy-worker gauge: raised when a
/// worker claims a trial, lowered when the record is handed off — the
/// live "how parallel is the pool right now" signal behind the
/// `flexserve` status heartbeat. `None` costs nothing.
///
/// This is the one-shot shape: a transient [`WorkerPool`] scoped to
/// the call. Long-lived callers (the scheduler, the daemon) submit to
/// a pool they own instead, so workers survive across jobs.
pub fn run_job_observed<F>(
    trials: &[TrialSpec],
    skip: &HashSet<String>,
    policy: &WorkerPolicy,
    stop_after: Option<u64>,
    busy: Option<&Gauge>,
    on_record: F,
) -> JobRunStats
where
    F: FnMut(&TrialRecord),
{
    let pool = WorkerPool::start(policy.pool_width().max(1));
    pool.submit(trials, skip, policy, busy).collect(stop_after, on_record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore::recovery::RecoveryPolicy;
    use flexcore_bench::trial::CampaignSpec;
    use flexcore_workloads::Workload;

    fn bitcount() -> Workload {
        *Workload::all().iter().find(|w| w.name() == "bitcount").expect("bitcount exists")
    }

    fn small_trials(n: usize) -> Vec<TrialSpec> {
        let cspec = CampaignSpec {
            seed: 0xf1ec,
            trials: n,
            lockstep: false,
            recover: false,
            policy: RecoveryPolicy::default(),
        };
        trial::campaign1_trials(&cspec, &[bitcount()])
    }

    /// Runs `f` with panic output silenced (chaos tests panic on
    /// purpose; their backtraces are noise).
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn pool_matches_single_threaded_outcomes() {
        let trials = small_trials(4);
        let mut solo: Vec<(String, TrialOutcome)> =
            trials.iter().map(|t| (t.label.clone(), trial::run_trial(t, None))).collect();
        solo.sort_by(|a, b| a.0.cmp(&b.0));

        let mut pooled: Vec<(String, TrialOutcome)> = Vec::new();
        let policy = WorkerPolicy { workers: 3, ..WorkerPolicy::default() };
        let stats = run_job(&trials, &HashSet::new(), &policy, None, |r| {
            pooled.push((r.label.clone(), r.outcome.clone().expect("no chaos, no panics")));
        });
        pooled.sort_by(|a, b| a.0.cmp(&b.0));

        assert_eq!(stats.executed, 4);
        assert_eq!(stats.workers, 3);
        assert_eq!(pooled, solo, "sharding must not change any outcome");
    }

    #[test]
    fn skip_set_is_reused_not_rerun() {
        let trials = small_trials(4);
        let skip: HashSet<String> =
            [trials[0].label.clone(), trials[2].label.clone()].into_iter().collect();
        let mut seen = Vec::new();
        let stats = run_job(
            &trials,
            &skip,
            &WorkerPolicy { workers: 2, ..WorkerPolicy::default() },
            None,
            |r| {
                seen.push(r.label.clone());
            },
        );
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.executed, 2);
        assert!(!seen.contains(&trials[0].label));
    }

    #[test]
    fn chaos_panic_is_isolated_and_retried() {
        let trials = small_trials(4);
        let policy = WorkerPolicy {
            workers: 2,
            backoff_base_ms: 1,
            chaos_panic_every: Some(1), // every trial's first attempt panics
            ..WorkerPolicy::default()
        };
        let mut records = Vec::new();
        let stats = quiet_panics(|| {
            run_job(&trials, &HashSet::new(), &policy, None, |r| records.push(r.clone()))
        });
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.retried, 4, "every trial needed a retry");
        assert_eq!(stats.quarantined, 0, "second attempts succeed");
        assert_eq!(stats.panics, 4);
        for r in &records {
            assert_eq!(r.attempts, 2);
            assert!(r.outcome.is_ok(), "retry recovered `{}`", r.label);
        }
        // Retried outcomes are still the deterministic ones.
        let clean = trial::run_trial(&trials[0], None);
        let retried = &records.iter().find(|r| r.label == trials[0].label).expect("ran").outcome;
        assert_eq!(retried.as_ref().expect("ok"), &clean);
    }

    #[test]
    fn exhausted_attempts_quarantine_with_typed_failure() {
        let trials = small_trials(2);
        let policy = WorkerPolicy {
            workers: 1,
            max_attempts: 3,
            backoff_base_ms: 1,
            chaos_panic_every: Some(1),
            chaos_all_attempts: true,
            ..WorkerPolicy::default()
        };
        let mut records = Vec::new();
        let stats = quiet_panics(|| {
            run_job(&trials, &HashSet::new(), &policy, None, |r| records.push(r.clone()))
        });
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.panics, 6, "3 attempts per trial, all supervised");
        let Err(TrialFailure::Panicked { attempts, last_message }) = &records[0].outcome else {
            panic!("expected quarantine, got {:?}", records[0].outcome);
        };
        assert_eq!(*attempts, 3);
        assert!(last_message.contains("chaos"), "failure carries the panic message");
    }

    #[test]
    fn stop_after_halts_claiming_but_loses_nothing_delivered() {
        let trials = small_trials(8);
        let mut seen = 0u64;
        let stats = run_job(
            &trials,
            &HashSet::new(),
            &WorkerPolicy { workers: 1, ..WorkerPolicy::default() },
            Some(3),
            |_| seen += 1,
        );
        assert_eq!(seen, stats.executed);
        assert!(stats.executed >= 3, "the stop threshold was reached");
        assert!(stats.executed < 8, "the stop actually interrupted the job");
        assert_eq!(stats.remaining + stats.executed, 8, "every trial is accounted for");
    }
}
