//! Assembler errors.

use std::fmt;

/// An assembly error, carrying the 1-based source line it occurred on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line the error occurred on (0 for
    /// whole-program errors such as an unaligned base address).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error message, without the line prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, "unknown mnemonic `frobnicate`");
        assert_eq!(e.to_string(), "line 7: unknown mnemonic `frobnicate`");
        assert_eq!(e.line(), 7);
    }

    #[test]
    fn line_zero_means_whole_program() {
        let e = AsmError::new(0, "base address not aligned");
        assert_eq!(e.to_string(), "base address not aligned");
    }
}
