//! The 32 instruction *types* the FlexCore forwarding configuration
//! register (CFGR) switches on.
//!
//! The paper's prototype defines 32 instruction types for the SPARC
//! architecture and gives each a 2-bit forwarding policy in the 64-bit
//! CFGR (Table II). This module defines that classification.

use crate::{Instruction, Opcode};

/// Number of instruction classes (fixed by the CFGR width: 64 bits / 2
/// bits per class).
pub const NUM_INSTR_CLASSES: usize = 32;

/// One of the 32 instruction types used by the forwarding filter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum InstrClass {
    /// Word load.
    Ld = 0,
    /// Unsigned byte load.
    Ldub = 1,
    /// Unsigned halfword load.
    Lduh = 2,
    /// Signed byte load.
    Ldsb = 3,
    /// Signed halfword load.
    Ldsh = 4,
    /// Word store.
    St = 5,
    /// Byte store.
    Stb = 6,
    /// Halfword store.
    Sth = 7,
    /// Add (no icc update).
    Add = 8,
    /// Subtract (no icc update).
    Sub = 9,
    /// Bitwise logic (and/or/xor and negated forms, no icc update).
    Logic = 10,
    /// Shifts.
    Shift = 11,
    /// Multiply.
    Mul = 12,
    /// Divide.
    Div = 13,
    /// Add, setting condition codes.
    AddCc = 14,
    /// Subtract, setting condition codes.
    SubCc = 15,
    /// Logic, setting condition codes.
    LogicCc = 16,
    /// `sethi` (excluding the canonical `nop`).
    Sethi = 17,
    /// Conditional branch (flags-dependent).
    BranchCond = 18,
    /// Unconditional branch (`ba`/`bn`).
    BranchUncond = 19,
    /// `call`.
    Call = 20,
    /// `jmpl` — indirect jumps and returns. This is the class DIFT
    /// checks for tainted control transfers.
    Jmpl = 21,
    /// `save`.
    Save = 22,
    /// `restore`.
    Restore = 23,
    /// Trap on condition.
    Trap = 24,
    /// Co-processor opcode space 1.
    Cpop1 = 25,
    /// Co-processor opcode space 2.
    Cpop2 = 26,
    /// The canonical `nop` (`sethi 0, %g0`).
    Nop = 27,
    /// Doubleword load (even/odd register pair).
    Ldd = 28,
    /// Doubleword store (even/odd register pair).
    Std = 29,
    /// Atomic swap of a register with a memory word.
    Swap = 30,
    /// Anything else.
    Other = 31,
}

impl InstrClass {
    /// All 32 classes in index order.
    pub fn all() -> impl Iterator<Item = InstrClass> {
        (0..NUM_INSTR_CLASSES as u8).map(InstrClass::from_index)
    }

    /// Class for a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn from_index(index: u8) -> InstrClass {
        use InstrClass::*;
        const TABLE: [InstrClass; NUM_INSTR_CLASSES] = [
            Ld,
            Ldub,
            Lduh,
            Ldsb,
            Ldsh,
            St,
            Stb,
            Sth,
            Add,
            Sub,
            Logic,
            Shift,
            Mul,
            Div,
            AddCc,
            SubCc,
            LogicCc,
            Sethi,
            BranchCond,
            BranchUncond,
            Call,
            Jmpl,
            Save,
            Restore,
            Trap,
            Cpop1,
            Cpop2,
            Nop,
            Ldd,
            Std,
            Swap,
            Other,
        ];
        TABLE[index as usize]
    }

    /// Flat index in `0..32` (the CFGR bit position is `2 * index`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this class is a memory access.
    pub fn is_mem(self) -> bool {
        self.index() < 8 || matches!(self, InstrClass::Ldd | InstrClass::Std | InstrClass::Swap)
    }

    /// Whether this class is a load.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            InstrClass::Ld
                | InstrClass::Ldub
                | InstrClass::Lduh
                | InstrClass::Ldsb
                | InstrClass::Ldsh
                | InstrClass::Ldd
        )
    }

    /// Whether this class is a store.
    pub fn is_store(self) -> bool {
        matches!(self, InstrClass::St | InstrClass::Stb | InstrClass::Sth | InstrClass::Std)
    }

    /// Whether this class is an integer ALU operation (add/sub/logic/
    /// shift/mul/div, with or without icc update).
    pub fn is_alu(self) -> bool {
        (8..=16).contains(&self.index())
    }

    /// Classifies a decoded instruction.
    pub fn of(inst: &Instruction) -> InstrClass {
        use Opcode::*;
        if inst.is_nop() {
            return InstrClass::Nop;
        }
        match inst {
            Instruction::Branch { cond, .. } => {
                if cond.is_unconditional() {
                    InstrClass::BranchUncond
                } else {
                    InstrClass::BranchCond
                }
            }
            Instruction::Call { .. } => InstrClass::Call,
            Instruction::Jmpl { .. } => InstrClass::Jmpl,
            Instruction::Trap { .. } => InstrClass::Trap,
            Instruction::Sethi { .. } => InstrClass::Sethi,
            Instruction::Cpop { space, .. } => {
                if *space == 1 {
                    InstrClass::Cpop1
                } else {
                    InstrClass::Cpop2
                }
            }
            Instruction::Mem { op, .. } => match op {
                Ld => InstrClass::Ld,
                Ldub => InstrClass::Ldub,
                Lduh => InstrClass::Lduh,
                Ldsb => InstrClass::Ldsb,
                Ldsh => InstrClass::Ldsh,
                St => InstrClass::St,
                Stb => InstrClass::Stb,
                Sth => InstrClass::Sth,
                Ldd => InstrClass::Ldd,
                Std => InstrClass::Std,
                Swap => InstrClass::Swap,
                _ => InstrClass::Other,
            },
            Instruction::Alu { op, .. } => match op {
                Add => InstrClass::Add,
                Sub => InstrClass::Sub,
                And | Or | Xor | Andn | Orn | Xnor => InstrClass::Logic,
                Sll | Srl | Sra => InstrClass::Shift,
                Umul | Smul => InstrClass::Mul,
                Udiv | Sdiv => InstrClass::Div,
                Addcc => InstrClass::AddCc,
                Subcc => InstrClass::SubCc,
                Andcc | Orcc | Xorcc | Andncc | Orncc | Xnorcc => InstrClass::LogicCc,
                Save => InstrClass::Save,
                Restore => InstrClass::Restore,
                _ => InstrClass::Other,
            },
        }
    }
}

/// `InstrClass::of` as a free function; convenient for iterator chains.
pub fn classify(inst: &Instruction) -> InstrClass {
    InstrClass::of(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Operand2, Reg};

    #[test]
    fn index_round_trips() {
        for i in 0..NUM_INSTR_CLASSES as u8 {
            assert_eq!(InstrClass::from_index(i).index(), i as usize);
        }
    }

    #[test]
    fn exactly_32_classes() {
        assert_eq!(InstrClass::all().count(), 32);
    }

    #[test]
    fn nop_classifies_as_nop_not_sethi() {
        assert_eq!(InstrClass::of(&Instruction::nop()), InstrClass::Nop);
        let sethi = Instruction::Sethi { rd: Reg::G1, imm22: 5 };
        assert_eq!(InstrClass::of(&sethi), InstrClass::Sethi);
    }

    #[test]
    fn branch_splits_on_cond() {
        let ba = Instruction::Branch { cond: Cond::A, annul: false, disp22: 1 };
        let be = Instruction::Branch { cond: Cond::E, annul: false, disp22: 1 };
        assert_eq!(InstrClass::of(&ba), InstrClass::BranchUncond);
        assert_eq!(InstrClass::of(&be), InstrClass::BranchCond);
    }

    #[test]
    fn alu_grouping() {
        let mk = |op| Instruction::alu(op, Reg::G1, Reg::G2, Operand2::Imm(1));
        assert_eq!(InstrClass::of(&mk(Opcode::Add)), InstrClass::Add);
        assert_eq!(InstrClass::of(&mk(Opcode::Xor)), InstrClass::Logic);
        assert_eq!(InstrClass::of(&mk(Opcode::Sll)), InstrClass::Shift);
        assert_eq!(InstrClass::of(&mk(Opcode::Umul)), InstrClass::Mul);
        assert_eq!(InstrClass::of(&mk(Opcode::Sdiv)), InstrClass::Div);
        assert_eq!(InstrClass::of(&mk(Opcode::Addcc)), InstrClass::AddCc);
        assert_eq!(InstrClass::of(&mk(Opcode::Orcc)), InstrClass::LogicCc);
    }

    #[test]
    fn mem_classes_match_opcodes() {
        let mk = |op| Instruction::mem(op, Reg::G1, Reg::G2, Operand2::Imm(0));
        assert_eq!(InstrClass::of(&mk(Opcode::Ld)), InstrClass::Ld);
        assert_eq!(InstrClass::of(&mk(Opcode::Stb)), InstrClass::Stb);
        assert!(InstrClass::of(&mk(Opcode::Ldsh)).is_load());
        assert!(InstrClass::of(&mk(Opcode::Sth)).is_store());
    }

    #[test]
    fn predicate_consistency() {
        for c in InstrClass::all() {
            if c.is_load() || c.is_store() {
                assert!(c.is_mem(), "{c:?}");
            }
            assert!(!(c.is_load() && c.is_store()), "{c:?}");
            assert!(!(c.is_alu() && c.is_mem()), "{c:?}");
        }
    }
}
