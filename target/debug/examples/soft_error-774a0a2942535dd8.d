/root/repo/target/debug/examples/soft_error-774a0a2942535dd8.d: examples/soft_error.rs

/root/repo/target/debug/examples/soft_error-774a0a2942535dd8: examples/soft_error.rs

examples/soft_error.rs:
