//! Regenerates the paper's **Table I** (example FlexCore co-processing
//! extensions: meta-data, transparent operations, software-visible
//! operations) from the extension descriptors, and — with
//! `--interface` — **Table II** (the core–fabric interface fields).

use flexcore::ext::{Bc, Dift, Extension, Mprot, Sec, Umc};
use flexcore::interface::{ffifo_entry_bits, FieldDirection, FIELDS};

fn print_table1(extended: bool) {
    println!("Table I: example FlexCore co-processing extensions");
    println!("{}", "=".repeat(78));
    let umc = Umc::new();
    let dift = Dift::new();
    let bc = Bc::new();
    let sec = Sec::new();
    let mprot = Mprot::new();
    let mut exts: Vec<&dyn Extension> = vec![&umc, &dift, &bc, &sec];
    if extended {
        // Beyond the paper: extensions this reproduction adds.
        exts.push(&mprot);
    }
    for ext in exts {
        let d = ext.descriptor();
        println!("\n[{}] {}", d.abbrev, d.name);
        println!("  Meta-data:");
        if d.meta_data.is_empty() {
            println!("    (none)");
        }
        for (i, m) in d.meta_data.iter().enumerate() {
            println!("    {}. {m}", i + 1);
        }
        println!("  Transparent operations:");
        for (i, m) in d.transparent_ops.iter().enumerate() {
            println!("    {}. {m}", i + 1);
        }
        println!("  SW-visible operations:");
        for (i, m) in d.sw_visible_ops.iter().enumerate() {
            println!("    {}. {m}", i + 1);
        }
        println!(
            "  CFGR: forwards {} of 32 instruction classes; {} pipeline stages",
            ext.cfgr().forwarded_classes().count(),
            ext.pipeline_stages(),
        );
    }
}

fn print_table2() {
    println!("\nTable II: the FlexCore interface between the core and the fabric");
    println!("{}", "=".repeat(78));
    println!("{:<16}{:<8}{:<9}{:>5}  Description", "Direction", "Module", "Field", "Bits");
    println!("{}", "-".repeat(78));
    for f in FIELDS {
        let dir = match f.direction {
            FieldDirection::Config => "Config",
            FieldDirection::CoreToFabric => "Core->Fabric",
            FieldDirection::FabricToCore => "Fabric->Core",
        };
        println!("{:<16}{:<8}{:<9}{:>5}  {}", dir, f.module, f.name, f.bits, f.description);
    }
    println!("{}", "-".repeat(78));
    println!("FFIFO entry payload: {} bits per forwarded instruction", ffifo_entry_bits());
}

fn main() {
    print_table1(std::env::args().any(|a| a == "--extended"));
    if std::env::args().any(|a| a == "--interface") {
        print_table2();
    } else {
        println!("\n(run with --interface to also print Table II;");
        println!(" --extended adds the extensions beyond the paper's four)");
    }
}
