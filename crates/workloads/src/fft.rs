//! `fft`: fixed-point radix-2 decimation-in-time FFT, 128 points, Q14
//! twiddles, with per-stage scaling (MiBench's fft uses floating
//! point; the Leon3 FPU is not modeled, so this is the standard
//! fixed-point equivalent — same butterflies, same strided access
//! pattern).

use crate::lcg;

const N: usize = 1024;
const LOG2N: u32 = 10;
const RUNS: u32 = 3;
const SEED: u32 = 0xf00f_f00f;
const QSHIFT: u32 = 14;

/// Q14 twiddle factors for e^{-2πik/N}, k in 0..N/2, computed on the
/// host and baked into the image as data tables.
fn twiddles() -> (Vec<i32>, Vec<i32>) {
    let scale = f64::from(1 << QSHIFT);
    (0..N / 2)
        .map(|k| {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
            ((ang.cos() * scale).round() as i32, (ang.sin() * scale).round() as i32)
        })
        .unzip()
}

fn bitrev(i: usize) -> usize {
    let mut r = 0usize;
    for b in 0..LOG2N {
        r = (r << 1) | ((i >> b) & 1);
    }
    r
}

/// The fixed-point FFT exactly as the assembly performs it (wrapping
/// i32, arithmetic shifts, per-stage >>1 scaling).
fn fft_fixed(re: &mut [i32], im: &mut [i32], tw_re: &[i32], tw_im: &[i32]) {
    for i in 0..N {
        let j = bitrev(i);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut s = 1u32;
    while s <= LOG2N {
        let m = 1usize << s;
        let half = m >> 1;
        let stride = N / m; // twiddle index stride
        let mut k = 0usize;
        while k < N {
            for j in 0..half {
                let wi = j * stride;
                let (wr, wim) = (tw_re[wi], tw_im[wi]);
                let (xr, xi) = (re[k + j + half], im[k + j + half]);
                let tr = (wr.wrapping_mul(xr).wrapping_sub(wim.wrapping_mul(xi))) >> QSHIFT;
                let ti = (wr.wrapping_mul(xi).wrapping_add(wim.wrapping_mul(xr))) >> QSHIFT;
                let (ur, ui) = (re[k + j], im[k + j]);
                re[k + j] = ur.wrapping_add(tr) >> 1;
                im[k + j] = ui.wrapping_add(ti) >> 1;
                re[k + j + half] = ur.wrapping_sub(tr) >> 1;
                im[k + j + half] = ui.wrapping_sub(ti) >> 1;
            }
            k += m;
        }
        s += 1;
    }
}

/// Rust reference producing the expected checksum over RUNS transforms.
fn reference() -> u32 {
    let (tw_re, tw_im) = twiddles();
    let mut seed = SEED;
    let mut check = 0u32;
    for _ in 0..RUNS {
        let mut re = [0i32; N];
        let mut im = [0i32; N];
        for i in 0..N {
            seed = lcg(seed);
            re[i] = ((seed >> 18) as i32) - 8192; // Q14 range
            seed = lcg(seed);
            im[i] = ((seed >> 18) as i32) - 8192;
        }
        fft_fixed(&mut re, &mut im, &tw_re, &tw_im);
        for i in 0..N {
            check = check.wrapping_add(re[i] as u32).wrapping_add((im[i] as u32) << 1);
        }
    }
    check
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let (tw_re, tw_im) = twiddles();
    let tw_re_words: String = tw_re.iter().map(|v| format!(".word {v}\n")).collect();
    let tw_im_words: String = tw_im.iter().map(|v| format!(".word {v}\n")).collect();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! fft: {RUNS} fixed-point 128-point FFTs (Q14, stage-scaled).
        .equ N, {N}
        .equ LOG2N, {LOG2N}
        .equ RUNS, {RUNS}
start:
        set {SEED}, %g2
        set RUNS, %g3
        clr %g5                ! checksum
run:
        ! Fill re/im with Q14 noise.
        set re_buf, %l6
        set im_buf, %l7
        set N, %l5
fill:
        {lcg}
        srl %g2, 18, %o0
        add %o0, -4096, %o0    ! -8192 in two simm13 steps
        add %o0, -4096, %o0
        st %o0, [%l6]
        {lcg}
        srl %g2, 18, %o0
        add %o0, -4096, %o0
        add %o0, -4096, %o0
        st %o0, [%l7]
        add %l6, 4, %l6
        add %l7, 4, %l7
        subcc %l5, 1, %l5
        bne fill
        nop

        ! Bit-reversal permutation.
        set re_buf, %g6
        set im_buf, %g7
        clr %l0                ! i
brev:
        ! j = reverse of the low 7 bits of i
        clr %l1
        clr %o0                ! bit counter
        mov %l0, %o1
brbit:
        sll %l1, 1, %l1
        and %o1, 1, %o2
        or %l1, %o2, %l1
        srl %o1, 1, %o1
        add %o0, 1, %o0
        cmp %o0, LOG2N
        bl brbit
        nop
        ! swap if i < j
        cmp %l0, %l1
        bgeu no_swap
        nop
        sll %l0, 2, %o0
        sll %l1, 2, %o1
        ld [%g6 + %o0], %o2
        ld [%g6 + %o1], %o3
        st %o3, [%g6 + %o0]
        st %o2, [%g6 + %o1]
        ld [%g7 + %o0], %o2
        ld [%g7 + %o1], %o3
        st %o3, [%g7 + %o0]
        st %o2, [%g7 + %o1]
no_swap:
        add %l0, 1, %l0
        cmp %l0, N
        bl brev
        nop

        ! Butterfly stages.
        mov 1, %l0             ! s
stage:
        mov 1, %l1
        sll %l1, %l0, %l1      ! m = 1 << s
        srl %l1, 1, %l2        ! half = m/2
        clr %l3                ! k
kloop:
        clr %l4                ! j
jloop:
        ! twiddle index = j << (LOG2N - s)
        mov LOG2N, %o0
        sub %o0, %l0, %o0
        sll %l4, %o0, %o0      ! wi
        sll %o0, 2, %o0
        set tw_re, %o1
        ld [%o1 + %o0], %i0    ! wr
        set tw_im, %o1
        ld [%o1 + %o0], %i1    ! wim
        ! x = a[k+j+half]
        add %l3, %l4, %o2
        add %o2, %l2, %o3
        sll %o3, 2, %o3
        ld [%g6 + %o3], %i2    ! xr
        ld [%g7 + %o3], %i3    ! xi
        ! tr = (wr*xr - wim*xi) >> 14 ; ti = (wr*xi + wim*xr) >> 14
        smul %i0, %i2, %o4
        smul %i1, %i3, %o5
        sub %o4, %o5, %o4
        sra %o4, 14, %i4       ! tr
        smul %i0, %i3, %o4
        smul %i1, %i2, %o5
        add %o4, %o5, %o4
        sra %o4, 14, %i5       ! ti
        ! u = a[k+j]
        sll %o2, 2, %o2
        ld [%g6 + %o2], %o4    ! ur
        ld [%g7 + %o2], %o5    ! ui
        ! a[k+j] = (u + t) >> 1 ; a[k+j+half] = (u - t) >> 1
        add %o4, %i4, %o0
        sra %o0, 1, %o0
        st %o0, [%g6 + %o2]
        add %o5, %i5, %o0
        sra %o0, 1, %o0
        st %o0, [%g7 + %o2]
        sub %o4, %i4, %o0
        sra %o0, 1, %o0
        st %o0, [%g6 + %o3]
        sub %o5, %i5, %o0
        sra %o0, 1, %o0
        st %o0, [%g7 + %o3]
        add %l4, 1, %l4
        cmp %l4, %l2
        bl jloop
        nop
        add %l3, %l1, %l3
        cmp %l3, N
        bl kloop
        nop
        add %l0, 1, %l0
        cmp %l0, LOG2N
        ble stage
        nop

        ! checksum += sum(re) + 2*sum(im)
        set re_buf, %l6
        set im_buf, %l7
        set N, %l5
sum:
        ld [%l6], %o0
        add %g5, %o0, %g5
        ld [%l7], %o0
        sll %o0, 1, %o0
        add %g5, %o0, %g5
        add %l6, 4, %l6
        add %l7, 4, %l7
        subcc %l5, 1, %l5
        bne sum
        nop

        subcc %g3, 1, %g3
        bne run
        nop

        set {expected}, %o1
        cmp %g5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
tw_re:
{tw_re_words}
tw_im:
{tw_im_words}
        .align 4
re_buf: .space {buf_bytes}
im_buf: .space {buf_bytes}
",
        buf_bytes = N * 4
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_is_an_involution() {
        for i in 0..N {
            assert_eq!(bitrev(bitrev(i)), i);
        }
    }

    #[test]
    fn twiddles_have_unit_magnitude_in_q14() {
        let (re, im) = twiddles();
        for k in 0..N / 2 {
            let mag = re[k] as i64 * re[k] as i64 + im[k] as i64 * im[k] as i64;
            let unit = 1i64 << (2 * QSHIFT);
            assert!((mag - unit).abs() < unit / 100, "k={k}: {mag} vs {unit}");
        }
    }

    #[test]
    fn constant_input_transforms_to_impulse() {
        // FFT of a constant signal concentrates everything in bin 0.
        let (tw_re, tw_im) = twiddles();
        let mut re = [1000i32; N];
        let mut im = [0i32; N];
        fft_fixed(&mut re, &mut im, &tw_re, &tw_im);
        // With per-stage >>1 scaling the DC bin holds ~the input value.
        assert!((re[0] - 1000).abs() <= 8, "DC bin {}", re[0]);
        for (i, &v) in re.iter().enumerate().skip(1) {
            assert!(v.abs() <= 8, "bin {i} = {v}");
        }
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
