//! Control-Flow Integrity (CFI).
//!
//! The sixth extension of the zoo (ROADMAP item 5): every committed
//! control-transfer instruction is checked against a table of valid
//! edges derived offline from the program's control-flow graph — the
//! flexcheck CFG recovery is the static counterpart that produces the
//! table (see `flexcore_analysis::cfi_edges`). Direct branches and
//! calls are checked by their *static* targets (a text-corrupting
//! fault that rewrites a displacement field changes the target and
//! trips the check), returns by their *dynamic* targets (a smashed
//! return address lands outside the recorded return sites).
//!
//! The checks are deliberately stateless per packet — no shadow stack,
//! no history — so the verdict for a packet depends only on the packet
//! and the immutable table. That property is what makes CFI the proof
//! vehicle for mid-run bitstream hot-swap: arming CFI at any commit
//! boundary yields bit-identical verdicts from that boundary onward to
//! a run that had CFI from the start.

use std::collections::BTreeSet;

use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_isa::{Cond, InstrClass, Instruction, Operand2, Reg};
use flexcore_pipeline::TracePacket;

use crate::ext::{ExtEnv, Extension, ExtensionDescriptor, MonitorTrap};
use crate::interface::{Cfgr, ForwardPolicy};

/// The edge table CFI checks against: valid direct-branch edges, call
/// targets, and return sites, recovered offline from the CFG.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfiTable {
    branch_edges: BTreeSet<(u32, u32)>,
    call_targets: BTreeSet<u32>,
    return_sites: BTreeSet<u32>,
}

impl CfiTable {
    /// An empty table (everything traps — useful only in tests).
    pub fn new() -> CfiTable {
        CfiTable::default()
    }

    /// Records `from → to` as a valid taken edge of a direct branch.
    pub fn allow_branch(&mut self, from: u32, to: u32) {
        self.branch_edges.insert((from, to));
    }

    /// Records `target` as a valid call destination (a function entry).
    pub fn allow_call(&mut self, target: u32) {
        self.call_targets.insert(target);
    }

    /// Records `site` as a valid return destination (a call site's
    /// post-delay-slot address).
    pub fn allow_return(&mut self, site: u32) {
        self.return_sites.insert(site);
    }

    /// `(branch edges, call targets, return sites)` cardinalities.
    pub fn len(&self) -> (usize, usize, usize) {
        (self.branch_edges.len(), self.call_targets.len(), self.return_sites.len())
    }

    /// Whether the table holds no edges at all.
    pub fn is_empty(&self) -> bool {
        self.branch_edges.is_empty() && self.call_targets.is_empty() && self.return_sites.is_empty()
    }
}

/// Control-Flow Integrity: static-edge checks for branches and calls,
/// dynamic-target checks for returns and indirect jumps, against a
/// [`CfiTable`] programmed at configuration time.
#[derive(Clone, Debug, Default)]
pub struct Cfi {
    table: CfiTable,
    edges_checked: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Cfi {
    /// Creates the extension around an edge table.
    pub fn new(table: CfiTable) -> Cfi {
        Cfi { table, ..Cfi::default() }
    }

    /// The configured edge table.
    pub fn table(&self) -> &CfiTable {
        &self.table
    }

    /// Control-transfer packets checked so far.
    pub fn edges_checked(&self) -> u64 {
        self.edges_checked
    }

    fn trap(pkt: &TracePacket, what: &str, target: u32) -> MonitorTrap {
        MonitorTrap {
            pc: pkt.pc,
            reason: format!("CFI violation: {what} at {:#010x} targets {target:#010x}", pkt.pc),
        }
    }
}

impl Extension for Cfi {
    fn name(&self) -> &'static str {
        "CFI"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "CFI",
            name: "Control-Flow Integrity",
            meta_data: &["valid branch-edge / call-target / return-site table"],
            transparent_ops: &["Check every committed control transfer against the edge table"],
            sw_visible_ops: &["Exception when a transfer leaves the recovered CFG"],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new().with_classes(
            |c| {
                matches!(
                    c,
                    InstrClass::BranchCond
                        | InstrClass::BranchUncond
                        | InstrClass::Call
                        | InstrClass::Jmpl
                )
            },
            ForwardPolicy::Always,
        )
    }

    fn pipeline_stages(&self) -> u32 {
        3
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.edges_checked]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [edges_checked] = *state {
            self.edges_checked = edges_checked;
        }
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn elision_class(&self) -> u8 {
        crate::elide::ELIDE_CFI
    }

    fn check_elidable(&self, pkt: &TracePacket) -> bool {
        // Self-certifying: re-run the *static* part of the check
        // against the loaded table, so a stale elision table can never
        // flip a verdict. Direct branches and calls have static
        // targets — if the edge is recorded, `process` provably passes
        // and skipping it only skips the counter bump. Indirect jumps
        // and returns have dynamic targets the table cannot vouch for.
        if self.bypassed {
            return false;
        }
        match pkt.inst {
            Instruction::Branch { cond, disp22, .. } => {
                cond == Cond::N
                    || self
                        .table
                        .branch_edges
                        .contains(&(pkt.pc, pkt.pc.wrapping_add((disp22 as u32) << 2)))
            }
            Instruction::Call { disp30 } => {
                self.table.call_targets.contains(&pkt.pc.wrapping_add((disp30 as u32) << 2))
            }
            _ => false,
        }
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        _env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        match pkt.inst {
            Instruction::Branch { cond, disp22, .. } => {
                // `bn` never transfers; everything else has a static
                // taken target that must be a recorded edge.
                if cond != Cond::N {
                    self.edges_checked += 1;
                    let target = pkt.pc.wrapping_add((disp22 as u32) << 2);
                    if !self.table.branch_edges.contains(&(pkt.pc, target)) {
                        return Err(Cfi::trap(pkt, "branch", target));
                    }
                }
                Ok(None)
            }
            Instruction::Call { disp30 } => {
                self.edges_checked += 1;
                let target = pkt.pc.wrapping_add((disp30 as u32) << 2);
                if !self.table.call_targets.contains(&target) {
                    return Err(Cfi::trap(pkt, "call", target));
                }
                Ok(None)
            }
            Instruction::Jmpl { rd, rs1, op2 } => {
                self.edges_checked += 1;
                let target = pkt.srcv1.wrapping_add(match op2 {
                    Operand2::Imm(i) => i as u32,
                    Operand2::Reg(_) => pkt.srcv2,
                });
                let is_ret = rd == Reg::G0 && (rs1 == Reg::O7 || rs1 == Reg::I7);
                if is_ret {
                    if !self.table.return_sites.contains(&target) {
                        return Err(Cfi::trap(pkt, "return", target));
                    }
                } else if !self.table.call_targets.contains(&target)
                    && !self.table.return_sites.contains(&target)
                {
                    return Err(Cfi::trap(pkt, "indirect jump", target));
                }
                Ok(None)
            }
            _ => Ok(None),
        }
    }

    /// The CFI datapath: a CAM-style edge matcher. The PC and computed
    /// target are compared against a bank of stored edge registers in
    /// parallel; a transfer that matches no way raises TRAP.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: pc[32], target[32], is_transfer.
        let mut s = Vec::with_capacity(65);
        super::push_bits(&mut s, pkt.pc, 32);
        super::push_bits(&mut s, pkt.addr, 32);
        s.push(pkt.inst.is_control());
        s
    }

    fn netlist(&self) -> Netlist {
        const WAYS: usize = 4;
        let mut b = NetlistBuilder::new("cfi");
        let pc = b.input_bus(32);
        let target = b.input_bus(32);
        let is_transfer = b.input();

        // Stage 1: latch the FIFO fields.
        let pc_r = b.register_bus(&pc);
        let target_r = b.register_bus(&target);
        let xfer_r = b.register(is_transfer);

        // CAM ways: each way holds a stored (from, to) edge in config
        // flops and a valid bit; a way hits when both halves match.
        let mut hits = Vec::with_capacity(WAYS);
        for _ in 0..WAYS {
            let from: Vec<_> = (0..32).map(|_| b.dff()).collect();
            let to: Vec<_> = (0..32).map(|_| b.dff()).collect();
            let valid = b.dff();
            let from_eq = b.eq(&pc_r, &from);
            let to_eq = b.eq(&target_r, &to);
            let pair = b.and(from_eq, to_eq);
            hits.push(b.and(pair, valid));
        }
        let any_hit = b.reduce_or(&hits);
        let hit_r = b.register(any_hit);
        b.output("hit", hit_r);

        // Trap on a transfer that matched no way.
        let xfer_r2 = b.register(xfer_r);
        let miss = b.not(hit_r);
        let trap = b.and(xfer_r2, miss);
        let trap_r = b.register(trap);
        b.output("trap", trap_r);

        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{env_parts, packet};

    fn branch_packet(pc: u32, cond: Cond, disp22: i32) -> TracePacket {
        let mut p = packet(Instruction::Branch { cond, annul: false, disp22 });
        p.pc = pc;
        p
    }

    fn call_packet(pc: u32, disp30: i32) -> TracePacket {
        let mut p = packet(Instruction::Call { disp30 });
        p.pc = pc;
        p
    }

    fn ret_packet(pc: u32, o7: u32) -> TracePacket {
        let mut p = packet(Instruction::Jmpl { rd: Reg::G0, rs1: Reg::O7, op2: Operand2::Imm(8) });
        p.pc = pc;
        p.srcv1 = o7;
        p
    }

    #[test]
    fn recorded_edges_pass_and_foreign_edges_trap() {
        let mut t = CfiTable::new();
        t.allow_branch(0x1000, 0x1040);
        t.allow_call(0x2000);
        t.allow_return(0x1008);
        let mut cfi = Cfi::new(t);
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);

        // Branch along the recorded edge: disp22 = (0x1040-0x1000)/4.
        assert!(cfi.process(&branch_packet(0x1000, Cond::E, 0x10), &mut env).is_ok());
        // Same branch site, corrupted displacement: traps.
        let err = cfi.process(&branch_packet(0x1000, Cond::E, 0x11), &mut env).unwrap_err();
        assert!(err.reason.contains("branch"));

        // Call to the recorded target from pc 0x1000: disp30 = 0x400.
        assert!(cfi.process(&call_packet(0x1000, 0x400), &mut env).is_ok());
        let err = cfi.process(&call_packet(0x1000, 0x401), &mut env).unwrap_err();
        assert!(err.reason.contains("call"));

        // Return to the recorded site (%o7 = 0x1000 → target 0x1008).
        assert!(cfi.process(&ret_packet(0x2010, 0x1000), &mut env).is_ok());
        // Smashed return address.
        let err = cfi.process(&ret_packet(0x2010, 0x5000), &mut env).unwrap_err();
        assert!(err.reason.contains("return"));

        assert_eq!(cfi.edges_checked(), 6);
    }

    #[test]
    fn bn_and_non_transfers_are_ignored() {
        let mut cfi = Cfi::new(CfiTable::new());
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        // `bn` never branches: no edge needed even with an empty table.
        assert!(cfi.process(&branch_packet(0x1000, Cond::N, 0x10), &mut env).is_ok());
        // Non-control packets pass through.
        let alu =
            packet(Instruction::alu(flexcore_isa::Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(1)));
        assert!(cfi.process(&alu, &mut env).is_ok());
        assert_eq!(cfi.edges_checked(), 0);
    }

    #[test]
    fn bypass_suppresses_and_rearm_restores_checks() {
        let mut cfi = Cfi::new(CfiTable::new());
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        cfi.bypass();
        assert!(cfi.process(&call_packet(0x1000, 0x400), &mut env).is_ok());
        assert_eq!(cfi.suppressed_checks(), 1);
        cfi.rearm();
        assert!(cfi.process(&call_packet(0x1000, 0x400), &mut env).is_err());
    }

    #[test]
    fn state_round_trips_through_snapshot() {
        let mut t = CfiTable::new();
        t.allow_call(0x2000);
        let mut cfi = Cfi::new(t.clone());
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        cfi.process(&call_packet(0x1000, 0x400), &mut env).unwrap();
        let state = cfi.snapshot_state();
        let mut fresh = Cfi::new(t);
        fresh.restore_state(&state);
        assert_eq!(fresh.edges_checked(), 1);
    }

    #[test]
    fn cfgr_forwards_only_control_transfers() {
        let c = Cfi::new(CfiTable::new()).cfgr();
        assert_eq!(c.policy(InstrClass::BranchCond), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Call), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Jmpl), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Ignore);
    }

    #[test]
    fn netlist_is_nontrivial_and_maps() {
        let n = Cfi::new(CfiTable::new()).netlist();
        assert!(n.logic_gates() > 50);
        let m = flexcore_fabric::map_to_luts(&n, 6);
        assert!(m.lut_count() > 30, "{}", m.lut_count());
        assert!(m.depth() >= 2);
    }
}
