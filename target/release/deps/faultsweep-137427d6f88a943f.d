/root/repo/target/release/deps/faultsweep-137427d6f88a943f.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/release/deps/faultsweep-137427d6f88a943f: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
