//! Hot-swap glue shared by the campaign machinery and the CLI tools:
//! building boxed extensions by name (including CFI, whose edge table
//! comes from the static `flexcore_analysis` CFG recovery), producing
//! the bitstream a [`SwapRequest`] programs, and parsing the
//! `--swap-at CYCLE:ext` syntax.
//!
//! Hot-swap runs use `System<Box<dyn Extension>>`: the incoming
//! extension of a [`SwapRequest`] must have the same type as the
//! outgoing one, and boxing is what lets UMC hand the fabric over to
//! CFI mid-run.

use flexcore::ext::{Bc, Cfi, CfiTable, Dift, Extension, Mprot, Nop, Sec, Umc};
use flexcore::obs::TraceSink;
use flexcore::{SwapPolicy, SwapRequest, System};
use flexcore_analysis::cfi_edges;
use flexcore_asm::Program;
use flexcore_fabric::{map_to_luts, to_bitstream};

/// LUT input width used everywhere a netlist is technology-mapped
/// (matches the recovery ladder's bitstream-reload rung).
pub const LUT_K: usize = 6;

/// The lowercase names [`build_extension`] accepts, in presentation
/// order.
pub const SWAPPABLE: [&str; 7] = ["umc", "dift", "bc", "sec", "mprot", "cfi", "nop"];

/// Builds the CFI edge table for `program` from the statically
/// recovered CFG (see [`flexcore_analysis::cfi_edges`]).
pub fn cfi_table_for(program: &Program) -> CfiTable {
    let edges = cfi_edges(program);
    let mut table = CfiTable::new();
    for &(from, to) in &edges.branch_edges {
        table.allow_branch(from, to);
    }
    for &target in &edges.call_targets {
        table.allow_call(target);
    }
    for &site in &edges.return_sites {
        table.allow_return(site);
    }
    table
}

/// Builds a boxed extension from its lowercase name. CFI is programmed
/// with the edge table recovered from `program`; every other extension
/// ignores the program. Returns `None` for an unknown name.
pub fn build_extension(name: &str, program: &Program) -> Option<Box<dyn Extension>> {
    Some(match name {
        "umc" => Box::new(Umc::new()),
        "dift" => Box::new(Dift::new()),
        "bc" => Box::new(Bc::new()),
        "sec" => Box::new(Sec::new()),
        "mprot" => Box::new(Mprot::new()),
        "cfi" => Box::new(Cfi::new(cfi_table_for(program))),
        "nop" => Box::new(Nop::new()),
        _ => return None,
    })
}

/// The serialized bitstream that programs `ext`'s datapath: its netlist
/// technology-mapped at [`LUT_K`] and serialized with the framed codec.
pub fn bitstream_for(ext: &dyn Extension) -> Vec<u8> {
    to_bitstream(&map_to_luts(&ext.netlist(), LUT_K))
}

/// One parsed `--swap-at COMMIT:ext` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapPoint {
    /// Commit boundary the swap fires at.
    pub at_commit: u64,
    /// Lowercase target-extension name (one of [`SWAPPABLE`]).
    pub to: String,
    /// State carry-over policy (append `:carry` to opt in).
    pub policy: SwapPolicy,
}

impl SwapPoint {
    /// Parses `COMMIT:ext` or `COMMIT:ext:carry`.
    pub fn parse(s: &str) -> Result<SwapPoint, String> {
        let mut parts = s.split(':');
        let at = parts.next().unwrap_or_default();
        let at_commit: u64 =
            at.parse().map_err(|_| format!("`{s}`: expected COMMIT:ext, got commit `{at}`"))?;
        let to = parts.next().ok_or_else(|| format!("`{s}`: expected COMMIT:ext"))?.to_string();
        if !SWAPPABLE.contains(&to.as_str()) {
            return Err(format!(
                "`{s}`: unknown extension `{to}` (one of {})",
                SWAPPABLE.join(" ")
            ));
        }
        let policy = match parts.next() {
            None => SwapPolicy::Reset,
            Some("carry") => SwapPolicy::Carry,
            Some("reset") => SwapPolicy::Reset,
            Some(other) => return Err(format!("`{s}`: unknown policy `{other}` (reset|carry)")),
        };
        if parts.next().is_some() {
            return Err(format!("`{s}`: trailing fields after COMMIT:ext[:policy]"));
        }
        Ok(SwapPoint { at_commit, to, policy })
    }
}

/// Schedules `point` on a boxed-extension system: builds the incoming
/// extension and its bitstream and files the [`SwapRequest`].
pub fn schedule<S: TraceSink>(
    sys: &mut System<Box<dyn Extension>, S>,
    point: &SwapPoint,
    program: &Program,
) -> Result<(), String> {
    let ext = build_extension(&point.to, program)
        .ok_or_else(|| format!("unknown extension `{}`", point.to))?;
    let bitstream = bitstream_for(ext.as_ref());
    sys.schedule_swap(SwapRequest {
        at_commit: point.at_commit,
        bitstream,
        ext,
        policy: point.policy,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    fn program() -> Program {
        assemble("start: call fn1\n nop\n ta 0\n fn1: retl\n nop").expect("assembles")
    }

    #[test]
    fn every_swappable_name_builds_and_serializes() {
        let p = program();
        for name in SWAPPABLE {
            let ext = build_extension(name, &p).expect(name);
            assert!(!bitstream_for(ext.as_ref()).is_empty(), "{name} bitstream");
        }
        assert!(build_extension("sdram", &p).is_none());
    }

    #[test]
    fn cfi_table_covers_the_recovered_edges() {
        let table = cfi_table_for(&program());
        let (_, calls, rets) = table.len();
        assert!(calls >= 2, "fn1 + entry: {:?}", table.len());
        assert_eq!(rets, 1);
    }

    #[test]
    fn swap_point_syntax_round_trips() {
        assert_eq!(
            SwapPoint::parse("500:cfi").expect("parses"),
            SwapPoint { at_commit: 500, to: "cfi".into(), policy: SwapPolicy::Reset }
        );
        assert_eq!(SwapPoint::parse("1:umc:carry").expect("parses").policy, SwapPolicy::Carry);
        assert!(SwapPoint::parse("cfi").is_err());
        assert!(SwapPoint::parse("12:tpu").is_err());
        assert!(SwapPoint::parse("12:cfi:often").is_err());
    }
}
