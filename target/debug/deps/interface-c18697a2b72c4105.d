/root/repo/target/debug/deps/interface-c18697a2b72c4105.d: tests/interface.rs

/root/repo/target/debug/deps/interface-c18697a2b72c4105: tests/interface.rs

tests/interface.rs:
