//! Shared simulation runners for the table/figure binaries.

use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::{System, SystemConfig};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason};
use flexcore_workloads::Workload;

/// Instruction budget per simulation (well above any workload's need;
/// hitting it is treated as a failed run).
pub const MAX_INSTRUCTIONS: u64 = 200_000_000;

/// Which extension to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtKind {
    /// Uninitialized memory check.
    Umc,
    /// Dynamic information flow tracking.
    Dift,
    /// Array bound check.
    Bc,
    /// Soft error check.
    Sec,
}

impl ExtKind {
    /// The four extensions in the paper's column order.
    pub const ALL: [ExtKind; 4] = [ExtKind::Umc, ExtKind::Dift, ExtKind::Bc, ExtKind::Sec];

    /// Paper column name.
    pub fn name(self) -> &'static str {
        match self {
            ExtKind::Umc => "UMC",
            ExtKind::Dift => "DIFT",
            ExtKind::Bc => "BC",
            ExtKind::Sec => "SEC",
        }
    }

    /// The fabric clock divisor the paper uses for this extension
    /// (§V.C: UMC/DIFT/BC at 0.5X, SEC at 0.25X).
    pub fn paper_divisor(self) -> u32 {
        match self {
            ExtKind::Sec => 4,
            _ => 2,
        }
    }
}

/// Condensed result of one monitored run.
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instret: u64,
    /// Fraction of committed instructions forwarded to the fabric.
    pub forwarded_fraction: f64,
    /// Meta-data cache miss ratio.
    pub meta_miss_ratio: f64,
    /// Commit-stall cycles from FIFO back-pressure.
    pub fifo_stall_cycles: u64,
}

/// Runs `workload` on the bare Leon3 model and returns its cycle count.
///
/// # Panics
///
/// Panics if the workload fails its self-check (a reproduction bug).
pub fn baseline_cycles(workload: &Workload) -> u64 {
    let program = workload.program().expect("workload assembles");
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    let exit = core.run(&mut mem, &mut bus, MAX_INSTRUCTIONS);
    assert_eq!(exit, ExitReason::Halt(0), "{} baseline failed", workload.name());
    core.quiesced_at()
}

fn summarize<E: flexcore::Extension>(
    workload: &Workload,
    config: SystemConfig,
    ext: E,
) -> RunSummary {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(config, ext);
    sys.load_program(&program);
    let r = sys.run(MAX_INSTRUCTIONS);
    assert_eq!(
        r.exit,
        ExitReason::Halt(0),
        "{} under monitoring failed: {:?} / {:?}",
        workload.name(),
        r.exit,
        r.monitor_trap
    );
    RunSummary {
        cycles: r.cycles,
        instret: r.instret,
        forwarded_fraction: r.forward.forwarded_fraction(),
        meta_miss_ratio: r.meta_cache.miss_ratio(),
        fifo_stall_cycles: r.forward.fifo_stall_cycles,
    }
}

/// Runs `workload` under `ext` with the given system configuration.
///
/// # Panics
///
/// Panics if the workload fails its self-check or the monitor raises a
/// spurious trap (either is a reproduction bug — the workloads are
/// benign).
pub fn run_extension(workload: &Workload, ext: ExtKind, config: SystemConfig) -> RunSummary {
    match ext {
        ExtKind::Umc => summarize(workload, config, Umc::new()),
        ExtKind::Dift => summarize(workload, config, Dift::new()),
        ExtKind::Bc => summarize(workload, config, Bc::new()),
        ExtKind::Sec => summarize(workload, config, Sec::new()),
    }
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_divisors() {
        assert_eq!(ExtKind::Umc.paper_divisor(), 2);
        assert_eq!(ExtKind::Sec.paper_divisor(), 4);
    }
}
