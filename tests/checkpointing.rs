//! Checkpoint/restore round-trips and lockstep golden-model checking.
//!
//! The headline invariants:
//!
//! * A run interrupted at *any* commit boundary, snapshotted through
//!   JSON, and restored into a freshly built system finishes with a
//!   [`RunResult`] bit-identical to the uninterrupted run — on every
//!   paper workload, with or without an armed fault campaign.
//! * An injected architectural fault under lockstep surfaces as
//!   [`SimError::Divergence`] with a populated report, while
//!   monitoring-path corruption (which touches no architectural state)
//!   does not.

use std::sync::OnceLock;

use flexcore_suite::flexcore::checkpoint::Snapshot;
use flexcore_suite::flexcore::ext::Umc;
use flexcore_suite::flexcore::faults::{FaultModel, FaultPlan, FaultSchedule, FaultTarget};
use flexcore_suite::flexcore::{RunOutcome, RunResult, SimError, System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use flexcore_suite::workloads::Workload;
use proptest::prelude::*;

const MAX_INSTRUCTIONS: u64 = 50_000_000;

fn fresh(w: &Workload) -> System<Umc> {
    let program = w.program().unwrap_or_else(|e| panic!("{} assembles: {e}", w.name()));
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    sys
}

/// Uninterrupted reference results, one per paper workload, computed
/// once and shared across proptest cases.
fn reference(idx: usize) -> &'static RunResult {
    static REFS: OnceLock<Vec<RunResult>> = OnceLock::new();
    &REFS.get_or_init(|| {
        Workload::all()
            .iter()
            .map(|w| fresh(w).try_run(MAX_INSTRUCTIONS).expect("uninterrupted run"))
            .collect()
    })[idx]
}

/// Interrupts a fresh run of workload `idx` after about `frac` of its
/// commits, round-trips the snapshot through JSON, restores it into
/// another fresh system, and returns the resumed run's result.
fn interrupt_and_resume(idx: usize, frac: f64) -> RunResult {
    let w = &Workload::all()[idx];
    let pause = (reference(idx).instret as f64 * frac) as u64;
    let mut first = fresh(w);
    match first.try_run_until(MAX_INSTRUCTIONS, pause).expect("run to the pause point") {
        RunOutcome::Paused { instret, .. } => assert!(instret >= pause),
        RunOutcome::Done(r) => panic!("finished before the pause point: {:?}", r.exit),
    }
    let snap = first.snapshot();
    let json = snap.to_json();
    let parsed = Snapshot::from_json(&json).expect("checkpoint JSON parses");
    assert_eq!(parsed, snap, "snapshot survives the JSON round-trip");
    let mut resumed = fresh(w);
    resumed.restore(&parsed).expect("snapshot restores into an identically built system");
    resumed.try_run(MAX_INSTRUCTIONS).expect("resumed run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interrupt each workload at a random point; the resumed run's
    /// result must be bit-identical to the uninterrupted run's.
    #[test]
    fn interrupted_run_reproduces_uninterrupted_result(
        idx in 0usize..6,
        frac_ppm in 20_000u64..980_000,
    ) {
        prop_assert_eq!(&interrupt_and_resume(idx, frac_ppm as f64 / 1e6), reference(idx));
    }
}

/// Every workload survives at least one interrupt point (the proptest
/// above samples; this pins full coverage of the six kernels).
#[test]
fn every_workload_round_trips_at_the_midpoint() {
    for idx in 0..Workload::all().len() {
        assert_eq!(
            &interrupt_and_resume(idx, 0.5),
            reference(idx),
            "{} diverged after restore",
            Workload::all()[idx].name()
        );
    }
}

/// Checkpointing composes with an armed fault campaign: the injector's
/// generator position rides along, so the resumed run replays the
/// exact same strikes.
#[test]
fn checkpoint_preserves_fault_campaign_determinism() {
    let w = Workload::bitcount();
    let plan = || {
        FaultPlan::new(0xf1e2)
            .inject(
                FaultTarget::FifoPacket,
                FaultSchedule::EveryCommits(977),
                FaultModel::BitFlip { bits: 1 },
            )
            .inject(
                FaultTarget::Register,
                FaultSchedule::AtCommit(12_345),
                FaultModel::BitFlip { bits: 1 },
            )
    };
    let mut full = fresh(&w);
    full.arm_faults(plan());
    let full = full.try_run(MAX_INSTRUCTIONS).expect("faulted run completes");
    assert!(full.resilience.faults_injected > 0, "the campaign fired");

    let mut first = fresh(&w);
    first.arm_faults(plan());
    let pause = full.instret / 3;
    match first.try_run_until(MAX_INSTRUCTIONS, pause).expect("run to the pause point") {
        RunOutcome::Paused { .. } => {}
        RunOutcome::Done(r) => panic!("finished before the pause point: {:?}", r.exit),
    }
    let snap = first.snapshot();
    assert!(snap.faults.is_some(), "injector state rides in the snapshot");

    let mut resumed = fresh(&w);
    resumed.arm_faults(plan());
    resumed.restore(&snap).expect("restore with the re-armed plan");
    let resumed = resumed.try_run(MAX_INSTRUCTIONS).expect("resumed faulted run");
    assert_eq!(resumed, full, "fault campaign diverged after restore");
}

/// Restoring requires the same construction: a missing fault plan is a
/// typed error, not silent corruption.
#[test]
fn restore_rejects_mismatched_construction() {
    let w = Workload::bitcount();
    let mut sys = fresh(&w);
    sys.arm_faults(FaultPlan::new(1).inject(
        FaultTarget::FifoPacket,
        FaultSchedule::EveryCommits(1000),
        FaultModel::BitFlip { bits: 1 },
    ));
    match sys.try_run_until(MAX_INSTRUCTIONS, 1000).expect("run to the pause point") {
        RunOutcome::Paused { .. } => {}
        RunOutcome::Done(_) => panic!("finished before the pause point"),
    }
    let snap = sys.snapshot();

    let mut unarmed = fresh(&w);
    let err = unarmed.restore(&snap).expect_err("fault state with no armed plan must fail");
    assert!(err.to_string().contains("fault"), "unhelpful error: {err}");

    let mut wrong_depth =
        System::<Umc>::new(SystemConfig::fabric_half_speed().with_fifo_depth(8), Umc::new());
    wrong_depth.load_program(&w.program().expect("assembles"));
    let err = wrong_depth.restore(&snap).expect_err("mismatched FIFO depth must fail");
    assert!(err.to_string().contains("depth"), "unhelpful error: {err}");
}

/// A small all-ALU kernel where commit `4 + 4k` is always the `add`
/// with a live destination register — a deterministic divergence site.
fn alu_loop_source() -> &'static str {
    "start:  mov 0, %o0
            set 100, %o1
    loop:   add %o0, 1, %o0
            subcc %o1, 1, %o1
            bne loop
            nop
            ta 0"
}

fn alu_system() -> System<Umc> {
    let program = flexcore_suite::asm::assemble(alu_loop_source()).expect("assembles");
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    sys
}

/// The acceptance criterion: an injected pipeline fault under
/// `--lockstep` yields `SimError::Divergence` with a populated report.
#[test]
fn injected_result_fault_diverges_under_lockstep() {
    let mut sys = alu_system();
    sys.enable_lockstep();
    // Commit 40 is an `add %o0, 1, %o0`: flip bit 3 of its result.
    sys.inject_result_fault(40, 3);
    match sys.try_run(MAX_INSTRUCTIONS) {
        Err(SimError::Divergence(report)) => {
            assert_eq!(report.commit_index, 40, "caught at the faulted commit");
            assert_eq!(report.reason, "register file diverged (first at r8)", "{report}");
            let m = report.reg_mismatches.first().expect("a register mismatch is recorded");
            assert_eq!(m.dut ^ m.golden, 1 << 3, "exactly the injected bit differs");
            assert!(!report.dut_recent.is_empty(), "recent DUT commits are included");
            assert!(!report.golden_recent.is_empty(), "recent golden commits are included");
            assert_eq!(
                report.dut_recent.last().map(|c| c.index),
                Some(40),
                "the divergent commit is the newest ring entry"
            );
        }
        other => panic!("expected a divergence, got {other:?}"),
    }
}

/// Monitoring-path corruption (an FFIFO packet strike) touches no
/// architectural state, so lockstep must stay quiet — that separation
/// is the point of checking at the architectural level.
#[test]
fn monitoring_path_corruption_does_not_diverge() {
    let mut sys = alu_system();
    sys.enable_lockstep();
    sys.arm_faults(FaultPlan::new(3).inject(
        FaultTarget::FifoPacket,
        FaultSchedule::AtCommit(40),
        FaultModel::BitFlip { bits: 2 },
    ));
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("no divergence from a packet strike");
    assert_eq!(r.exit, ExitReason::Halt(0));
    assert_eq!(r.resilience.packets_corrupted, 1, "the strike did land");
}

/// Lockstep agrees with the cycle-level core across a full workload
/// (the golden model and the pipeline implement the same ISA).
#[test]
fn lockstep_agrees_across_a_full_workload() {
    let mut sys = fresh(&Workload::bitcount());
    sys.enable_lockstep();
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("no divergence");
    assert_eq!(r.exit, ExitReason::Halt(0), "workload self-check");
    let checked = sys.lockstep().expect("checker installed").commits_checked();
    assert_eq!(checked, r.forward.committed, "every commit was checked");
    assert!(checked > 50_000, "a non-trivial run: {checked} commits");
}

/// Lockstep survives a checkpoint/restore cycle: the golden model is
/// re-seeded from the restored state and keeps agreeing.
#[test]
fn lockstep_resynchronizes_after_restore() {
    let mut first = fresh(&Workload::sha());
    first.enable_lockstep();
    match first.try_run_until(MAX_INSTRUCTIONS, 10_000).expect("run to the pause point") {
        RunOutcome::Paused { .. } => {}
        RunOutcome::Done(_) => panic!("finished before the pause point"),
    }
    let snap = first.snapshot();

    let mut resumed = fresh(&Workload::sha());
    resumed.enable_lockstep();
    resumed.restore(&snap).expect("restore re-seeds the checker");
    let r = resumed.try_run(MAX_INSTRUCTIONS).expect("no divergence after restore");
    assert_eq!(r.exit, ExitReason::Halt(0));
    assert_eq!(&r, reference(0), "sha is Workload::all()[0]");
}
