/root/repo/target/debug/deps/table1-6a5e08d9f0c7f317.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-6a5e08d9f0c7f317.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
