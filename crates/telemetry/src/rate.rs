//! Rate + ETA arithmetic for campaign progress lines.
//!
//! `faultsweep` and `flexserve` print a progress line per finished
//! batch; this module turns (done, total, elapsed) into the
//! `"12.3 trials/s  eta 0:41"` column they append. Formatting is kept
//! here so both binaries render identically, and so the arithmetic is
//! testable without a real clock: the meter reads a monotonic clock by
//! default but every computation takes explicit elapsed seconds
//! underneath.

use std::time::Instant;

/// Measures throughput against a monotonic start point.
#[derive(Clone, Copy, Debug)]
pub struct RateMeter {
    started: Instant,
}

impl Default for RateMeter {
    fn default() -> Self {
        Self::start()
    }
}

impl RateMeter {
    /// Starts the clock.
    pub fn start() -> Self {
        RateMeter { started: Instant::now() }
    }

    /// Seconds since the meter started.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Completed units per second so far (0.0 until time has passed).
    pub fn rate(&self, done: u64) -> f64 {
        rate_of(done, self.elapsed_secs())
    }

    /// Estimated seconds to finish the remaining units at the current
    /// rate; `None` until at least one unit is done.
    pub fn eta_secs(&self, done: u64, total: u64) -> Option<f64> {
        eta_of(done, total, self.elapsed_secs())
    }

    /// The progress-line column: `"12.3/s eta 0:41"`, degrading to
    /// `"--/s eta --:--"` before the first completion.
    pub fn progress_column(&self, done: u64, total: u64) -> String {
        format_progress(done, total, self.elapsed_secs())
    }
}

/// Below this much observed time the meter has no rate worth
/// extrapolating: `done / elapsed` explodes toward infinity as
/// `elapsed → 0`, turning the first instants of a campaign (or a
/// journal-resume burst that replays thousands of records in
/// microseconds) into a nonsense "billions per second, eta 0:00"
/// line. The daemon's idle heartbeat leans on this guard: it renders
/// `None` as `--/s eta --:--` instead of inventing a number.
pub const MIN_MEASURABLE_SECS: f64 = 1e-3;

/// `done / elapsed`, 0.0 until at least [`MIN_MEASURABLE_SECS`] has
/// passed (a just-started meter has no meaningful rate).
pub fn rate_of(done: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs < MIN_MEASURABLE_SECS {
        0.0
    } else {
        done as f64 / elapsed_secs
    }
}

/// Remaining time at the observed rate. `None` when there is no rate
/// to extrapolate — nothing done yet, the meter just started
/// (`elapsed < MIN_MEASURABLE_SECS`), or a degenerate zero/non-finite
/// rate; `done >= total` maps to `Some(0.0)`.
pub fn eta_of(done: u64, total: u64, elapsed_secs: f64) -> Option<f64> {
    if done == 0 {
        return None;
    }
    if done >= total {
        return Some(0.0);
    }
    let rate = rate_of(done, elapsed_secs);
    if rate <= 0.0 || !rate.is_finite() {
        return None;
    }
    Some((total - done) as f64 / rate)
}

/// Renders seconds as `m:ss` (or `h:mm:ss` past the hour).
pub fn format_eta(secs: f64) -> String {
    let s = secs.max(0.0).round() as u64;
    if s >= 3600 {
        format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
    } else {
        format!("{}:{:02}", s / 60, s % 60)
    }
}

/// The full rate + ETA column both binaries print.
pub fn format_progress(done: u64, total: u64, elapsed_secs: f64) -> String {
    match eta_of(done, total, elapsed_secs) {
        Some(eta) => format!("{:.1}/s eta {}", rate_of(done, elapsed_secs), format_eta(eta)),
        None => "--/s eta --:--".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_eta_arithmetic() {
        assert_eq!(rate_of(10, 2.0), 5.0);
        assert_eq!(rate_of(10, 0.0), 0.0);
        assert_eq!(eta_of(0, 100, 5.0), None);
        assert_eq!(eta_of(100, 100, 5.0), Some(0.0));
        // 25 done in 5s -> 5/s -> 75 remaining -> 15s.
        assert_eq!(eta_of(25, 100, 5.0), Some(15.0));
    }

    #[test]
    fn just_started_meter_reports_no_rate_and_no_eta() {
        // A burst of journal-replayed records lands before the clock
        // has measurably moved: extrapolating would claim billions/s
        // and eta 0:00 for work that has not actually started.
        assert_eq!(rate_of(10_000, 0.0), 0.0);
        assert_eq!(rate_of(10_000, 1e-9), 0.0, "sub-threshold elapsed has no rate");
        assert_eq!(eta_of(10_000, 20_000, 1e-9), None, "no nonsense eta at startup");
        assert_eq!(eta_of(5, 10, 0.0), None);
        // The rendered column degrades instead of inventing a number.
        assert_eq!(format_progress(10_000, 20_000, 1e-9), "--/s eta --:--");
        // The guard lifts as soon as real time has passed.
        assert!(eta_of(5, 10, MIN_MEASURABLE_SECS).is_some());
    }

    #[test]
    fn formatting_degrades_gracefully() {
        assert_eq!(format_progress(0, 100, 1.0), "--/s eta --:--");
        assert_eq!(format_progress(25, 100, 5.0), "5.0/s eta 0:15");
        assert_eq!(format_eta(59.4), "0:59");
        assert_eq!(format_eta(61.0), "1:01");
        assert_eq!(format_eta(3661.0), "1:01:01");
    }

    #[test]
    fn meter_tracks_wall_clock() {
        let m = RateMeter::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(m.elapsed_secs() > 0.0);
        assert!(m.rate(100) > 0.0);
        assert!(m.eta_secs(50, 100).is_some());
        assert!(m.progress_column(50, 100).contains("eta"));
    }
}
