//! Typed diagnostics shared by the software and hardware passes.

use std::fmt;

/// How serious a finding is.
///
/// `flexcheck` (and CI) fail only on [`Severity::Error`]; warnings and
/// notes are reported and archived in the findings artifact but do not
/// gate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational: stylistic or redundancy observations.
    Info,
    /// Suspicious but not provably wrong (or intentionally tolerated).
    Warning,
    /// A property violation the artifact must not ship with.
    Error,
}

impl Severity {
    /// Lowercase name as it appears in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which check produced a diagnostic.
///
/// Software rules analyze assembled [`Program`](flexcore_asm::Program)
/// images; rules prefixed `Nl` analyze
/// [`Netlist`](flexcore_fabric::Netlist)s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rule {
    /// A register is read on some path before any instruction writes
    /// it (the static counterpart of the UMC extension's
    /// uninitialized-read trap).
    UninitRead,
    /// A conditional branch or trap evaluates the condition codes
    /// before any `cc`-setting instruction ran.
    UninitIcc,
    /// A control-transfer instruction sits in the delay slot of
    /// another CTI (unpredictable on SPARC V8).
    DelaySlotCti,
    /// The delay slot of `ba,a` holds a non-`nop` instruction that is
    /// always annulled — dead code.
    AnnulledSlotDead,
    /// A conditional branch annuls a delay slot that holds only `nop`;
    /// the annul bit buys nothing.
    UselessAnnul,
    /// A branch targets the delay slot of another CTI.
    BranchIntoDelaySlot,
    /// Decodable instructions that no control-flow path reaches.
    UnreachableCode,
    /// A branch or call target falls outside the loaded image.
    TargetOutOfImage,
    /// Execution can run past the end of the image or into a word
    /// that does not decode.
    FallsOffImage,
    /// `restore` executes with no `save` outstanding.
    RestoreUnderflow,
    /// A join point is reached with differing save/restore depths.
    WindowImbalance,
    /// The program halts with a `save` still open.
    OpenWindowAtHalt,
    /// A store whose statically-known address lies outside the image,
    /// the stack region, and the meta-data region.
    StoreOutOfImage,
    /// A store whose statically-known address overwrites reachable
    /// code (self-modifying code).
    StoreOverCode,
    /// A load whose statically-known address lies outside every region
    /// that is initialized at program load — UMC will trap on it.
    LoadOutOfImage,
    /// A register write whose value is never read (liveness).
    DeadWrite,
    /// An indirect jump whose target the analysis cannot resolve.
    IndirectJump,
    /// An indirect jump whose target register provably carries
    /// input-derived taint on every path (the static counterpart of
    /// the DIFT extension's tainted-jump trap).
    TaintedJump,
    /// A store whose data register provably carries input-derived
    /// taint on every path (taint escaping to memory).
    TaintedStore,
    /// A netlist gate references a net index past the gate array.
    NlDanglingRef,
    /// A combinational cycle (excluding the legal DFF self-loop hold).
    NlCombLoop,
    /// A DFF whose data input was never connected (it holds reset
    /// forever — legal for config registers, suspicious elsewhere).
    NlUnconnectedDff,
    /// Combinational gates unreachable backwards from any primary
    /// output or flop data input.
    NlDeadLogic,
    /// A primary input that no output cone reads.
    NlFloatingInput,
    /// Two primary outputs share a name (multiply-driven at the
    /// word level).
    NlDuplicateOutput,
    /// A mapped LUT is wider than K or its truth table is missized.
    NlLutWidth,
    /// The bitstream round-trip or LUT-network evaluation disagrees
    /// with the source netlist.
    NlBitstreamMismatch,
}

impl Rule {
    /// Stable kebab-case rule id (used in JSON artifacts).
    pub fn id(self) -> &'static str {
        match self {
            Rule::UninitRead => "uninit-read",
            Rule::UninitIcc => "uninit-icc",
            Rule::DelaySlotCti => "delay-slot-cti",
            Rule::AnnulledSlotDead => "annulled-slot-dead",
            Rule::UselessAnnul => "useless-annul",
            Rule::BranchIntoDelaySlot => "branch-into-delay-slot",
            Rule::UnreachableCode => "unreachable-code",
            Rule::TargetOutOfImage => "target-out-of-image",
            Rule::FallsOffImage => "falls-off-image",
            Rule::RestoreUnderflow => "restore-underflow",
            Rule::WindowImbalance => "window-imbalance",
            Rule::OpenWindowAtHalt => "open-window-at-halt",
            Rule::StoreOutOfImage => "store-out-of-image",
            Rule::StoreOverCode => "store-over-code",
            Rule::LoadOutOfImage => "load-out-of-image",
            Rule::DeadWrite => "dead-write",
            Rule::IndirectJump => "indirect-jump",
            Rule::TaintedJump => "tainted-jump",
            Rule::TaintedStore => "tainted-store",
            Rule::NlDanglingRef => "nl-dangling-ref",
            Rule::NlCombLoop => "nl-comb-loop",
            Rule::NlUnconnectedDff => "nl-unconnected-dff",
            Rule::NlDeadLogic => "nl-dead-logic",
            Rule::NlFloatingInput => "nl-floating-input",
            Rule::NlDuplicateOutput => "nl-duplicate-output",
            Rule::NlLutWidth => "nl-lut-width",
            Rule::NlBitstreamMismatch => "nl-bitstream-mismatch",
        }
    }

    /// Default severity of this rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UninitRead
            | Rule::DelaySlotCti
            | Rule::TargetOutOfImage
            | Rule::FallsOffImage
            | Rule::RestoreUnderflow
            | Rule::StoreOutOfImage
            | Rule::LoadOutOfImage
            | Rule::NlDanglingRef
            | Rule::NlCombLoop
            | Rule::NlLutWidth
            | Rule::NlBitstreamMismatch => Severity::Error,
            Rule::UninitIcc
            | Rule::AnnulledSlotDead
            | Rule::BranchIntoDelaySlot
            | Rule::UnreachableCode
            | Rule::WindowImbalance
            | Rule::OpenWindowAtHalt
            | Rule::StoreOverCode
            | Rule::TaintedJump
            | Rule::NlDeadLogic
            | Rule::NlFloatingInput
            | Rule::NlDuplicateOutput => Severity::Warning,
            Rule::UselessAnnul
            | Rule::DeadWrite
            | Rule::IndirectJump
            | Rule::TaintedStore
            | Rule::NlUnconnectedDff => Severity::Info,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which check fired.
    pub rule: Rule,
    /// Severity (normally [`Rule::severity`]).
    pub severity: Severity,
    /// Program address (software rules) or net index (netlist rules),
    /// if the finding anchors to one.
    pub addr: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the rule's default severity.
    pub fn new(rule: Rule, addr: Option<u32>, message: impl Into<String>) -> Diagnostic {
        Diagnostic { rule, severity: rule.severity(), addr, message: message.into() }
    }

    /// Whether this finding gates `flexcheck`.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => {
                write!(f, "{}: {:#010x}: [{}] {}", self.severity, a, self.rule, self.message)
            }
            None => write!(f, "{}: [{}] {}", self.severity, self.rule, self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_and_severity() {
        let d = Diagnostic::new(Rule::UninitRead, Some(0x1000), "read of %l3");
        assert!(d.is_error());
        let s = d.to_string();
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("uninit-read"), "{s}");
        assert!(s.contains("0x00001000"), "{s}");
    }

    #[test]
    fn severity_ordering_gates_on_error() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert!(!Diagnostic::new(Rule::DeadWrite, None, "x").is_error());
    }
}
