//! Disassembly (`Display` for [`Instruction`]).

use std::fmt;

use crate::{Instruction, Opcode, Operand2};

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Reg(r) => write!(f, "{r}"),
            Operand2::Imm(i) => write!(f, "{i}"),
        }
    }
}

fn fmt_addr(f: &mut fmt::Formatter<'_>, rs1: crate::Reg, op2: Operand2) -> fmt::Result {
    match op2 {
        Operand2::Reg(r) if r.is_zero() => write!(f, "[{rs1}]"),
        Operand2::Imm(0) => write!(f, "[{rs1}]"),
        Operand2::Imm(i) if i < 0 => write!(f, "[{rs1} - {}]", -i),
        _ => write!(f, "[{rs1} + {op2}]"),
    }
}

impl fmt::Display for Instruction {
    /// Formats the instruction in SPARC assembler syntax.
    ///
    /// Branch and call displacements are printed as signed *byte*
    /// offsets (`be .+8`), since the instruction does not know its own
    /// address.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, op2 } => write!(f, "{op} {rs1}, {op2}, {rd}"),
            Instruction::Mem { op, rd, rs1, op2 } => {
                if op.is_store() {
                    write!(f, "{op} {rd}, ")?;
                    fmt_addr(f, rs1, op2)
                } else {
                    write!(f, "{op} ")?;
                    fmt_addr(f, rs1, op2)?;
                    write!(f, ", {rd}")
                }
            }
            Instruction::Sethi { rd, imm22 } => {
                if self.is_nop() {
                    write!(f, "nop")
                } else {
                    write!(f, "sethi {:#x}, {rd}", imm22)
                }
            }
            Instruction::Branch { cond, annul, disp22 } => {
                let a = if annul { ",a" } else { "" };
                let byte_off = disp22 * 4;
                if byte_off < 0 {
                    write!(f, "b{cond}{a} .-{}", -byte_off)
                } else {
                    write!(f, "b{cond}{a} .+{byte_off}")
                }
            }
            Instruction::Call { disp30 } => {
                let byte_off = disp30 * 4;
                if byte_off < 0 {
                    write!(f, "call .-{}", -byte_off)
                } else {
                    write!(f, "call .+{byte_off}")
                }
            }
            Instruction::Jmpl { rd, rs1, op2 } => {
                // Recognize the conventional pseudo-forms.
                if rd.is_zero() {
                    if rs1 == crate::Reg::I7 && op2 == Operand2::Imm(8) {
                        return write!(f, "ret");
                    }
                    if rs1 == crate::Reg::O7 && op2 == Operand2::Imm(8) {
                        return write!(f, "retl");
                    }
                }
                write!(f, "jmpl {rs1} + {op2}, {rd}")
            }
            Instruction::Trap { cond, rs1, op2 } => {
                if rs1.is_zero() {
                    write!(f, "t{cond} {op2}")
                } else {
                    write!(f, "t{cond} {rs1} + {op2}")
                }
            }
            Instruction::Cpop { space, opc, rd, rs1, rs2 } => {
                let name = if space == 1 { Opcode::Cpop1 } else { Opcode::Cpop2 };
                write!(f, "{name} {opc}, {rs1}, {rs2}, {rd}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg};

    #[test]
    fn alu_syntax() {
        let i = Instruction::alu(Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(4));
        assert_eq!(i.to_string(), "add %g1, 4, %g2");
        let j = Instruction::alu(Opcode::Xor, Reg::L0, Reg::L1, Operand2::Reg(Reg::L2));
        assert_eq!(j.to_string(), "xor %l0, %l2, %l1");
    }

    #[test]
    fn load_store_syntax() {
        let ld = Instruction::mem(Opcode::Ld, Reg::O0, Reg::SP, Operand2::Imm(4));
        assert_eq!(ld.to_string(), "ld [%sp + 4], %o0");
        let st = Instruction::mem(Opcode::St, Reg::O0, Reg::SP, Operand2::Imm(-8));
        assert_eq!(st.to_string(), "st %o0, [%sp - 8]");
        let ld0 = Instruction::mem(Opcode::Ldub, Reg::O0, Reg::G3, Operand2::Imm(0));
        assert_eq!(ld0.to_string(), "ldub [%g3], %o0");
    }

    #[test]
    fn branch_syntax() {
        let b = Instruction::Branch { cond: Cond::Ne, annul: true, disp22: -2 };
        assert_eq!(b.to_string(), "bne,a .-8");
        let ba = Instruction::Branch { cond: Cond::A, annul: false, disp22: 3 };
        assert_eq!(ba.to_string(), "ba .+12");
    }

    #[test]
    fn pseudo_instructions() {
        assert_eq!(Instruction::nop().to_string(), "nop");
        let ret = Instruction::Jmpl { rd: Reg::G0, rs1: Reg::I7, op2: Operand2::Imm(8) };
        assert_eq!(ret.to_string(), "ret");
        let retl = Instruction::Jmpl { rd: Reg::G0, rs1: Reg::O7, op2: Operand2::Imm(8) };
        assert_eq!(retl.to_string(), "retl");
    }

    #[test]
    fn trap_syntax() {
        let ta = Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) };
        assert_eq!(ta.to_string(), "ta 0");
    }

    #[test]
    fn cpop_syntax() {
        let c = Instruction::Cpop { space: 1, opc: 7, rd: Reg::O0, rs1: Reg::O1, rs2: Reg::O2 };
        assert_eq!(c.to_string(), "cpop1 7, %o1, %o2, %o0");
    }
}
