/root/repo/target/debug/deps/ablations-c40fcacddeeb5bd2.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-c40fcacddeeb5bd2.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
