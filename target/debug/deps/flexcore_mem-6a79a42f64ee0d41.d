/root/repo/target/debug/deps/flexcore_mem-6a79a42f64ee0d41.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-6a79a42f64ee0d41.rlib: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-6a79a42f64ee0d41.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/storebuf.rs:
