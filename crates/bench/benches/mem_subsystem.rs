//! Micro-benchmarks: the memory substrate (meta-data cache masked
//! writes, L1 timing-cache lookups, bus arbitration).

use flexcore_bench::microbench::Harness;
use flexcore_mem::{BusMaster, CacheConfig, MainMemory, MetaDataCache, SystemBus, TimingCache};

fn main() {
    let h = Harness::new();

    h.run("metacache_masked_writes_4k", || {
        let mut cache = MetaDataCache::new(CacheConfig::meta_default());
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut t = 0;
        for i in 0..4096u32 {
            let a = cache.write_masked(
                0x4000_0000 + (i % 2048) * 4,
                i,
                1 << (i % 32),
                &mut mem,
                &mut bus,
                BusMaster::Fabric,
                t,
            );
            t = a.ready_at;
        }
        t
    });

    h.run("l1_lookups_16k", || {
        let mut cache = TimingCache::new(CacheConfig::l1_default());
        let mut hits = 0u64;
        for i in 0..16384u32 {
            if cache.access(i.wrapping_mul(68) & 0xffff, i % 4 == 0).hit {
                hits += 1;
            }
        }
        hits
    });

    h.run("bus_transfers_8k", || {
        let mut bus = SystemBus::default();
        let mut t = 0u64;
        for i in 0..8192 {
            let m = if i % 3 == 0 { BusMaster::Fabric } else { BusMaster::Core };
            t = bus.transfer(m, t.saturating_sub(10), 8);
        }
        t
    });
}
