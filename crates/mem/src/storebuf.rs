//! Write-through store buffer.

use std::collections::VecDeque;

/// The core's write buffer for write-through stores.
///
/// Leon3's write-through L1 sends every store to memory; a small store
/// buffer hides that latency as long as it has free slots. A store
/// issued while the buffer is full stalls the core until the oldest
/// pending store completes on the bus.
///
/// The model keeps the completion time of every in-flight store and
/// answers one question: *when may the core proceed past this store?*
///
/// # Example
///
/// ```
/// use flexcore_mem::StoreBuffer;
/// let mut buf = StoreBuffer::new(2);
/// assert_eq!(buf.push(0, 30), 0);   // slot free: proceed immediately
/// assert_eq!(buf.push(1, 60), 1);   // second slot
/// assert_eq!(buf.push(2, 90), 30);  // full: wait for the oldest store
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    depth: usize,
    pending: VecDeque<u64>,
    stall_cycles: u64,
}

impl StoreBuffer {
    /// Creates a buffer with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> StoreBuffer {
        assert!(depth > 0, "store buffer needs at least one entry");
        StoreBuffer { depth, pending: VecDeque::with_capacity(depth), stall_cycles: 0 }
    }

    /// Records a store issued at cycle `now` whose bus transfer
    /// completes at `done`, and returns the cycle at which the core may
    /// continue (`now` if a slot was free, later if the buffer was
    /// full).
    pub fn push(&mut self, now: u64, done: u64) -> u64 {
        // Retire stores that have already drained.
        while self.pending.front().is_some_and(|&d| d <= now) {
            self.pending.pop_front();
        }
        let proceed_at = if self.pending.len() < self.depth {
            now
        } else {
            let oldest = self.pending.pop_front().expect("buffer full implies nonempty");
            self.stall_cycles += oldest - now;
            oldest
        };
        self.pending.push_back(done);
        proceed_at
    }

    /// Cycle at which every pending store has drained (used before
    /// traps and at program end).
    pub fn drained_at(&self, now: u64) -> u64 {
        self.pending.back().copied().unwrap_or(now).max(now)
    }

    /// Total cycles the core has stalled on a full buffer.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Number of stores currently in flight at cycle `now`.
    pub fn in_flight(&self, now: u64) -> usize {
        self.pending.iter().filter(|&&d| d > now).count()
    }

    /// Completion times of every pending store, oldest first (for
    /// checkpointing).
    pub fn pending_completions(&self) -> Vec<u64> {
        self.pending.iter().copied().collect()
    }

    /// Restores the pending-store timeline and stall accounting
    /// captured by [`StoreBuffer::pending_completions`] /
    /// [`StoreBuffer::stall_cycles`]. The depth is construction state
    /// and is not changed.
    pub fn restore(&mut self, pending: &[u64], stall_cycles: u64) {
        self.pending.clear();
        self.pending.extend(pending.iter().copied());
        self.stall_cycles = stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proceeds_immediately_with_free_slots() {
        let mut b = StoreBuffer::new(4);
        for i in 0..4 {
            assert_eq!(b.push(i, 100 + i), i);
        }
        assert_eq!(b.stall_cycles(), 0);
    }

    #[test]
    fn full_buffer_stalls_until_oldest_drains() {
        let mut b = StoreBuffer::new(1);
        assert_eq!(b.push(0, 50), 0);
        assert_eq!(b.push(10, 80), 50);
        assert_eq!(b.stall_cycles(), 40);
    }

    #[test]
    fn drained_entries_free_slots() {
        let mut b = StoreBuffer::new(1);
        b.push(0, 50);
        // By cycle 60 the store has drained; no stall.
        assert_eq!(b.push(60, 90), 60);
        assert_eq!(b.stall_cycles(), 0);
    }

    #[test]
    fn drained_at_reports_last_completion() {
        let mut b = StoreBuffer::new(4);
        b.push(0, 30);
        b.push(0, 70);
        assert_eq!(b.drained_at(10), 70);
        assert_eq!(b.drained_at(100), 100);
    }

    #[test]
    fn in_flight_counts_unretired() {
        let mut b = StoreBuffer::new(4);
        b.push(0, 30);
        b.push(0, 70);
        assert_eq!(b.in_flight(10), 2);
        assert_eq!(b.in_flight(40), 1);
        assert_eq!(b.in_flight(80), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
