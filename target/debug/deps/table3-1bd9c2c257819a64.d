/root/repo/target/debug/deps/table3-1bd9c2c257819a64.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-1bd9c2c257819a64.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
