/root/repo/target/debug/deps/faultsweep-a9a334c39e29f1a8.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/libfaultsweep-a9a334c39e29f1a8.rmeta: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
