//! Partial-reconfiguration regions and bitstream segmentation.
//!
//! The paper programs the fabric once at boot, but its flexibility
//! story (and the LUTstructions / time-multiplexed-CGRA follow-ons)
//! depends on reprogramming the monitor *region* while the static
//! interface — FIFO, CFGR, meta-data port — keeps its configuration.
//! This module models that split: a whole-fabric bitstream is
//! segmented into fixed-size configuration frames, each carrying its
//! own Fletcher-32 checksum, and a [`PartialRegion`] walks the
//! `Blank → Loading → Programmed` state machine one frame at a time.
//! The half-loaded window is real state: a region that has accepted
//! some frames but not all of them is `Loading`, and any framing or
//! checksum error leaves it `Faulted` until it is explicitly blanked.
//!
//! [`verify_consistent`] is the swap-time counterpart of the flexcheck
//! netlist lint: it proves a deserialized LUT mapping is byte-for-byte
//! the mapping the current tech-mapper produces for a given netlist,
//! so a hot swap can never program logic that the static toolchain
//! would not have produced.

use std::fmt;

use crate::bitstream::fletcher32;
use crate::lutmap::LutMapping;
use crate::netlist::Netlist;
use crate::{from_bitstream, map_to_luts, to_bitstream};

/// Default configuration-frame payload size in bytes. Virtex-style
/// fabrics shift configuration in fixed-width frames; the exact width
/// only scales the frame count (and thus the modeled reconfiguration
/// time), so any power of two works.
pub const FRAME_BYTES: usize = 64;

/// One configuration frame of a segmented bitstream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Frame position within the stream (0-based).
    pub index: u32,
    /// Total number of frames in the stream this frame belongs to.
    pub total: u32,
    /// Raw payload bytes (all frames but the last carry exactly the
    /// segment size).
    pub payload: Vec<u8>,
    /// Fletcher-32 over the payload.
    pub checksum: u32,
}

/// Error while loading frames into a [`PartialRegion`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReconfigError {
    /// A frame arrived while the region was not in `Loading` state.
    NotLoading,
    /// A frame arrived out of sequence.
    OutOfOrder {
        /// Frame index the region expected next.
        expected: u32,
        /// Frame index that actually arrived.
        got: u32,
    },
    /// The frame's stored checksum does not match its payload.
    FrameChecksum {
        /// Index of the damaged frame.
        index: u32,
    },
    /// A frame disagrees about the total frame count.
    TotalMismatch,
    /// `commit` was called before every frame arrived.
    Incomplete {
        /// Frames loaded so far.
        loaded: u32,
        /// Frames the stream declared.
        total: u32,
    },
    /// The assembled bytes failed whole-bitstream validation.
    Bitstream(crate::BitstreamError),
    /// The programmed mapping does not match the netlist it claims to
    /// implement.
    Inconsistent(&'static str),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::NotLoading => f.write_str("region is not loading"),
            ReconfigError::OutOfOrder { expected, got } => {
                write!(f, "frame {got} arrived while frame {expected} was expected")
            }
            ReconfigError::FrameChecksum { index } => {
                write!(f, "frame {index} failed its checksum")
            }
            ReconfigError::TotalMismatch => f.write_str("frame disagrees about the frame count"),
            ReconfigError::Incomplete { loaded, total } => {
                write!(f, "only {loaded} of {total} frames loaded")
            }
            ReconfigError::Bitstream(e) => write!(f, "assembled bitstream invalid: {e}"),
            ReconfigError::Inconsistent(what) => {
                write!(f, "mapping inconsistent with netlist: {what}")
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Where a [`PartialRegion`] is in its reprogramming lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RegionState {
    /// No configuration loaded (power-on, or after
    /// [`PartialRegion::blank`]).
    #[default]
    Blank,
    /// Some frames accepted; the region's LUTs are half-programmed and
    /// must not be clocked.
    Loading,
    /// A complete, checksum-clean configuration is active.
    Programmed,
    /// A frame was rejected mid-load; the region holds garbage until
    /// blanked.
    Faulted,
}

/// Splits a whole-fabric bitstream into checksummed configuration
/// frames of at most `frame_bytes` payload bytes each. An empty
/// bitstream yields no frames.
pub fn segment_bitstream(bytes: &[u8], frame_bytes: usize) -> Vec<Frame> {
    let frame_bytes = frame_bytes.max(1);
    let total = bytes.len().div_ceil(frame_bytes) as u32;
    bytes
        .chunks(frame_bytes)
        .enumerate()
        .map(|(i, chunk)| Frame {
            index: i as u32,
            total,
            payload: chunk.to_vec(),
            checksum: fletcher32(chunk),
        })
        .collect()
}

/// A dynamically reprogrammable region of the fabric. The static
/// interface logic around it (FIFO, CFGR decode, meta-data port) is
/// not part of the region and survives every swap.
#[derive(Clone, Debug, Default)]
pub struct PartialRegion {
    state: RegionState,
    staged: Vec<u8>,
    next_frame: u32,
    total_frames: u32,
    programmed: Option<LutMapping>,
    /// Completed loads since construction.
    loads: u64,
}

impl PartialRegion {
    /// A blank region.
    pub fn new() -> PartialRegion {
        PartialRegion::default()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RegionState {
        self.state
    }

    /// Frames accepted in the load in progress.
    pub fn frames_loaded(&self) -> u32 {
        self.next_frame
    }

    /// Completed (committed) loads since construction.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// The active mapping, when programmed.
    pub fn mapping(&self) -> Option<&LutMapping> {
        self.programmed.as_ref()
    }

    /// Erases the region back to `Blank`, discarding any staged or
    /// programmed configuration. Always allowed — this is how a
    /// `Faulted` region recovers.
    pub fn blank(&mut self) {
        *self = PartialRegion { loads: self.loads, ..PartialRegion::default() };
    }

    /// Begins a new load of `total` frames. The previous configuration
    /// is gone the moment loading starts (the hardware shifts frames
    /// into live configuration memory), which is exactly why the system
    /// must quiesce before calling this.
    pub fn begin_load(&mut self, total: u32) {
        self.state = RegionState::Loading;
        self.staged.clear();
        self.next_frame = 0;
        self.total_frames = total;
        self.programmed = None;
    }

    /// Accepts the next configuration frame. Any rejection moves the
    /// region to `Faulted`.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<(), ReconfigError> {
        if self.state != RegionState::Loading {
            return Err(ReconfigError::NotLoading);
        }
        let fail = |region: &mut PartialRegion, e| {
            region.state = RegionState::Faulted;
            Err(e)
        };
        if frame.total != self.total_frames {
            return fail(self, ReconfigError::TotalMismatch);
        }
        if frame.index != self.next_frame {
            return fail(
                self,
                ReconfigError::OutOfOrder { expected: self.next_frame, got: frame.index },
            );
        }
        if fletcher32(&frame.payload) != frame.checksum {
            return fail(self, ReconfigError::FrameChecksum { index: frame.index });
        }
        self.staged.extend_from_slice(&frame.payload);
        self.next_frame += 1;
        Ok(())
    }

    /// Validates the fully loaded stream and activates it. On any error
    /// the region is `Faulted`.
    pub fn commit(&mut self) -> Result<&LutMapping, ReconfigError> {
        if self.state != RegionState::Loading {
            return Err(ReconfigError::NotLoading);
        }
        if self.next_frame != self.total_frames {
            self.state = RegionState::Faulted;
            return Err(ReconfigError::Incomplete {
                loaded: self.next_frame,
                total: self.total_frames,
            });
        }
        match from_bitstream(&self.staged) {
            Ok(mapping) => {
                self.programmed = Some(mapping);
                self.state = RegionState::Programmed;
                self.staged.clear();
                self.loads += 1;
                Ok(self.programmed.as_ref().expect("just programmed"))
            }
            Err(e) => {
                self.state = RegionState::Faulted;
                Err(ReconfigError::Bitstream(e))
            }
        }
    }
}

/// Proves `mapping` is exactly what the tech mapper produces for
/// `netlist` at the mapping's own LUT input width — the swap-time
/// consistency gate. Byte-level comparison through the bitstream codec
/// catches any divergence in truth tables, leaf lists, or depth.
pub fn verify_consistent(netlist: &Netlist, mapping: &LutMapping) -> Result<(), ReconfigError> {
    let reference = map_to_luts(netlist, mapping.k());
    if reference.lut_count() != mapping.lut_count() {
        return Err(ReconfigError::Inconsistent("LUT count differs from a fresh mapping"));
    }
    if reference.depth() != mapping.depth() {
        return Err(ReconfigError::Inconsistent("LUT depth differs from a fresh mapping"));
    }
    if to_bitstream(&reference) != to_bitstream(mapping) {
        return Err(ReconfigError::Inconsistent("bitstream bytes differ from a fresh mapping"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn small_mapping() -> (Netlist, LutMapping) {
        let mut b = NetlistBuilder::new("reconfig-test");
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let eq = b.eq(&x, &y);
        b.output("eq", eq);
        let n = b.finish();
        let m = map_to_luts(&n, 6);
        (n, m)
    }

    #[test]
    fn segment_and_reload_round_trips() {
        let (_, mapping) = small_mapping();
        let bytes = to_bitstream(&mapping);
        let frames = segment_bitstream(&bytes, 16);
        assert!(frames.len() > 1, "stream should span several frames");
        let mut region = PartialRegion::new();
        region.begin_load(frames.len() as u32);
        for f in &frames {
            assert_eq!(region.state(), RegionState::Loading);
            region.push_frame(f).unwrap();
        }
        let loaded = region.commit().unwrap();
        assert_eq!(to_bitstream(loaded), bytes);
        assert_eq!(region.state(), RegionState::Programmed);
        assert_eq!(region.loads(), 1);
    }

    #[test]
    fn every_frame_flip_is_rejected() {
        // The journal_crash idiom: damage every frame in turn and
        // assert the region never reaches Programmed with bad bytes.
        let (_, mapping) = small_mapping();
        let bytes = to_bitstream(&mapping);
        let frames = segment_bitstream(&bytes, 8);
        for damaged in 0..frames.len() {
            let mut region = PartialRegion::new();
            region.begin_load(frames.len() as u32);
            let mut failed = false;
            for (i, f) in frames.iter().enumerate() {
                let mut f = f.clone();
                if i == damaged {
                    f.payload[0] ^= 0x10;
                }
                if region.push_frame(&f).is_err() {
                    failed = true;
                    break;
                }
            }
            assert!(failed, "frame {damaged} damage went unnoticed");
            assert_eq!(region.state(), RegionState::Faulted);
            assert!(region.commit().is_err());
            region.blank();
            assert_eq!(region.state(), RegionState::Blank);
        }
    }

    #[test]
    fn out_of_order_and_partial_loads_fault() {
        let (_, mapping) = small_mapping();
        let bytes = to_bitstream(&mapping);
        let frames = segment_bitstream(&bytes, 8);
        assert!(frames.len() >= 3);

        let mut region = PartialRegion::new();
        region.begin_load(frames.len() as u32);
        region.push_frame(&frames[0]).unwrap();
        let err = region.push_frame(&frames[2]).unwrap_err();
        assert!(matches!(err, ReconfigError::OutOfOrder { expected: 1, got: 2 }));
        assert_eq!(region.state(), RegionState::Faulted);

        let mut region = PartialRegion::new();
        region.begin_load(frames.len() as u32);
        region.push_frame(&frames[0]).unwrap();
        let err = region.commit().unwrap_err();
        assert!(matches!(err, ReconfigError::Incomplete { loaded: 1, .. }));
    }

    #[test]
    fn consistency_gate_accepts_own_mapping_and_rejects_foreign() {
        let (netlist, mapping) = small_mapping();
        verify_consistent(&netlist, &mapping).unwrap();

        let mut b = NetlistBuilder::new("other");
        let x = b.input_bus(4);
        let r = b.reduce_or(&x);
        b.output("any", r);
        let other = b.finish();
        let other_map = map_to_luts(&other, 6);
        assert!(verify_consistent(&netlist, &other_map).is_err());
    }

    #[test]
    fn pushing_without_begin_load_is_rejected() {
        let (_, mapping) = small_mapping();
        let frames = segment_bitstream(&to_bitstream(&mapping), 8);
        let mut region = PartialRegion::new();
        assert!(matches!(region.push_frame(&frames[0]), Err(ReconfigError::NotLoading)));
    }
}
