//! Mid-run bitstream hot-swap invariants (runtime reconfiguration):
//!
//! * **Verdict equivalence at every commit boundary** — for kernels
//!   with a known monitor violation, a swap scheduled at *each*
//!   boundary of the run yields exactly the verdict of the
//!   statically-configured run from that boundary onward: the incoming
//!   extension's trap (bit-identical pc and reason) while the
//!   violation is still downstream of the swap, the outgoing run's
//!   clean architectural result once it is not.
//! * **Packet conservation** (property test) — a swap at *any*
//!   boundary never silently drops a forward-FIFO packet: every
//!   forwarded packet is either processed by an extension or counted
//!   in the suppressed-checks accounting.
//! * **Swap-window faults** — a corrupted bitstream transfer inside
//!   the swap window is absorbed by the retry machinery; retry
//!   exhaustion escalates through the recovery ladder, which replays
//!   the swap deterministically to the clean result.
//! * **Checkpoint/restore across the swap timeline** — a run
//!   interrupted before *or* after the swap boundary, snapshotted
//!   through JSON, and restored into a fresh system with the same
//!   swap re-scheduled finishes bit-identical to the uninterrupted
//!   swapped run.

use flexcore_suite::analysis::cfi_edges;
use flexcore_suite::asm::{assemble, Program};
use flexcore_suite::fabric::{map_to_luts, to_bitstream, Netlist, NetlistBuilder};
use flexcore_suite::flexcore::checkpoint::Snapshot;
use flexcore_suite::flexcore::ext::{
    Cfi, CfiTable, ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, Sec, Umc,
};
use flexcore_suite::flexcore::faults::{FaultModel, FaultPlan, FaultSchedule, FaultTarget};
use flexcore_suite::flexcore::recovery::{FaultOutcome, RecoveryPolicy, Supervisor};
use flexcore_suite::flexcore::{
    Cfgr, ForwardPolicy, RunOutcome, RunResult, SimError, SwapPolicy, SwapRequest, System,
    SystemConfig,
};
use flexcore_suite::pipeline::{ExitReason, TracePacket};
use proptest::prelude::*;

const MAX: u64 = 1_000_000;

/// CFI edge table recovered statically from the kernel's own CFG.
fn cfi_table(program: &Program) -> CfiTable {
    let edges = cfi_edges(program);
    let mut table = CfiTable::new();
    for &(from, to) in &edges.branch_edges {
        table.allow_branch(from, to);
    }
    for &target in &edges.call_targets {
        table.allow_call(target);
    }
    for &site in &edges.return_sites {
        table.allow_return(site);
    }
    table
}

fn bitstream_for(ext: &dyn Extension) -> Vec<u8> {
    to_bitstream(&map_to_luts(&ext.netlist(), 6))
}

/// A short kernel whose *last* control transfer is an indirect jump to
/// an address outside the recovered CFG's call/return whitelist: clean
/// under UMC (no loads), a CFI violation once CFI is armed.
fn cfi_violating_kernel() -> Program {
    assemble(
        "start:  mov 8, %l0
         loop:   subcc %l0, 1, %l0
                 bne loop
                 nop
                 set bad, %g1
                 jmpl %g1, %g0
                 nop
         bad:    ta 0",
    )
    .expect("kernel assembles")
}

/// A short kernel whose only load reads a never-initialized word
/// (outside the loaded image, which UMC counts as statically
/// initialized): clean under SEC (every ALU op re-executes fine), a
/// UMC violation. The kernel performs no stores, so UMC's verdict is
/// history-free and a late-armed UMC agrees with the static run.
fn uninit_load_kernel() -> Program {
    assemble(
        "start:  mov 6, %l0
                 set 0x30000, %g2
         loop:   subcc %l0, 1, %l0
                 bne loop
                 nop
                 ld [%g2 + 4], %g5
                 ta 0",
    )
    .expect("kernel assembles")
}

fn run_static(program: &Program, ext: Box<dyn Extension>) -> RunResult {
    let mut sys = System::new(SystemConfig::fabric_half_speed(), ext);
    sys.load_program(program);
    sys.try_run(MAX).expect("static run completes")
}

fn run_swapped(
    program: &Program,
    from: Box<dyn Extension>,
    to: Box<dyn Extension>,
    at_commit: u64,
) -> (RunResult, Vec<flexcore_suite::flexcore::SwapReport>) {
    let mut sys = System::new(SystemConfig::fabric_half_speed(), from);
    sys.load_program(program);
    let bitstream = bitstream_for(to.as_ref());
    sys.schedule_swap(SwapRequest { at_commit, bitstream, ext: to, policy: SwapPolicy::Reset });
    let r = sys.try_run(MAX).expect("swapped run completes");
    (r, sys.swap_reports().to_vec())
}

/// Sweeps the swap boundary over every commit of the kernel and checks
/// the verdict against the two static references: while the violation
/// commits *after* the swap the incoming extension must raise exactly
/// the static run's trap; once the swap lands at or past the violation
/// the run must finish with the outgoing run's clean architectural
/// result. The transition must be monotone (one threshold, no
/// flapping).
fn assert_boundary_sweep(
    program: &Program,
    mk_out: &dyn Fn() -> Box<dyn Extension>,
    mk_in: &dyn Fn() -> Box<dyn Extension>,
) {
    let static_out = run_static(program, mk_out());
    let static_in = run_static(program, mk_in());
    assert!(static_out.monitor_trap.is_none(), "outgoing extension runs this kernel clean");
    let trap = static_in.monitor_trap.clone().expect("incoming extension traps this kernel");

    let mut first_clean = None;
    for b in 1..=static_out.instret {
        let (r, reports) = run_swapped(program, mk_out(), mk_in(), b);
        match &r.monitor_trap {
            Some(t) => {
                assert!(
                    first_clean.is_none(),
                    "boundary {b}: trap after boundary {first_clean:?} ran clean"
                );
                assert_eq!(t, &trap, "boundary {b}: verdict must be bit-identical");
                assert!(
                    matches!(r.exit, ExitReason::MonitorTrap { pc } if pc == trap.pc),
                    "boundary {b}: exit {:?}",
                    r.exit
                );
            }
            None => {
                if first_clean.is_none() {
                    first_clean = Some(b);
                }
                assert_eq!(r.exit, static_out.exit, "boundary {b}");
                assert_eq!(r.instret, static_out.instret, "boundary {b}");
                assert_eq!(r.console, static_out.console, "boundary {b}");
            }
        }
        if let [report] = reports.as_slice() {
            assert_eq!(report.at_commit, b);
            assert_eq!(r.resilience.swaps_completed, 1, "boundary {b}");
        }
    }
    let threshold = first_clean.expect("a swap at the last boundary must miss the violation");
    assert!(threshold > 1, "a swap at the first boundary must still catch the violation");
}

#[test]
fn umc_to_cfi_swap_matches_static_verdicts_at_every_boundary() {
    let program = cfi_violating_kernel();
    let table = cfi_table(&program);
    assert_boundary_sweep(&program, &|| Box::new(Umc::new()), &|| {
        Box::new(Cfi::new(table.clone()))
    });
}

#[test]
fn sec_to_umc_swap_matches_static_verdicts_at_every_boundary() {
    let program = uninit_load_kernel();
    assert_boundary_sweep(&program, &|| Box::new(Sec::new()), &|| Box::new(Umc::new()));
}

/// Forwards every class and counts processed packets — the
/// conservation probe of the property test.
#[derive(Clone, Debug, Default)]
struct CountEveryPacket {
    processed: u64,
    suppressed: u64,
    bypassed: bool,
}

impl Extension for CountEveryPacket {
    fn name(&self) -> &'static str {
        "COUNT"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "COUNT",
            name: "packet conservation probe",
            meta_data: &[],
            transparent_ops: &["Count every forwarded packet"],
            sw_visible_ops: &[],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new().with_classes(|_| true, ForwardPolicy::Always)
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.processed, self.suppressed]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [processed, suppressed] = *state {
            self.processed = processed;
            self.suppressed = suppressed;
        }
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn process(
        &mut self,
        _pkt: &TracePacket,
        _env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        self.processed += 1;
        Ok(None)
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("count");
        let valid = b.input();
        let seen = b.register(valid);
        b.output("seen", seen);
        b.finish()
    }
}

/// A load/store loop that keeps the forward FIFO busy (~250 commits).
fn fifo_pressure_kernel() -> Program {
    assemble(
        "start:  mov 40, %l0
                 set 0x30000, %g7
         loop:   st %l0, [%g7]
                 ld [%g7], %l1
                 add %l1, %l0, %l2
                 subcc %l0, 1, %l0
                 bne loop
                 nop
                 ta 0",
    )
    .expect("kernel assembles")
}

fn conservation_reference() -> &'static RunResult {
    static REF: std::sync::OnceLock<RunResult> = std::sync::OnceLock::new();
    REF.get_or_init(|| {
        let program = fifo_pressure_kernel();
        let mut sys = System::new(SystemConfig::fabric_half_speed(), CountEveryPacket::default());
        sys.load_program(&program);
        sys.try_run(MAX).expect("reference run completes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A swap scheduled at any boundary, with any FIFO depth, never
    /// loses a packet: committed and forwarded counts match the
    /// swap-free reference, and every forwarded packet lands in the
    /// processed or suppressed-checks accounting. The carry policy
    /// transplants the probe's counters across the swap so the sum is
    /// observable end-to-end.
    #[test]
    fn swap_at_any_boundary_conserves_packets(boundary in 1u64..=300, depth in 2usize..=16) {
        let reference = conservation_reference();
        let program = fifo_pressure_kernel();
        let cfg = SystemConfig::fabric_half_speed().with_fifo_depth(depth);
        let mut sys = System::new(cfg, CountEveryPacket::default());
        sys.load_program(&program);
        sys.schedule_swap(SwapRequest {
            at_commit: boundary,
            bitstream: bitstream_for(&CountEveryPacket::default()),
            ext: CountEveryPacket::default(),
            policy: SwapPolicy::Carry,
        });
        let r = sys.try_run(MAX).expect("swapped run completes");
        prop_assert_eq!(r.exit, reference.exit);
        prop_assert_eq!(r.forward.committed, reference.forward.committed);
        prop_assert_eq!(r.forward.forwarded, reference.forward.forwarded);
        prop_assert_eq!(r.forward.dropped, 0);
        let ext = sys.extension();
        prop_assert_eq!(
            ext.processed + ext.suppressed,
            r.forward.forwarded,
            "every forwarded packet is processed or accounted (boundary {}, depth {})",
            boundary,
            depth
        );
        if boundary < r.instret {
            prop_assert_eq!(r.resilience.swaps_completed, 1);
            prop_assert!(
                r.resilience.swap_drained_packets <= depth as u64,
                "drained {} from a depth-{} FIFO",
                r.resilience.swap_drained_packets,
                depth
            );
        }
    }
}

fn swapped_umc_to_cfi(program: &Program, at_commit: u64) -> System<Box<dyn Extension>> {
    let table = cfi_table(program);
    let mut sys: System<Box<dyn Extension>> =
        System::new(SystemConfig::fabric_half_speed(), Box::new(Umc::new()));
    sys.load_program(program);
    let cfi: Box<dyn Extension> = Box::new(Cfi::new(table));
    let bitstream = bitstream_for(cfi.as_ref());
    sys.schedule_swap(SwapRequest { at_commit, bitstream, ext: cfi, policy: SwapPolicy::Reset });
    sys
}

#[test]
fn corrupted_swap_window_is_retried_or_escalates_to_replay() {
    let program = fifo_pressure_kernel();
    let boundary = 60;
    let clean = swapped_umc_to_cfi(&program, boundary).try_run(MAX).expect("clean swap");
    assert!(clean.monitor_trap.is_none());
    assert_eq!(clean.resilience.swaps_completed, 1);

    // One strike on the first transfer attempt: a retry absorbs it and
    // the swap still completes with the clean architectural result.
    let mut sys = swapped_umc_to_cfi(&program, boundary);
    sys.arm_faults(FaultPlan::new(0xdead).inject(
        FaultTarget::Bitstream,
        FaultSchedule::AtCommit(1),
        FaultModel::BitFlip { bits: 1 },
    ));
    let retried = sys.try_run(MAX).expect("retried swap completes");
    assert_eq!(retried.exit, clean.exit);
    assert_eq!(retried.instret, clean.instret);
    assert_eq!(retried.console, clean.console);
    assert_eq!(retried.resilience.swaps_completed, 1);
    assert!(retried.resilience.bitstream_retries >= 1, "the strike consumed a retry");

    // Every attempt corrupted: the retry budget exhausts and an
    // unsupervised run surfaces the corruption as a hard error.
    let exhaust_plan = FaultPlan::new(0xdead).inject(
        FaultTarget::Bitstream,
        FaultSchedule::EveryCommits(1),
        FaultModel::BitFlip { bits: 1 },
    );
    let mut sys = swapped_umc_to_cfi(&program, boundary);
    sys.arm_faults(exhaust_plan.clone());
    match sys.try_run(MAX) {
        Err(SimError::UnrecoverableCorruption { context, .. }) => {
            assert!(context.contains("bitstream"), "{context}");
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    }

    // The same exhaustion under the supervisor: rung 1 rolls back,
    // disarms the (transient) fault stream, and replays — the replay
    // re-executes the swap deterministically and finishes clean.
    let mut sys = swapped_umc_to_cfi(&program, boundary);
    sys.arm_faults(exhaust_plan);
    let mut sup = Supervisor::new(sys, RecoveryPolicy::default());
    let result = sup.run(MAX);
    let report = sup.report();
    assert!(report.errors_detected >= 1, "the exhaustion walked the ladder");
    assert_eq!(FaultOutcome::classify(report, &result, &clean), FaultOutcome::DetectedRecovered);
    let recovered = result.expect("supervised run completes");
    assert_eq!(recovered.exit, clean.exit);
    assert_eq!(recovered.instret, clean.instret);
    assert_eq!(recovered.console, clean.console);
    assert_eq!(recovered.resilience.swaps_completed, 1, "the replayed swap completed once");
}

/// Pauses a UMC → CFI swapped run at `pause` commits, round-trips the
/// snapshot through JSON, restores into a fresh system with the same
/// swap re-scheduled, and returns the resumed run's result.
fn interrupt_and_resume(program: &Program, at_commit: u64, pause: u64) -> RunResult {
    let mut first = swapped_umc_to_cfi(program, at_commit);
    match first.try_run_until(MAX, pause).expect("run to the pause point") {
        RunOutcome::Paused { instret, .. } => assert!(instret >= pause),
        RunOutcome::Done(r) => panic!("finished before the pause point: {:?}", r.exit),
    }
    let snap = first.snapshot();
    let parsed = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(parsed, snap, "snapshot survives the JSON round-trip");
    let mut resumed = swapped_umc_to_cfi(program, at_commit);
    resumed.restore(&parsed).expect("snapshot restores");
    resumed.try_run(MAX).expect("resumed run completes")
}

#[test]
fn snapshot_restore_preserves_the_swap_timeline() {
    let program = fifo_pressure_kernel();
    let boundary = 100;
    let reference = swapped_umc_to_cfi(&program, boundary).try_run(MAX).expect("reference");
    assert_eq!(reference.resilience.swaps_completed, 1);

    // Interrupted before the boundary: the restored run still owes the
    // swap and must execute it at the same boundary.
    // Interrupted after: the restored system must fast-forward its
    // scheduled swap to "done" and resume under CFI.
    for pause in [40, 160] {
        let resumed = interrupt_and_resume(&program, boundary, pause);
        assert_eq!(resumed.exit, reference.exit, "pause {pause}");
        assert_eq!(resumed.instret, reference.instret, "pause {pause}");
        assert_eq!(resumed.cycles, reference.cycles, "pause {pause}");
        assert_eq!(resumed.console, reference.console, "pause {pause}");
        assert_eq!(resumed.resilience.swaps_completed, 1, "pause {pause}");
        assert_eq!(
            resumed.resilience.swap_stall_cycles, reference.resilience.swap_stall_cycles,
            "pause {pause}"
        );
    }
}
