/root/repo/target/release/deps/fig5-0000aa4d936c9c4e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-0000aa4d936c9c4e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
