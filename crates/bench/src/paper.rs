//! The paper's published numbers (Tables III and IV), used to print
//! paper-vs-measured comparisons in the regeneration binaries and to
//! assert reproduction *shapes* in the integration tests.

/// One Table III row.
#[derive(Clone, Copy, Debug)]
pub struct AreaPowerRow {
    /// Configuration name as printed in the paper.
    pub name: &'static str,
    /// Maximum frequency, MHz.
    pub fmax_mhz: f64,
    /// Area, µm².
    pub area_um2: f64,
    /// Area overhead vs. baseline (fraction; `None` for the baseline).
    pub area_overhead: Option<f64>,
    /// Power, mW.
    pub power_mw: f64,
    /// Power overhead vs. baseline (fraction).
    pub power_overhead: Option<f64>,
}

/// Table III: the baseline Leon3 row.
pub const BASELINE: AreaPowerRow = AreaPowerRow {
    name: "Unmodified Leon3 w/ 32KB L1",
    fmax_mhz: 465.0,
    area_um2: 835_525.0,
    area_overhead: None,
    power_mw: 365.0,
    power_overhead: None,
};

/// Table III: the full-ASIC extension rows.
pub const ASIC_ROWS: [AreaPowerRow; 4] = [
    AreaPowerRow {
        name: "UMC",
        fmax_mhz: 463.0,
        area_um2: 932_118.0,
        area_overhead: Some(0.116),
        power_mw: 388.0,
        power_overhead: Some(0.063),
    },
    AreaPowerRow {
        name: "DIFT",
        fmax_mhz: 456.0,
        area_um2: 960_558.0,
        area_overhead: Some(0.150),
        power_mw: 388.0,
        power_overhead: Some(0.063),
    },
    AreaPowerRow {
        name: "BC",
        fmax_mhz: 456.0,
        area_um2: 996_894.0,
        area_overhead: Some(0.193),
        power_mw: 393.0,
        power_overhead: Some(0.077),
    },
    AreaPowerRow {
        name: "SEC",
        fmax_mhz: 463.0,
        area_um2: 836_786.0,
        area_overhead: Some(0.0015),
        power_mw: 364.0,
        power_overhead: Some(0.0),
    },
];

/// Table III: the dedicated FlexCore modules (interface + meta-data
/// cache), common to all fabric extensions.
pub const FLEXCORE_COMMON: AreaPowerRow = AreaPowerRow {
    name: "Leon3 w/ dedicated FlexCore modules",
    fmax_mhz: 458.0,
    area_um2: 1_106_967.0,
    area_overhead: Some(0.325),
    power_mw: 418.0,
    power_overhead: Some(0.146),
};

/// Table III: the extensions mapped onto the Flex fabric.
pub const FABRIC_ROWS: [AreaPowerRow; 4] = [
    AreaPowerRow {
        name: "UMC",
        fmax_mhz: 266.0,
        area_um2: 90_384.0,
        area_overhead: Some(0.108),
        power_mw: 21.0,
        power_overhead: Some(0.058),
    },
    AreaPowerRow {
        name: "DIFT",
        fmax_mhz: 256.0,
        area_um2: 123_471.0,
        area_overhead: Some(0.148),
        power_mw: 23.0,
        power_overhead: Some(0.063),
    },
    AreaPowerRow {
        name: "BC",
        fmax_mhz: 229.0,
        area_um2: 203_364.0,
        area_overhead: Some(0.243),
        power_mw: 27.0,
        power_overhead: Some(0.074),
    },
    AreaPowerRow {
        name: "SEC",
        fmax_mhz: 213.0,
        area_um2: 390_588.0,
        area_overhead: Some(0.467),
        power_mw: 36.0,
        power_overhead: Some(0.099),
    },
];

/// Implied LUT counts of the fabric rows (area / 807 µm² per LUT).
pub fn fabric_luts(row: &AreaPowerRow) -> f64 {
    row.area_um2 / 807.0
}

/// Table IV: normalized execution times. Columns are the fabric clock
/// ratios 1X, 0.5X, 0.25X; `f64::NAN` never appears — every cell is
/// published.
#[derive(Clone, Copy, Debug)]
pub struct PerfRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// UMC at 1X / 0.5X / 0.25X.
    pub umc: [f64; 3],
    /// DIFT at 1X / 0.5X / 0.25X.
    pub dift: [f64; 3],
    /// BC at 1X / 0.5X / 0.25X.
    pub bc: [f64; 3],
    /// SEC at 1X / 0.5X / 0.25X.
    pub sec: [f64; 3],
}

/// Table IV, per benchmark, plus the geometric-mean row.
pub const TABLE_IV: [PerfRow; 7] = [
    PerfRow {
        benchmark: "sha",
        umc: [1.01, 1.01, 1.01],
        dift: [1.01, 1.06, 1.16],
        bc: [1.03, 1.07, 1.15],
        sec: [1.00, 1.33, 1.50],
    },
    PerfRow {
        benchmark: "gmac",
        umc: [1.01, 1.01, 1.09],
        dift: [1.01, 1.15, 1.34],
        bc: [1.02, 1.17, 1.37],
        sec: [1.00, 1.20, 1.47],
    },
    PerfRow {
        benchmark: "stringsearch",
        umc: [1.03, 1.05, 1.12],
        dift: [1.16, 1.46, 1.89],
        bc: [1.22, 1.45, 1.84],
        sec: [1.00, 1.00, 1.11],
    },
    PerfRow {
        benchmark: "fft",
        umc: [1.01, 1.01, 1.01],
        dift: [1.02, 1.05, 1.31],
        bc: [1.02, 1.03, 1.35],
        sec: [1.00, 1.15, 1.45],
    },
    PerfRow {
        benchmark: "basicmath",
        umc: [1.01, 1.01, 1.01],
        dift: [1.03, 1.08, 1.34],
        bc: [1.04, 1.07, 1.37],
        sec: [1.00, 1.14, 1.43],
    },
    PerfRow {
        benchmark: "bitcount",
        umc: [1.04, 1.06, 1.07],
        dift: [1.08, 1.36, 1.69],
        bc: [1.13, 1.27, 1.64],
        sec: [1.00, 1.19, 1.48],
    },
    PerfRow {
        benchmark: "geomean",
        umc: [1.02, 1.02, 1.05],
        dift: [1.05, 1.18, 1.43],
        bc: [1.07, 1.17, 1.44],
        sec: [1.00, 1.16, 1.40],
    },
];

/// §V.C software-monitoring comparison points quoted by the paper.
pub const SOFTWARE_QUOTES: [(&str, &str); 3] = [
    ("DIFT", "3.6x average slowdown (LIFT, aggressively optimized, superscalar host); up to 37x unoptimized"),
    ("UMC", "up to 5.5x slowdown (Purify, byte-granular)"),
    ("BC", "up to 1.69x slowdown (compiler bound checks, extensively optimized)"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overheads_are_consistent_with_areas() {
        for row in ASIC_ROWS {
            let implied = row.area_um2 / BASELINE.area_um2 - 1.0;
            let published = row.area_overhead.unwrap();
            assert!((implied - published).abs() < 0.01, "{}: {implied} vs {published}", row.name);
        }
    }

    #[test]
    fn fabric_lut_counts_match_paper_magnitudes() {
        let luts: Vec<f64> = FABRIC_ROWS.iter().map(fabric_luts).collect();
        // UMC ~112, DIFT ~153, BC ~252, SEC ~484.
        assert!((luts[0] - 112.0).abs() < 1.0);
        assert!((luts[3] - 484.0).abs() < 1.0);
        // Strictly increasing: UMC < DIFT < BC < SEC.
        assert!(luts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn table_iv_slowdowns_increase_with_slower_fabric() {
        for row in &TABLE_IV {
            for cols in [row.umc, row.dift, row.bc, row.sec] {
                assert!(
                    cols[0] <= cols[1] + 1e-9 && cols[1] <= cols[2] + 1e-9,
                    "{}",
                    row.benchmark
                );
            }
        }
    }
}
