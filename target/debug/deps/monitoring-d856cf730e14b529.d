/root/repo/target/debug/deps/monitoring-d856cf730e14b529.d: tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-d856cf730e14b529: tests/monitoring.rs

tests/monitoring.rs:
