/root/repo/target/debug/deps/mem_subsystem-3e73ac3179b4a220.d: crates/bench/benches/mem_subsystem.rs

/root/repo/target/debug/deps/libmem_subsystem-3e73ac3179b4a220.rmeta: crates/bench/benches/mem_subsystem.rs

crates/bench/benches/mem_subsystem.rs:
