/root/repo/target/debug/deps/flexcore_pipeline-b2072c4943924fd5.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_pipeline-b2072c4943924fd5.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
