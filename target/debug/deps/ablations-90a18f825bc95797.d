/root/repo/target/debug/deps/ablations-90a18f825bc95797.d: tests/ablations.rs

/root/repo/target/debug/deps/ablations-90a18f825bc95797: tests/ablations.rs

tests/ablations.rs:
