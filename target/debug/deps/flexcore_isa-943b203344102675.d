/root/repo/target/debug/deps/flexcore_isa-943b203344102675.d: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libflexcore_isa-943b203344102675.rmeta: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/class.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
