//! End-to-end execution tests for the core model: functional
//! correctness (delay slots, annulment, memory, traps) and timing
//! behaviour (caches, store buffer, stalls).

use flexcore_asm::assemble;
use flexcore_isa::{InstrClass, Reg};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult};

fn run_program(src: &str) -> (Core, MainMemory, ExitReason) {
    let program = assemble(src).expect("assembly failed");
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    let exit = core.run(&mut mem, &mut bus, 10_000_000);
    (core, mem, exit)
}

#[test]
fn arithmetic_and_halt() {
    let (core, _, exit) = run_program(
        "start: mov 6, %o0
                mov 7, %o1
                umul %o0, %o1, %o2
                ta 0",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O2), 42);
}

#[test]
fn loop_with_delay_slot_work() {
    // The delay slot holds useful work (the add) — classic SPARC.
    let (core, _, exit) = run_program(
        "start: mov 10, %o0
                clr %o1
        loop:   subcc %o0, 1, %o0
                bne loop
                add %o1, 2, %o1     ! executes 10 times
                ta 0",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O1), 20);
}

#[test]
fn annulled_delay_slot_skips_work() {
    // ba,a annuls its delay slot: the mov must NOT execute.
    let (core, _, _) = run_program(
        "start: mov 1, %o0
                ba,a done
                mov 99, %o0         ! annulled
        done:   ta 0",
    );
    assert_eq!(core.reg(Reg::O0), 1);
    assert_eq!(core.stats().annulled, 1);
}

#[test]
fn conditional_annul_executes_slot_when_taken() {
    // bne,a with the branch taken: delay slot executes.
    let (core, _, _) = run_program(
        "start: cmp %g0, 1
                bne,a target
                mov 5, %o0          ! executes (branch taken)
                mov 99, %o0
        target: ta 0",
    );
    assert_eq!(core.reg(Reg::O0), 5);
}

#[test]
fn conditional_annul_skips_slot_when_untaken() {
    let (core, _, _) = run_program(
        "start: cmp %g0, %g0
                bne,a nowhere
                mov 99, %o0         ! annulled (branch untaken)
                mov 7, %o0
                ta 0
        nowhere: ta 1",
    );
    assert_eq!(core.reg(Reg::O0), 7);
}

#[test]
fn call_and_return_linkage() {
    let (core, _, exit) = run_program(
        "start: mov 5, %o0
                call double
                nop
                call double
                nop
                ta 0
        double: retl
                add %o0, %o0, %o0   ! delay slot does the work",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O0), 20);
}

#[test]
fn memory_byte_and_halfword_semantics() {
    let src = "start: set data, %o0
                ldsb [%o0], %o1     ! 0x80 -> sign-extended
                ldub [%o0], %o2     ! 0x80 -> zero-extended
                ldsh [%o0 + 2], %o3 ! 0xfffe -> sign-extended
                lduh [%o0 + 2], %o4
                mov 0xab, %o5
                stb %o5, [%o0 + 4]
                sth %o5, [%o0 + 6]
                ta 0
        data:   .byte 0x80, 0x01
                .half 0xfffe
                .space 4";
    let program = assemble(src).unwrap();
    let data = program.symbol("data").unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    assert_eq!(core.run(&mut mem, &mut bus, 1000), ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O1) as i32, -128);
    assert_eq!(core.reg(Reg::O2), 0x80);
    assert_eq!(core.reg(Reg::O3) as i32, -2);
    assert_eq!(core.reg(Reg::O4), 0xfffe);
    // Stored bytes land big-endian in memory.
    assert_eq!(mem.read_u8(data + 4), 0xab);
    assert_eq!(mem.read_u16(data + 6), 0x00ab);
}

#[test]
fn word_store_load_round_trip() {
    let (core, _, _) = run_program(
        "start: set scratch, %o0
                set 0xdeadbeef, %o1
                st %o1, [%o0]
                ld [%o0], %o2
                ta 0
                .align 4
        scratch: .space 4",
    );
    assert_eq!(core.reg(Reg::O2), 0xdead_beef);
}

#[test]
fn doubleword_load_store_use_register_pairs() {
    let (core, mem, exit) = run_program(
        "start: set src, %o0
                ldd [%o0], %o2       ! %o2 = first word, %o3 = second
                set dst, %o0
                std %o2, [%o0]
                ta 0
                .align 8
        src:    .word 0x11223344, 0x55667788
        dst:    .space 8",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O2), 0x1122_3344);
    assert_eq!(core.reg(Reg::O3), 0x5566_7788);
    let program = assemble(
        "start: set src, %o0\n ldd [%o0], %o2\n set dst, %o0\n std %o2, [%o0]\n ta 0\n .align 8\nsrc: .word 0x11223344, 0x55667788\ndst: .space 8",
    )
    .unwrap();
    let dst = program.symbol("dst").unwrap();
    assert_eq!(mem.read_u32(dst), 0x1122_3344);
    assert_eq!(mem.read_u32(dst + 4), 0x5566_7788);
}

#[test]
fn swap_exchanges_register_and_memory() {
    let (core, mem, exit) = run_program(
        "start: set cell, %o0
                set 0xaaaa5555, %o1
                swap [%o0], %o1
                ta 0
                .align 4
        cell:   .word 0x12345678",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert_eq!(core.reg(Reg::O1), 0x1234_5678, "register got the old memory value");
    let program = assemble(
        "start: set cell, %o0\n set 0xaaaa5555, %o1\n swap [%o0], %o1\n ta 0\n .align 4\ncell: .word 0x12345678",
    )
    .unwrap();
    let cell = program.symbol("cell").unwrap();
    assert_eq!(mem.read_u32(cell), 0xaaaa_5555, "memory got the register value");
}

#[test]
fn doubleword_ops_trap_on_odd_register_or_misalignment() {
    // Odd destination register pair.
    let (_, _, exit) = run_program(
        "start: set buf, %o0
                ldd [%o0], %o1       ! odd rd: illegal
                .align 8
        buf:    .space 8",
    );
    assert!(matches!(exit, ExitReason::IllegalInstruction { .. }), "{exit:?}");
    // 4-byte-aligned but not 8-byte-aligned address.
    let (_, _, exit) = run_program(
        "start: set buf, %o0
                ldd [%o0 + 4], %o2
                .align 8
        buf:    .space 16",
    );
    assert!(matches!(exit, ExitReason::MisalignedAccess { .. }), "{exit:?}");
}

#[test]
fn misaligned_word_load_traps() {
    let (_, _, exit) = run_program(
        "start: set data, %o0
                ld [%o0 + 1], %o1
        data:   .word 0",
    );
    assert!(matches!(exit, ExitReason::MisalignedAccess { .. }), "{exit:?}");
}

#[test]
fn divide_by_zero_traps() {
    let (_, _, exit) = run_program(
        "start: mov 5, %o0
                udiv %o0, %g0, %o1",
    );
    assert!(matches!(exit, ExitReason::DivideByZero { .. }), "{exit:?}");
}

#[test]
fn illegal_instruction_traps() {
    let (_, _, exit) = run_program("start: .word 0xffffffff");
    assert!(matches!(exit, ExitReason::IllegalInstruction { .. }), "{exit:?}");
}

#[test]
fn halt_codes_distinguish_success_and_failure() {
    let (_, _, exit) = run_program("start: ta 1");
    assert_eq!(exit, ExitReason::Halt(1));
}

#[test]
fn console_output() {
    let (core, _, _) = run_program(
        "start: set 0xffff0000, %o1
                mov 'h', %o0
                stb %o0, [%o1]
                mov 'i', %o0
                stb %o0, [%o1]
                ta 0",
    );
    assert_eq!(core.console(), b"hi");
}

#[test]
fn instruction_classes_are_counted() {
    let (core, _, _) = run_program(
        "start: mov 1, %o0
                ld [%g0], %o1
                st %o0, [%g0]
                ta 0",
    );
    let s = core.stats();
    assert_eq!(s.class_count(InstrClass::Ld), 1);
    assert_eq!(s.class_count(InstrClass::St), 1);
    // mov is `or`; `set` never appears here.
    assert_eq!(s.class_count(InstrClass::Logic), 1);
    // A taken `ta` exits instead of committing, so 3 instructions
    // commit.
    assert_eq!(s.instret, 3);
}

#[test]
fn icache_miss_charged_once_per_line() {
    // 16 straight-line nops span two 32-byte lines: exactly 2 I-misses.
    let src = format!("start: {} ta 0", "nop\n".repeat(16));
    let program = assemble(&src).unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    core.run(&mut mem, &mut bus, 1000);
    let st = core.icache_stats();
    assert_eq!(st.read_misses, 3, "two nop lines + the ta line boundary");
    assert!(st.read_hits >= 14);
}

#[test]
fn cycles_exceed_instructions_due_to_misses() {
    let (core, _, _) = run_program(
        "start: mov 100, %o0
        loop:   subcc %o0, 1, %o0
                bne loop
                nop
                ta 0",
    );
    let s = core.stats();
    assert!(core.cycle() > s.instret, "{} cycles vs {} insts", core.cycle(), s.instret);
    // But a tight cached loop should be close to 1 CPI: within 2x.
    assert!(core.cycle() < 2 * s.instret + 100);
}

#[test]
fn store_heavy_code_stalls_on_store_buffer() {
    // A cached loop issuing two stores per 5 instructions demands
    // ~12 bus cycles per 5 core cycles, so the 8-entry buffer must
    // eventually back-pressure the core.
    let (core, _, exit) = run_program(
        "start: set scratch, %o0
                mov 200, %o1
        loop:   st %g0, [%o0]
                st %g0, [%o0 + 4]
                subcc %o1, 1, %o1
                bne loop
                nop
                ta 0
                .align 4
        scratch: .space 8",
    );
    assert_eq!(exit, ExitReason::Halt(0));
    assert!(core.stats().store_stall_cycles > 0);
}

#[test]
fn external_stall_accounting() {
    let program = assemble("start: nop\n ta 0").unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    let StepResult::Committed(_) = core.step(&mut mem, &mut bus) else { panic!() };
    let before = core.cycle();
    core.stall_until(before + 17);
    assert_eq!(core.cycle(), before + 17);
    assert_eq!(core.stats().external_stall_cycles, 17);
    core.stall_until(before); // past: no-op
    assert_eq!(core.cycle(), before + 17);
}

#[test]
fn instruction_limit_stops_infinite_loops() {
    let program = assemble("start: ba start\n nop").unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    assert_eq!(core.run(&mut mem, &mut bus, 50_000), ExitReason::InstructionLimit);
}

#[test]
fn monitor_halt_wins_over_further_execution() {
    let program = assemble("start: nop\n nop\n ta 0").unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    core.halt(ExitReason::MonitorTrap { pc: 0x1000 });
    assert_eq!(
        core.step(&mut mem, &mut bus),
        StepResult::Exited(ExitReason::MonitorTrap { pc: 0x1000 })
    );
}

#[test]
fn wider_commit_is_faster_but_bounded() {
    let src = "start: mov 2000, %o0
        loop:  add %o1, 1, %o1
               add %o2, 1, %o2
               add %o3, 1, %o3
               subcc %o0, 1, %o0
               bne loop
               nop
               ta 0";
    let run_width = |w: u32| {
        let program = assemble(src).unwrap();
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::superscalar(w));
        core.load_program(&program, &mut mem);
        assert_eq!(core.run(&mut mem, &mut bus, 1_000_000), ExitReason::Halt(0));
        core.quiesced_at()
    };
    let w1 = run_width(1);
    let w2 = run_width(2);
    let w4 = run_width(4);
    assert!(w2 < w1, "2-wide {w2} must beat 1-wide {w1}");
    assert!(w4 <= w2);
    // Speedup is bounded by the width (and by the per-instruction
    // penalties that still apply).
    assert!(w1 < 2 * w2 + 1000, "{w1} vs {w2}");
    // Functional results are width-independent by construction: both
    // runs passed the same self-check (Halt(0)).
}

#[test]
fn g0_is_immutable() {
    let (core, _, _) = run_program(
        "start: add %g0, 5, %g0
                ta 0",
    );
    assert_eq!(core.reg(Reg::G0), 0);
}

#[test]
fn trace_packet_fields_for_a_store() {
    let program = assemble(
        "start: set 0x2000, %o0
                mov 0x55, %o1
                st %o1, [%o0 + 8]
                ta 0",
    )
    .unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    let mut store_pkt = None;
    loop {
        match core.step(&mut mem, &mut bus) {
            StepResult::Committed(p) if p.class == InstrClass::St => {
                store_pkt = Some(p);
            }
            StepResult::Exited(_) => break,
            _ => {}
        }
    }
    let p = store_pkt.expect("saw the store");
    assert_eq!(p.addr, 0x2008);
    assert_eq!(p.store_value, 0x55);
    assert_eq!(p.src1, Some(Reg::O0));
    assert_eq!(p.srcv1, 0x2000);
    assert!(p.dest.is_none());
}
