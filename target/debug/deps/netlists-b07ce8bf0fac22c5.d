/root/repo/target/debug/deps/netlists-b07ce8bf0fac22c5.d: crates/flexcore/tests/netlists.rs Cargo.toml

/root/repo/target/debug/deps/libnetlists-b07ce8bf0fac22c5.rmeta: crates/flexcore/tests/netlists.rs Cargo.toml

crates/flexcore/tests/netlists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
