/root/repo/target/release/deps/table1-f3321d6d8da0ead2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f3321d6d8da0ead2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
