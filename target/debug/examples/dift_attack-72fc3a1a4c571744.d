/root/repo/target/debug/examples/dift_attack-72fc3a1a4c571744.d: examples/dift_attack.rs

/root/repo/target/debug/examples/libdift_attack-72fc3a1a4c571744.rmeta: examples/dift_attack.rs

examples/dift_attack.rs:
