/root/repo/target/debug/deps/fig4-2a272a9f2428a09e.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-2a272a9f2428a09e.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
