/root/repo/target/debug/examples/fifo_sweep-92bdfc6423531f9e.d: examples/fifo_sweep.rs

/root/repo/target/debug/examples/libfifo_sweep-92bdfc6423531f9e.rmeta: examples/fifo_sweep.rs

examples/fifo_sweep.rs:
