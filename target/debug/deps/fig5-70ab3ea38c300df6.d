/root/repo/target/debug/deps/fig5-70ab3ea38c300df6.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-70ab3ea38c300df6.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
