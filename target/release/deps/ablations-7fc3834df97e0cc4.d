/root/repo/target/release/deps/ablations-7fc3834df97e0cc4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7fc3834df97e0cc4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
