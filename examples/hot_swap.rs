//! Hot-swap quickstart: start a kernel under UMC, reprogram the fabric
//! to CFI mid-run without stopping the core, and watch the incoming
//! extension catch a control-flow violation the outgoing one never
//! checks for.
//!
//! ```sh
//! cargo run --example hot_swap
//! ```
//!
//! The same flow is available from the CLI:
//!
//! ```sh
//! cargo run -p flexcore-bench --bin flexsim -- program.s --ext umc --swap-at 40:cfi
//! ```

use flexcore_suite::analysis::cfi_edges;
use flexcore_suite::asm::{assemble, Program};
use flexcore_suite::fabric::{map_to_luts, to_bitstream};
use flexcore_suite::flexcore::ext::{Cfi, CfiTable, Extension, Umc};
use flexcore_suite::flexcore::{SwapPolicy, SwapRequest, System, SystemConfig};

/// CFI edge table recovered statically from the program's own CFG —
/// exactly what `flexsim --swap-at N:cfi` programs.
fn cfi_table(program: &Program) -> CfiTable {
    let edges = cfi_edges(program);
    let mut table = CfiTable::new();
    for &(from, to) in &edges.branch_edges {
        table.allow_branch(from, to);
    }
    for &target in &edges.call_targets {
        table.allow_call(target);
    }
    for &site in &edges.return_sites {
        table.allow_return(site);
    }
    table
}

fn run_with_swap(program: &Program, at_commit: u64) -> Result<(), Box<dyn std::error::Error>> {
    // The run starts under UMC. Boxing is what lets the system carry a
    // different extension after the swap.
    let mut sys: System<Box<dyn Extension>> =
        System::new(SystemConfig::fabric_half_speed(), Box::new(Umc::new()));
    sys.load_program(program);

    // The incoming CFI extension and the bitstream that programs its
    // datapath into the fabric's partial-reconfiguration region.
    let cfi: Box<dyn Extension> = Box::new(Cfi::new(cfi_table(program)));
    let bitstream = to_bitstream(&map_to_luts(&cfi.netlist(), 6));
    sys.schedule_swap(SwapRequest { at_commit, bitstream, ext: cfi, policy: SwapPolicy::Reset });

    let result = sys.try_run(100_000)?;
    for report in sys.swap_reports() {
        println!("  {report}");
    }
    match &result.monitor_trap {
        Some(trap) => println!("  verdict: {trap}"),
        None => println!("  verdict: clean under {}", sys.extension().name()),
    }
    // Both phases' counters: the forward/monitor accounting in the
    // summary spans the whole run — UMC's packets before the boundary,
    // CFI's after — and the "hot swaps" line is the swap's own ledger.
    print!("{}", result.summary());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel with memory traffic for UMC up front, then an indirect
    // jump. The jump target `fin` is a legitimate instruction but is
    // not a whitelisted call target or return site, so CFI — and only
    // CFI — flags the transfer.
    let program = assemble(
        "start:  set 0x9000, %o0
                 mov 8, %o1
         fill:   st %o1, [%o0]
                 ld [%o0], %o2
                 add %o0, 4, %o0
                 subcc %o1, 1, %o1
                 bne fill
                 nop
                 set fin, %g1
                 jmpl %g1, %g0
                 nop
         fin:    ta 0",
    )?;

    // A static UMC run (no swap, no trap) tells us how long the kernel
    // is; the indirect jump is its third-to-last commit.
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let static_run = sys.try_run(100_000)?;
    assert!(static_run.monitor_trap.is_none(), "UMC does not check control flow");
    let n = static_run.instret;
    println!("static UMC run: {n} commits, no trap — the rogue jump goes unnoticed\n");

    // 1. Swap once the fill loop is done: every forwarded packet before
    //    the boundary was checked by UMC, everything after — including
    //    the rogue jump — by CFI, which traps.
    println!("swap at commit 50 (indirect jump still downstream):");
    run_with_swap(&program, 50)?;

    // 2. Swap after the jump has already committed: CFI arrives too
    //    late to see it, and the run finishes clean — bit-identical to
    //    the static run from that boundary onward.
    println!("\nswap at commit {} (after the indirect jump committed):", n - 1);
    run_with_swap(&program, n - 1)?;
    Ok(())
}
