/root/repo/target/debug/deps/table3-2fb56a43f0c38445.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-2fb56a43f0c38445.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
