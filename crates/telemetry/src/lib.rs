//! `flexcore-telemetry` — host-time attribution and live health metrics
//! for the FlexCore reproduction.
//!
//! ROADMAP items 1 and 2 (event-driven fabric simulation, predecoded
//! hot-loop batching) are *performance* changes, and a performance
//! change without a committed baseline is a guess. This crate is the
//! instrument those PRs will be judged by. It answers two questions:
//!
//! 1. **Where does host wall-clock go?** — the [`PhaseClock`] trait
//!    attributes time to named simulator [`Phase`]s (fetch/decode,
//!    execute, fabric netlist eval, FIFO traffic, metadata-cache
//!    access, checkpointing, journal write/fsync) with cheap
//!    enter/exit scopes and log₂-bucketed latency histograms
//!    ([`Log2Histogram`]). The profiler follows the same static-
//!    dispatch idiom as `flexcore::obs::TraceSink`: the simulator is
//!    generic over `P: PhaseClock`, and the default
//!    [`NullPhaseClock`] has `ENABLED = false`, so every hook is a
//!    branch on a compile-time constant the optimizer deletes — the
//!    disabled path performs **no clock reads, no allocation, and no
//!    stores**.
//! 2. **Is the service healthy right now?** — the [`Registry`] holds
//!    lock-free [`Counter`]s, [`Gauge`]s, and [`Histogram`]s (plain
//!    relaxed atomics; a mutex guards registration only, never the
//!    hot path) with text and vendored-serde JSON exposition, which
//!    `flexserve` snapshots into an atomically-replaced `status.json`
//!    heartbeat during campaigns.
//!
//! The [`RateMeter`] rounds this out with the rate + ETA arithmetic
//! that `faultsweep`/`flexserve` progress lines print.
//!
//! # Overhead contract
//!
//! With [`NullPhaseClock`] (the default everywhere), instrumentation
//! must cost nothing measurable: the type is a ZST, `ENABLED` is
//! `false`, and every `begin`/`commit` pair folds to a no-op. The
//! `sim_throughput` bench rows and the `telemetry_guard` integration
//! test hold this line. With [`PhaseProfiler`], the budget is two
//! monotonic clock reads per instrumented span — acceptable for
//! profiling runs, which is why `flexprof` is a separate entry point
//! rather than an always-on default.
//!
//! # Example
//!
//! ```
//! use flexcore_telemetry::{Phase, PhaseClock, PhaseProfiler};
//!
//! let mut prof = PhaseProfiler::default();
//! let t = prof.begin();
//! // ... simulate something ...
//! prof.commit(Phase::Execute, t);
//! assert_eq!(prof.stats().unwrap().count(Phase::Execute), 1);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod hist;
pub mod phase;
pub mod rate;
pub mod registry;

pub use hist::Log2Histogram;
pub use phase::{NullPhaseClock, Phase, PhaseClock, PhaseProfiler, PhaseStats};
pub use rate::RateMeter;
pub use registry::{Counter, Gauge, Histogram, Registry};

/// Alias spelling out what the null clock is for: the telemetry-off
/// configuration every non-profiling entry point uses.
pub type NullTelemetry = NullPhaseClock;
