/root/repo/target/debug/deps/flexcore_pipeline-a6787dc55f4132f7.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-a6787dc55f4132f7.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
