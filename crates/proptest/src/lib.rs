//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace builds in fully offline environments, so the real
//! `proptest` crate (and its dependency tree) cannot be fetched from a
//! registry. This crate re-implements exactly the surface the test
//! suite uses — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Strategy`/`prop_map`, integer-range and tuple
//! strategies, `any::<T>()`, `prop::sample::select`, and
//! `prop::collection::vec` — on top of a small deterministic
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic by default.** Every test derives its seed from its
//!   own module path + name (FNV-1a), so runs are reproducible across
//!   machines and invocations. Set `PROPTEST_SEED=<u64>` to perturb all
//!   seeds at once when hunting for new counterexamples.
//! * **No shrinking.** A failing case reports its case index and seed;
//!   re-running reproduces it exactly, which is what shrinking mostly
//!   buys in CI.
//! * **String "regex" strategies** support only the `.{lo,hi}` shape
//!   (arbitrary text of bounded length) that the suite uses.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG, and the error type threaded by `prop_assert!`.

    /// Deterministic SplitMix64 generator. Small state, passes BigCrush
    /// on its output, and — crucially for this workspace — trivially
    /// reproducible from a single `u64` seed.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derives a per-test seed from the test's fully qualified name
        /// (FNV-1a), optionally perturbed by `PROPTEST_SEED`.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    h ^= v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            TestRng::new(h)
        }

        /// Next 64 random bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Mirror of `proptest::test_runner::Config` — only `cases` is
    /// honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` family; carried out of the test
    /// body as an `Err` so the harness can attach case/seed context.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators the suite uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `generate` takes the concrete [`TestRng`], so
    /// heterogeneous strategies can be unified behind
    /// `Box<dyn Strategy<Value = T>>` (see [`prop_oneof!`]).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union over same-`Value` strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a non-zero total.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = rng.below(span as u64) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    // span can be 2^64 for full-width inclusive ranges.
                    let off = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (lo + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// Pool from which `.{lo,hi}` string strategies draw: printable
    /// ASCII plus whitespace and a few multi-byte code points so UTF-8
    /// boundary handling gets exercised.
    const TEXT_POOL: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', ' ', '\t', '\n', ',', ':', ';',
        '.', '!', '%', '[', ']', '(', ')', '+', '-', '*', '/', '"', '\'', '\\', '_', '#', '{', '}',
        '=', '<', '>', '@', '~', '^', '&', '|', '?', '$', '`', 'é', 'λ', '→', '∀', '\u{0}',
    ];

    /// Minimal "regex" strategy: `".{lo,hi}"` generates text whose
    /// char-length is uniform in `[lo, hi]`. Any other pattern is
    /// produced literally (sufficient for the suite's usage).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len).map(|_| TEXT_POOL[rng.below(TEXT_POOL.len() as u64) as usize]).collect()
            } else {
                (*self).to_owned()
            }
        }
    }

    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the suite uses.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    /// Marker strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod sample {
    //! `prop::sample::select`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one element of a non-empty vector.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Strategy choosing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() requires options");
        Select(options)
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vector of values from `element`, length uniform in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors of `element` with length in `size`
    /// (half-open, matching the suite's call sites).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted (or unweighted) choice between strategies producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with context) rather than aborting the whole process state.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::test_runner::TestRng::for_test(test_name);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (set PROPTEST_SEED to vary): {}",
                            test_name, case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
