/root/repo/target/debug/deps/proptest-d5106b9c1470edd9.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d5106b9c1470edd9.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
