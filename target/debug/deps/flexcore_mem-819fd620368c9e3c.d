/root/repo/target/debug/deps/flexcore_mem-819fd620368c9e3c.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/flexcore_mem-819fd620368c9e3c: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/serde_impls.rs:
crates/mem/src/storebuf.rs:
