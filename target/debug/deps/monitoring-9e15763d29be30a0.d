/root/repo/target/debug/deps/monitoring-9e15763d29be30a0.d: tests/monitoring.rs

/root/repo/target/debug/deps/monitoring-9e15763d29be30a0: tests/monitoring.rs

tests/monitoring.rs:
