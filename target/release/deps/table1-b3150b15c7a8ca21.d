/root/repo/target/release/deps/table1-b3150b15c7a8ca21.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b3150b15c7a8ca21: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
