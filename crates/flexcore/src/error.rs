//! Typed simulation errors returned by
//! [`System::try_run`](crate::System::try_run) and
//! [`System::load_bitstream`](crate::System::load_bitstream).

use flexcore_mem::BusStats;

use crate::lockstep::DivergenceReport;
use crate::obs::FlightEntry;

/// Diagnostic state captured when the forward-progress watchdog fires.
#[derive(Clone, Debug)]
pub struct DeadlockSnapshot {
    /// Core-clock cycle at detection.
    pub cycle: u64,
    /// Program counter of the core.
    pub pc: u32,
    /// Instructions committed so far.
    pub instret: u64,
    /// Forward-FIFO occupancy at detection (a `u64` like every other
    /// serialized counter, for platform-independent output).
    pub fifo_occupancy: u64,
    /// Configured forward-FIFO depth.
    pub fifo_depth: u64,
    /// Cycle at which the fabric would next be free (astronomically far
    /// in the future when the fabric is wedged).
    pub fabric_free_at: u64,
    /// Whether a fault has wedged the fabric.
    pub fabric_stuck: bool,
    /// Shared-bus state at detection.
    pub bus: BusStats,
    /// The last committed instructions, oldest first — populated when a
    /// [`FlightRecorder`](crate::obs::FlightRecorder) (or an
    /// [`Observer`](crate::obs::Observer) carrying one) is installed as
    /// the system's trace sink; empty otherwise.
    pub recent: Vec<FlightEntry>,
}

impl DeadlockSnapshot {
    /// The flight log as one disassembled line per commit (empty string
    /// when no flight recorder was installed).
    pub fn recent_disassembly(&self) -> String {
        let mut out = String::new();
        for e in &self.recent {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} pc {:#010x} instret {} fifo {}/{} fabric_free_at {}{}",
            self.cycle,
            self.pc,
            self.instret,
            self.fifo_occupancy,
            self.fifo_depth,
            self.fabric_free_at,
            if self.fabric_stuck { " (fabric wedged)" } else { "" },
        )?;
        if !self.recent.is_empty() {
            write!(f, " ({} recent commits recorded)", self.recent.len())?;
        }
        Ok(())
    }
}

/// Why a simulation could not run to completion.
///
/// [`System::run`](crate::System::run) panics on these for backward
/// compatibility; [`System::try_run`](crate::System::try_run) returns
/// them so harnesses (and the `faultsweep` campaign) can keep going.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The system stopped making forward progress: no commit within the
    /// configured watchdog window, or the fabric can never drain the
    /// forward FIFO (so the core's end-of-program EMPTY wait would
    /// spin forever).
    Deadlock(DeadlockSnapshot),
    /// The core-clock cycle count exceeded the configured budget
    /// (`SystemConfig::with_cycle_budget`).
    CycleBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// The cycle count when the budget check tripped.
        cycle: u64,
        /// Instructions committed by then.
        instret: u64,
    },
    /// The cycle-level core disagreed with the ISA-level golden model
    /// while lockstep checking
    /// ([`System::enable_lockstep`](crate::System::enable_lockstep))
    /// was active. Carries a minimized [`DivergenceReport`]: the last
    /// commits of both models, the architectural-state delta, and the
    /// frozen flight-recorder ring.
    Divergence(Box<DivergenceReport>),
    /// Corruption that graceful degradation could not absorb — e.g. a
    /// bitstream that still fails its checksum after the configured
    /// number of reload attempts.
    UnrecoverableCorruption {
        /// What was corrupted.
        context: &'static str,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Human-readable detail from the last failure.
        detail: String,
    },
}

impl SimError {
    /// A short stable tag naming the error class — recovery reports and
    /// triage logs key on it ("deadlock", "cycle-budget", "divergence",
    /// "corruption").
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock(_) => "deadlock",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget",
            SimError::Divergence(_) => "divergence",
            SimError::UnrecoverableCorruption { .. } => "corruption",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(snap) => write!(f, "deadlock detected: {snap}"),
            SimError::CycleBudgetExceeded { budget, cycle, instret } => {
                write!(f, "cycle budget exceeded: {cycle} > {budget} after {instret} instructions")
            }
            SimError::Divergence(report) => write!(f, "lockstep divergence: {report}"),
            SimError::UnrecoverableCorruption { context, attempts, detail } => write!(
                f,
                "unrecoverable corruption in {context} after {attempts} attempt(s): {detail}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let snap = DeadlockSnapshot {
            cycle: 12,
            pc: 0x40,
            instret: 3,
            fifo_occupancy: 4,
            fifo_depth: 4,
            fabric_free_at: u64::MAX / 2,
            fabric_stuck: true,
            bus: BusStats::default(),
            recent: Vec::new(),
        };
        let msg = SimError::Deadlock(snap).to_string();
        assert!(msg.contains("deadlock"));
        assert!(msg.contains("fifo 4/4"));
        assert!(msg.contains("fabric wedged"));

        let msg = SimError::CycleBudgetExceeded { budget: 10, cycle: 11, instret: 2 }.to_string();
        assert!(msg.contains("11 > 10"));

        let msg = SimError::UnrecoverableCorruption {
            context: "bitstream",
            attempts: 4,
            detail: "bad checksum".into(),
        }
        .to_string();
        assert!(msg.contains("bitstream"));
        assert!(msg.contains("4 attempt"));
    }
}
