/root/repo/target/debug/deps/execution-3fc6d22face066fe.d: crates/pipeline/tests/execution.rs

/root/repo/target/debug/deps/execution-3fc6d22face066fe: crates/pipeline/tests/execution.rs

crates/pipeline/tests/execution.rs:
