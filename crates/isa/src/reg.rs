//! Architectural integer registers.

use std::fmt;
use std::str::FromStr;

/// Number of architectural integer registers visible at any time.
///
/// SPARC V8 exposes 32 registers (`%g0-%g7`, `%o0-%o7`, `%l0-%l7`,
/// `%i0-%i7`). The reproduction flattens register windows into this
/// single bank (see `DESIGN.md` §6), which is also the view the FlexCore
/// shadow meta-data register file mirrors.
pub const NUM_REGS: usize = 32;

/// An architectural integer register (`%g0` … `%i7`).
///
/// `%g0` reads as zero and ignores writes, as on real SPARC.
///
/// # Example
///
/// ```
/// use flexcore_isa::Reg;
/// let r: Reg = "%o3".parse()?;
/// assert_eq!(r, Reg::O3);
/// assert_eq!(r.index(), 11);
/// # Ok::<(), flexcore_isa::ParseRegError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

macro_rules! reg_consts {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[allow(missing_docs)]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

reg_consts! {
    G0 = 0, G1 = 1, G2 = 2, G3 = 3, G4 = 4, G5 = 5, G6 = 6, G7 = 7,
    O0 = 8, O1 = 9, O2 = 10, O3 = 11, O4 = 12, O5 = 13, SP = 14, O7 = 15,
    L0 = 16, L1 = 17, L2 = 18, L3 = 19, L4 = 20, L5 = 21, L6 = 22, L7 = 23,
    I0 = 24, I1 = 25, I2 = 26, I3 = 27, I4 = 28, I5 = 29, FP = 30, I7 = 31,
}

impl Reg {
    /// Creates a register from its flat index.
    ///
    /// Returns `None` if `index >= 32`.
    pub fn new(index: u8) -> Option<Reg> {
        (index < NUM_REGS as u8).then_some(Reg(index))
    }

    /// Creates a register from the low 5 bits of `index`.
    ///
    /// This is the decoder's view: any 5-bit field is a valid register.
    pub fn from_field(index: u32) -> Reg {
        Reg((index & 0x1f) as u8)
    }

    /// Flat index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is `%g0`, the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Canonical assembly name (`%g0`, `%o6` is printed as `%sp`,
    /// `%i6` as `%fp`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; NUM_REGS] = [
            "%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7", "%o0", "%o1", "%o2", "%o3",
            "%o4", "%o5", "%sp", "%o7", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
            "%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
        ];
        NAMES[self.index()]
    }

    /// Iterator over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `%g0`-style names, the aliases `%sp`/`%fp`, and raw
    /// `%r0`..`%r31` names.
    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        let err = || ParseRegError { text: s.to_string() };
        let body = s.strip_prefix('%').ok_or_else(err)?;
        let (bank, num) = match body {
            "sp" => return Ok(Reg::SP),
            "fp" => return Ok(Reg::FP),
            _ => {
                let mut chars = body.chars();
                let bank = chars.next().ok_or_else(err)?;
                let num: u8 = chars.as_str().parse().map_err(|_| err())?;
                (bank, num)
            }
        };
        let base = match bank {
            'g' => 0,
            'o' => 8,
            'l' => 16,
            'i' => 24,
            'r' => {
                return Reg::new(num).ok_or_else(err);
            }
            _ => return Err(err()),
        };
        if num < 8 {
            Ok(Reg(base + num))
        } else {
            Err(err())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_banks() {
        assert_eq!(Reg::G0.index(), 0);
        assert_eq!(Reg::O0.index(), 8);
        assert_eq!(Reg::L0.index(), 16);
        assert_eq!(Reg::I0.index(), 24);
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::FP.index(), 30);
    }

    #[test]
    fn g0_is_zero_register() {
        assert!(Reg::G0.is_zero());
        assert!(!Reg::G1.is_zero());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Reg::new(31), Some(Reg::I7));
        assert_eq!(Reg::new(32), None);
    }

    #[test]
    fn from_field_masks_to_five_bits() {
        assert_eq!(Reg::from_field(0x21), Reg::G1);
        assert_eq!(Reg::from_field(31), Reg::I7);
    }

    #[test]
    fn parse_round_trips_all_names() {
        for r in Reg::all() {
            let parsed: Reg = r.name().parse().unwrap();
            assert_eq!(parsed, r, "register {}", r);
        }
    }

    #[test]
    fn parse_accepts_raw_names() {
        assert_eq!("%r14".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("%r0".parse::<Reg>().unwrap(), Reg::G0);
    }

    #[test]
    fn parse_accepts_o6_i6_aliases() {
        assert_eq!("%o6".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("%i6".parse::<Reg>().unwrap(), Reg::FP);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["g1", "%x1", "%g8", "%r32", "%", "%g", "%o-1"] {
            assert!(bad.parse::<Reg>().is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn display_uses_aliases() {
        assert_eq!(Reg::SP.to_string(), "%sp");
        assert_eq!(Reg::FP.to_string(), "%fp");
        assert_eq!(Reg::L3.to_string(), "%l3");
    }
}
