/root/repo/target/debug/deps/flexsim-bac8d10023af93c5.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/libflexsim-bac8d10023af93c5.rmeta: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
