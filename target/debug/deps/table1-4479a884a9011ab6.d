/root/repo/target/debug/deps/table1-4479a884a9011ab6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4479a884a9011ab6.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
