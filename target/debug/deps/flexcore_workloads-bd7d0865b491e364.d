/root/repo/target/debug/deps/flexcore_workloads-bd7d0865b491e364.d: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

/root/repo/target/debug/deps/flexcore_workloads-bd7d0865b491e364: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/basicmath.rs:
crates/workloads/src/bitcount.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/dijkstra.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/gmac.rs:
crates/workloads/src/qsort.rs:
crates/workloads/src/sha.rs:
crates/workloads/src/stringsearch.rs:
