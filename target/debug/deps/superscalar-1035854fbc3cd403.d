/root/repo/target/debug/deps/superscalar-1035854fbc3cd403.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/libsuperscalar-1035854fbc3cd403.rmeta: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
