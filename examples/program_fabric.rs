//! The §III.F programming flow: synthesize a monitoring extension to
//! the fabric, serialize its configuration to a bitstream (what a
//! vendor would sign and ship like a microcode update), verify that
//! corruption is rejected, and reload a functionally identical
//! configuration.
//!
//! ```sh
//! cargo run --example program_fabric
//! ```

use flexcore_suite::fabric::{from_bitstream, map_to_luts, to_bitstream, FpgaCost};
use flexcore_suite::flexcore::ext::{Dift, Extension};

fn main() {
    // 1. "Synthesis": the DIFT extension's datapath as a gate-level
    //    netlist, technology-mapped onto the 6-LUT fabric.
    let netlist = Dift::new().netlist();
    let mapping = map_to_luts(&netlist, 6);
    let cost = FpgaCost::of(&netlist);
    println!(
        "synthesized DIFT: {} LUTs, depth {}, {:.0} um2, fmax {:.0} MHz",
        mapping.lut_count(),
        mapping.depth(),
        cost.area_um2(),
        cost.fmax_mhz()
    );

    // 2. "Bitstream generation": the configuration that would be
    //    shifted serially into the fabric at boot.
    let bitstream = to_bitstream(&mapping);
    println!(
        "bitstream: {} bytes (version {})",
        bitstream.len(),
        flexcore_suite::fabric::BITSTREAM_VERSION
    );

    // 3. Integrity: a single flipped bit anywhere must be rejected —
    //    a mis-programmed monitor silently watching every instruction
    //    would be worse than none.
    let mut tampered = bitstream.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x40;
    match from_bitstream(&tampered) {
        Err(e) => println!("tampered stream rejected: {e}"),
        Ok(_) => panic!("tampering must not go unnoticed"),
    }

    // 4. Reload and verify: the reloaded configuration computes exactly
    //    what the synthesized one does.
    let reloaded = from_bitstream(&bitstream).expect("pristine stream loads");
    let mut s1 = netlist.initial_state();
    let mut s2 = netlist.initial_state();
    let mut seed = 0xace1u32;
    for round in 0..8 {
        let inputs: Vec<bool> = (0..netlist.inputs().len())
            .map(|_| {
                seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                seed >> 31 == 1
            })
            .collect();
        let a = mapping.eval(&netlist, &inputs, &mut s1);
        let b = reloaded.eval(&netlist, &inputs, &mut s2);
        assert_eq!(a, b, "round {round}");
    }
    println!("reloaded configuration verified equivalent over random stimulus");

    // 5. Bonus: dump a short waveform of the datapath for GTKWave.
    let stimulus: Vec<Vec<bool>> = (0..16u32)
        .map(|t| {
            (0..netlist.inputs().len())
                .map(|i| (t.wrapping_mul(2654435761) >> (i % 31)) & 1 == 1)
                .collect()
        })
        .collect();
    let mut vcd = Vec::new();
    flexcore_suite::fabric::write_vcd(&netlist, &stimulus, &mut vcd).expect("in-memory write");
    let path = std::env::temp_dir().join("flexcore_dift.vcd");
    std::fs::write(&path, &vcd).expect("write vcd");
    println!(
        "waveform of 16 cycles written to {} ({} signals)",
        path.display(),
        flexcore_suite::fabric::vcd_signal_count(&netlist)
    );

    println!("\n(the fabric can now monitor every committed instruction — see the");
    println!(" other examples for what the loaded extension catches at run time)");
}
