/root/repo/target/debug/deps/superscalar-b0749929d037fb52.d: crates/bench/src/bin/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libsuperscalar-b0749929d037fb52.rmeta: crates/bench/src/bin/superscalar.rs Cargo.toml

crates/bench/src/bin/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
