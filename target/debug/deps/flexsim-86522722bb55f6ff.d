/root/repo/target/debug/deps/flexsim-86522722bb55f6ff.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/flexsim-86522722bb55f6ff: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
