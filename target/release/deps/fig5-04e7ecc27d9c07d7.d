/root/repo/target/release/deps/fig5-04e7ecc27d9c07d7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-04e7ecc27d9c07d7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
