/root/repo/target/release/deps/fig4-1ec279737522fcda.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1ec279737522fcda: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
