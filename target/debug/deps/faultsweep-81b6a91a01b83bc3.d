/root/repo/target/debug/deps/faultsweep-81b6a91a01b83bc3.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/libfaultsweep-81b6a91a01b83bc3.rmeta: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
