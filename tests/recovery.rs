//! Supervised rollback-and-replay recovery.
//!
//! The headline invariants:
//!
//! * A single-bit result strike at *any* commit of *any* paper
//!   workload, detected under lockstep and recovered by the
//!   [`Supervisor`], finishes with a [`RunResult`] bit-identical to the
//!   uninterrupted fault-free run.
//! * Triage ([`FaultOutcome::classify`]) is deterministic: re-running
//!   the same seeded trial reproduces the same label and the same
//!   recovery report — the property the `faultsweep --recover --resume`
//!   progress cache relies on.
//! * Degraded mode is observable: unmonitored commits and suppressed
//!   checks show up in [`RunResult::summary`] and recovery/degraded
//!   events reach the trace sink.

use std::sync::OnceLock;

use flexcore_suite::flexcore::ext::Umc;
use flexcore_suite::flexcore::obs::{TraceEvent, VecSink};
use flexcore_suite::flexcore::recovery::{
    FaultOutcome, RecoveryPolicy, RecoveryReport, Supervisor,
};
use flexcore_suite::flexcore::{RunResult, System, SystemConfig};
use flexcore_suite::workloads::Workload;
use proptest::prelude::*;

const MAX_INSTRUCTIONS: u64 = 50_000_000;

fn fresh(w: &Workload) -> System<Umc> {
    let program = w.program().unwrap_or_else(|e| panic!("{} assembles: {e}", w.name()));
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    sys
}

/// Uninterrupted fault-free reference results, one per paper workload,
/// computed once and shared across proptest cases.
fn reference(idx: usize) -> &'static RunResult {
    static REFS: OnceLock<Vec<RunResult>> = OnceLock::new();
    &REFS.get_or_init(|| {
        Workload::all()
            .iter()
            .map(|w| fresh(w).try_run(MAX_INSTRUCTIONS).expect("fault-free run"))
            .collect()
    })[idx]
}

/// One supervised trial: a single-bit result strike at about `frac` of
/// workload `idx`'s commits, detected under lockstep, recovered by the
/// supervisor. Returns the final result and the recovery report.
fn supervised_trial(idx: usize, frac: f64, bit: u32) -> (RunResult, RecoveryReport) {
    let w = &Workload::all()[idx];
    let site = ((reference(idx).instret as f64 * frac) as u64).max(1);
    let mut sys = fresh(w);
    sys.enable_lockstep();
    sys.inject_result_fault(site, bit);
    let mut sup = Supervisor::new(
        sys,
        RecoveryPolicy { checkpoint_every: 5_000, ..RecoveryPolicy::default() },
    );
    let r = sup.run(MAX_INSTRUCTIONS).expect("supervised run completes");
    (r, sup.report().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Strike any commit of any workload: either the flip never touched
    /// architectural state (masked — the packet had no destination
    /// register) or lockstep catches it and the supervisor's replay is
    /// bit-exact against the uninterrupted fault-free run.
    #[test]
    fn supervised_recovery_reproduces_the_fault_free_run(
        idx in 0usize..6,
        frac_ppm in 20_000u64..950_000,
        bit in 0u32..32,
    ) {
        let (r, report) = supervised_trial(idx, frac_ppm as f64 / 1e6, bit);
        let reference = reference(idx);
        if report.errors_detected > 0 {
            // Recovery rewound to a pre-fault checkpoint, so even the
            // resilience counters match the clean run.
            prop_assert_eq!(&r, reference, "recovered replay must be bit-exact");
            prop_assert!(report.replays >= 1);
            prop_assert!(report.mttr_cycles > 0, "repair rewound past the detection point");
        } else {
            // The strike landed on a packet with no destination
            // register: monitoring-path corruption only. Architecture
            // (and timing) match; only the injection counter differs.
            let mut normalized = r.clone();
            normalized.resilience = reference.resilience;
            prop_assert_eq!(&normalized, reference, "masked strike must not perturb the run");
        }
        let triage = FaultOutcome::classify(&report, &Ok(r), reference);
        prop_assert!(
            triage == FaultOutcome::Masked || triage == FaultOutcome::DetectedRecovered,
            "unexpected triage {triage} for a recoverable strike"
        );
    }
}

/// The six kernels all recover from a mid-run strike (the proptest
/// samples; this pins full coverage).
#[test]
fn every_workload_recovers_from_a_midpoint_strike() {
    for idx in 0..Workload::all().len() {
        let (r, report) = supervised_trial(idx, 0.5, 7);
        let triage = FaultOutcome::classify(&report, &Ok(r.clone()), reference(idx));
        assert!(
            triage == FaultOutcome::Masked || triage == FaultOutcome::DetectedRecovered,
            "{}: unexpected triage {triage}",
            Workload::all()[idx].name()
        );
        if report.errors_detected > 0 {
            assert_eq!(&r, reference(idx), "{} replay not bit-exact", Workload::all()[idx].name());
        }
    }
}

/// Determinism behind `faultsweep --recover --resume`: re-running the
/// same seeded trial reproduces the same triage label and the same
/// recovery report, so a resumed campaign can reuse recorded outcomes.
#[test]
fn triage_labels_are_deterministic_across_reruns() {
    let (r1, report1) = supervised_trial(1, 0.37, 13);
    let (r2, report2) = supervised_trial(1, 0.37, 13);
    assert_eq!(r1, r2, "supervised runs are deterministic");
    assert_eq!(report1, report2, "recovery reports are deterministic");
    let t1 = FaultOutcome::classify(&report1, &Ok(r1), reference(1));
    let t2 = FaultOutcome::classify(&report2, &Ok(r2), reference(1));
    assert_eq!(t1.label(), t2.label());
}

/// Degraded mode is observable end-to-end: a persistent monitor trap
/// exhausts the replay rungs, the program completes unmonitored, and
/// the counters surface in the human-readable summary.
#[test]
fn degraded_mode_counters_surface_in_the_summary() {
    let program = flexcore_suite::asm::assemble(
        "start:  set 0x8000, %o0
                 st %g0, [%o0]
                 ld [%o0], %o1
                 ld [%o0 + 4], %o2   ! uninitialized: UMC traps every replay
                 ta 0",
    )
    .expect("assembles");
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let mut sup = Supervisor::new(sys, RecoveryPolicy::default());
    let r = sup.run(MAX_INSTRUCTIONS).expect("degraded completion");
    let report = sup.report();

    assert!(report.degraded_entered);
    assert!(r.monitor_trap.is_none());
    assert!(r.resilience.unmonitored_commits > 0);
    assert!(r.resilience.suppressed_checks > 0);
    let summary = r.summary();
    assert!(summary.contains("degraded mode"), "summary lacks the degraded line:\n{summary}");
    assert!(
        summary.contains(&format!("{} unmonitored commits", r.resilience.unmonitored_commits)),
        "summary lacks the counter:\n{summary}"
    );
}

/// Recovery and degraded-mode transitions reach the trace sink, so
/// Chrome/Perfetto exports can render them on the timeline.
#[test]
fn recovery_events_reach_the_trace_sink() {
    let program = flexcore_suite::asm::assemble(
        "start:  set 0x8000, %o0
                 st %g0, [%o0]
                 ld [%o0 + 4], %o2
                 ta 0",
    )
    .expect("assembles");
    let mut sys =
        System::with_sink(SystemConfig::fabric_half_speed(), Umc::new(), VecSink::default());
    sys.load_program(&program);
    let mut sup = Supervisor::new(sys, RecoveryPolicy::default());
    sup.run(MAX_INSTRUCTIONS).expect("degraded completion");
    let report = sup.report().clone();
    let events = sup.into_system().into_sink().events;

    let recoveries: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Recovery { rung, .. } => Some(*rung),
            _ => None,
        })
        .collect();
    assert_eq!(
        recoveries,
        report.attempts.iter().map(|a| a.rung).collect::<Vec<_>>(),
        "one Recovery event per ladder attempt, in order"
    );
    assert_eq!(
        events.iter().filter(|e| matches!(e, TraceEvent::DegradedEnter { .. })).count(),
        1,
        "exactly one degraded-mode entry"
    );
}
