/root/repo/target/release/deps/superscalar-54088c5eeac92f1b.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/release/deps/superscalar-54088c5eeac92f1b: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
