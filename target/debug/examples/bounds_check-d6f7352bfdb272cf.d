/root/repo/target/debug/examples/bounds_check-d6f7352bfdb272cf.d: examples/bounds_check.rs

/root/repo/target/debug/examples/libbounds_check-d6f7352bfdb272cf.rmeta: examples/bounds_check.rs

examples/bounds_check.rs:
