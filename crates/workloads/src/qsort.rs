//! `qsort` (MiBench auto): iterative in-place quicksort with an
//! explicit stack (Lomuto partition) over generated words — heavily
//! branchy with data-dependent loads/stores; an extra workload beyond
//! the paper's six.

use crate::lcg;

const N: u32 = 2048;
const SEED: u32 = 0x9507_7ead;

/// Rust reference: the expected order-sensitive checksum after sorting
/// ascending (unsigned).
fn reference() -> u32 {
    let mut seed = SEED;
    let mut v: Vec<u32> = (0..N)
        .map(|_| {
            seed = lcg(seed);
            seed
        })
        .collect();
    v.sort_unstable();
    v.iter().enumerate().fold(0u32, |acc, (k, &x)| acc.wrapping_add(x.wrapping_mul(k as u32 + 1)))
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! qsort: iterative quicksort (Lomuto) over {N} words.
        .equ N, {N}
start:
        ! Fill the array.
        set {SEED}, %g2
        set arr, %l6
        set N, %l5
fill:
        {lcg}
        st %g2, [%l6]
        add %l6, 4, %l6
        subcc %l5, 1, %l5
        bne fill
        nop

        set arr, %g4
        set stk, %g6
        clr %g7                ! stack depth (pairs)
        ! push (0, N-1)
        st %g0, [%g6]
        set N - 1, %o0
        st %o0, [%g6 + 4]
        mov 1, %g7
sort:
        cmp %g7, 0
        be done
        nop
        ! pop (lo, hi)
        sub %g7, 1, %g7
        sll %g7, 3, %o0
        add %g6, %o0, %o0
        ld [%o0], %l0          ! lo
        ld [%o0 + 4], %l1      ! hi
        cmp %l0, %l1
        bgeu sort              ! segment of <= 1 element
        nop
        ! Lomuto partition: pivot = arr[hi]
        sll %l1, 2, %o0
        ld [%g4 + %o0], %l4    ! pivot
        mov %l0, %l2           ! i = lo (position to place next small)
        mov %l0, %l3           ! j
part:
        cmp %l3, %l1
        bgeu part_done
        nop
        sll %l3, 2, %o0
        ld [%g4 + %o0], %o1    ! arr[j]
        cmp %o1, %l4
        bgu no_swap            ! arr[j] > pivot (unsigned)
        nop
        ! swap arr[i], arr[j]; i++
        sll %l2, 2, %o2
        ld [%g4 + %o2], %o3
        st %o1, [%g4 + %o2]
        st %o3, [%g4 + %o0]
        add %l2, 1, %l2
no_swap:
        ba part
        add %l3, 1, %l3        ! j++ in the delay slot
part_done:
        ! place the pivot: swap arr[i], arr[hi]
        sll %l2, 2, %o2
        ld [%g4 + %o2], %o3
        sll %l1, 2, %o0
        ld [%g4 + %o0], %o4
        st %o4, [%g4 + %o2]
        st %o3, [%g4 + %o0]
        ! push (lo, i-1) if nonempty
        cmp %l0, %l2
        bgeu skip_left
        nop
        sll %g7, 3, %o0
        add %g6, %o0, %o0
        st %l0, [%o0]
        sub %l2, 1, %o1
        st %o1, [%o0 + 4]
        add %g7, 1, %g7
skip_left:
        ! push (i+1, hi) if nonempty
        add %l2, 1, %o2
        cmp %o2, %l1
        bgeu sort
        nop
        sll %g7, 3, %o0
        add %g6, %o0, %o0
        st %o2, [%o0]
        st %l1, [%o0 + 4]
        ba sort
        add %g7, 1, %g7        ! depth++ in the delay slot
done:
        ! checksum = sum arr[k] * (k+1)
        set arr, %l6
        set N, %l5
        clr %o5                ! checksum
        mov 1, %o4             ! k+1
sum:
        ld [%l6], %o0
        umul %o0, %o4, %o0
        add %o5, %o0, %o5
        add %l6, 4, %l6
        add %o4, 1, %o4
        subcc %l5, 1, %l5
        bne sum
        nop

        set {expected}, %o1
        cmp %o5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
arr:    .space {arr_bytes}
stk:    .space {stk_bytes}
",
        arr_bytes = N * 4,
        stk_bytes = N * 8, // worst-case unbalanced partitions
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_checksum_is_order_sensitive() {
        // Independent property: the checksum of the sorted array must
        // differ from the unsorted one (overwhelmingly likely with
        // random data), and sorting is what the kernel must achieve.
        let mut seed = SEED;
        let v: Vec<u32> = (0..N)
            .map(|_| {
                seed = lcg(seed);
                seed
            })
            .collect();
        let unsorted: u32 = v
            .iter()
            .enumerate()
            .fold(0u32, |acc, (k, &x)| acc.wrapping_add(x.wrapping_mul(k as u32 + 1)));
        assert_ne!(unsorted, reference());
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
