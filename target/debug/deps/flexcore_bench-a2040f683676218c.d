/root/repo/target/debug/deps/flexcore_bench-a2040f683676218c.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-a2040f683676218c.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-a2040f683676218c.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
