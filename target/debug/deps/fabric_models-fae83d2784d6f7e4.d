/root/repo/target/debug/deps/fabric_models-fae83d2784d6f7e4.d: crates/bench/benches/fabric_models.rs Cargo.toml

/root/repo/target/debug/deps/libfabric_models-fae83d2784d6f7e4.rmeta: crates/bench/benches/fabric_models.rs Cargo.toml

crates/bench/benches/fabric_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
