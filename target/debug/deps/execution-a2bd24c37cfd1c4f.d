/root/repo/target/debug/deps/execution-a2bd24c37cfd1c4f.d: crates/pipeline/tests/execution.rs

/root/repo/target/debug/deps/libexecution-a2bd24c37cfd1c4f.rmeta: crates/pipeline/tests/execution.rs

crates/pipeline/tests/execution.rs:
