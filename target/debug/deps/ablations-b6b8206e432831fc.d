/root/repo/target/debug/deps/ablations-b6b8206e432831fc.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-b6b8206e432831fc.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
