//! Deterministic, seeded fault injection.
//!
//! The paper's SEC extension exists to *catch soft errors*; this module
//! supplies the errors. A [`FaultPlan`] declares what to corrupt
//! ([`FaultTarget`]), when ([`FaultSchedule`]), and how
//! ([`FaultModel`]); a [`FaultInjector`] built from the plan turns it
//! into a byte-identical sequence of [`FaultEvent`]s: the same seed and
//! plan always produce the same faults, the same detections, and the
//! same statistics, on any host.
//!
//! The injector is *pure*: it decides faults (as [`FaultAction`]s) from
//! its own seeded generator and the commit index alone, and the
//! [`System`](crate::System) applies them to architectural state,
//! trace packets, the meta-data cache, or serialized bitstreams. That
//! split is what makes determinism testable — two injectors with the
//! same plan can be driven side by side and must produce identical
//! logs.
//!
//! ```
//! use flexcore::faults::{FaultModel, FaultPlan, FaultSchedule, FaultTarget};
//! use flexcore::ext::Sec;
//! use flexcore::{System, SystemConfig};
//! # use flexcore_asm::assemble;
//!
//! # let program = assemble("start: add %g1, 1, %g1\n add %g1, %g1, %g2\n ta 0")?;
//! let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
//! sys.load_program(&program);
//! // One single-bit ALU-result strike at the 2nd committed instruction.
//! sys.arm_faults(FaultPlan::new(0xF00D).inject(
//!     FaultTarget::CommitResult,
//!     FaultSchedule::AtCommit(2),
//!     FaultModel::BitFlip { bits: 1 },
//! ));
//! let result = sys.try_run(1_000).expect("no deadlock");
//! assert!(result.monitor_trap.is_some(), "SEC caught the flip");
//! assert_eq!(sys.fault_log().len(), 1);
//! # Ok::<(), flexcore_asm::AsmError>(())
//! ```

/// Deterministic SplitMix64 generator dedicated to fault injection.
///
/// Each [`FaultSpec`] in a plan gets its own stream (derived from the
/// plan seed and the spec's index), so adding a spec never perturbs the
/// faults another spec produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// The current generator state. Feeding it back into
    /// [`FaultRng::new`] resumes the stream at exactly this position
    /// (SplitMix64 state *is* its seed), which is how checkpoints
    /// preserve fault-injection determinism across a restore.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// What a fault corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The committing instruction's result — flipped in the forwarded
    /// trace packet *and* written back to the destination register,
    /// like a particle strike on the ALU output latch. This is the
    /// architectural-state fault SEC is designed to catch.
    CommitResult,
    /// A uniformly chosen architectural register (`%g1`..`%i7`; `%g0`
    /// is hard-wired and absorbs strikes).
    Register,
    /// A data word in `[base, base + len)` (word-aligned draws).
    Memory {
        /// First byte of the vulnerable window.
        base: u32,
        /// Window length in bytes.
        len: u32,
    },
    /// An instruction word in `[base, base + len)` — an I-cache /
    /// text-image strike. May turn the word into an illegal
    /// instruction, which the core must report, not panic over.
    InstructionWord {
        /// First byte of the text window.
        base: u32,
        /// Window length in bytes.
        len: u32,
    },
    /// A field of the FFIFO trace packet in flight — corruption in the
    /// monitoring path only; architectural state stays intact.
    FifoPacket,
    /// A resident meta-data cache word (drawn from the meta window).
    MetaCache,
    /// Wedges the fabric: it stops draining the forward FIFO. The
    /// never-draining-fabric scenario behind
    /// [`SimError::Deadlock`](crate::SimError::Deadlock).
    FabricStuck,
    /// A serialized bitstream passing through
    /// [`System::load_bitstream`](crate::System::load_bitstream); the
    /// schedule is evaluated against the transfer-attempt index instead
    /// of the commit index.
    Bitstream,
}

/// When a fault fires, in units of committed instructions (or transfer
/// attempts for [`FaultTarget::Bitstream`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Exactly at the `n`-th commit (1-based, matching
    /// `ForwardStats::committed`). Fires once.
    AtCommit(u64),
    /// Every `n`-th commit (`n > 0`).
    EveryCommits(u64),
    /// Independently at each commit with probability `per_million /
    /// 1_000_000` — the injection-*rate* axis of the `faultsweep`
    /// campaign.
    Bernoulli {
        /// Firing probability in parts per million.
        per_million: u32,
    },
}

impl FaultSchedule {
    /// Whether the schedule fires at `index` (commit or attempt
    /// number, 1-based). Draws from `rng` only for [`Bernoulli`]
    /// decisions, so schedules stay deterministic.
    ///
    /// [`Bernoulli`]: FaultSchedule::Bernoulli
    fn fires(&self, index: u64, rng: &mut FaultRng) -> bool {
        match *self {
            FaultSchedule::AtCommit(n) => index == n,
            FaultSchedule::EveryCommits(n) => n > 0 && index.is_multiple_of(n),
            FaultSchedule::Bernoulli { per_million } => {
                rng.below(1_000_000) < u64::from(per_million)
            }
        }
    }
}

/// How the targeted bits are disturbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultModel {
    /// Flip `bits` uniformly drawn bit positions (1 = single-event
    /// upset).
    BitFlip {
        /// Number of random bits to flip.
        bits: u32,
    },
    /// Flip exactly the bits in `mask` (deterministic placement; used
    /// by `System::inject_result_fault`).
    Mask(u32),
}

impl FaultModel {
    fn draw_mask(&self, rng: &mut FaultRng) -> u32 {
        match *self {
            FaultModel::BitFlip { bits } => {
                let mut mask = 0u32;
                for _ in 0..bits.max(1) {
                    mask |= 1 << rng.below(32);
                }
                mask
            }
            FaultModel::Mask(mask) => mask,
        }
    }
}

/// One injection rule: target × schedule × model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to corrupt.
    pub target: FaultTarget,
    /// When to fire.
    pub schedule: FaultSchedule,
    /// How many bits, and where.
    pub model: FaultModel,
}

/// A declarative, seeded fault campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed from which every spec's generator stream derives.
    pub seed: u64,
    /// The injection rules.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// Adds an injection rule (builder style).
    pub fn inject(
        mut self,
        target: FaultTarget,
        schedule: FaultSchedule,
        model: FaultModel,
    ) -> FaultPlan {
        self.specs.push(FaultSpec { target, schedule, model });
        self
    }
}

/// A concrete disturbance the [`System`](crate::System) must apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// XOR the committing packet's result (and the destination
    /// register) with `mask`.
    FlipResult {
        /// Bits to flip.
        mask: u32,
    },
    /// XOR register `reg` (1..=31) with `mask`.
    FlipRegister {
        /// Register index.
        reg: u8,
        /// Bits to flip.
        mask: u32,
    },
    /// XOR the data word at `addr` with `mask`.
    FlipMemory {
        /// Word-aligned address.
        addr: u32,
        /// Bits to flip.
        mask: u32,
    },
    /// XOR the instruction word at `addr` with `mask`.
    FlipText {
        /// Word-aligned address.
        addr: u32,
        /// Bits to flip.
        mask: u32,
    },
    /// XOR one field of the in-flight trace packet with `mask`.
    CorruptPacket {
        /// Which packet field.
        field: PacketField,
        /// Bits to flip.
        mask: u32,
    },
    /// XOR a resident meta-data cache word with `mask`.
    PoisonMeta {
        /// Meta-space word address.
        addr: u32,
        /// Bits to flip.
        mask: u32,
    },
    /// Wedge the fabric (it stops draining the FIFO).
    StickFabric,
}

/// Trace-packet fields a [`FaultTarget::FifoPacket`] strike can hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketField {
    /// The RESULT field.
    Result,
    /// The SRCV1 field.
    Srcv1,
    /// The SRCV2 field.
    Srcv2,
    /// The ADDRESS field.
    Addr,
    /// The STORE_VALUE field.
    StoreValue,
}

const PACKET_FIELDS: [PacketField; 5] = [
    PacketField::Result,
    PacketField::Srcv1,
    PacketField::Srcv2,
    PacketField::Addr,
    PacketField::StoreValue,
];

/// One applied fault, as recorded in the injector's event log. Two runs
/// with the same seed, plan, and program produce identical logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Commit index at which the fault fired (the transfer-attempt
    /// index for bitstream faults).
    pub at: u64,
    /// Core-clock cycle of the strike (0 for load-time bitstream
    /// faults).
    pub cycle: u64,
    /// What was done.
    pub action: FaultAction,
}

/// Special action payload for bitstream corruption: `(byte offset, bit
/// mask)` applied to the serialized stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitstreamStrike {
    /// Transfer-attempt index (1-based).
    pub attempt: u64,
    /// Byte offset into the stream.
    pub offset: usize,
    /// Bits of that byte to flip.
    pub mask: u8,
}

struct SpecState {
    spec: FaultSpec,
    rng: FaultRng,
    /// `AtCommit` fires once; `FabricStuck` is idempotent but logged
    /// once.
    exhausted: bool,
}

/// Complete checkpointable run-time state of a [`FaultInjector`] (see
/// [`FaultInjector::snapshot`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultInjectorSnapshot {
    /// Per-spec generator positions, in spec order.
    pub rng_states: Vec<u64>,
    /// Per-spec one-shot flags, in spec order.
    pub exhausted: Vec<bool>,
    /// Every fault applied so far.
    pub log: Vec<FaultEvent>,
    /// Every bitstream strike applied so far.
    pub bitstream_log: Vec<BitstreamStrike>,
    /// Bitstream transfer attempts seen so far.
    pub bitstream_attempts: u64,
}

/// Executes a [`FaultPlan`] deterministically and logs every strike.
pub struct FaultInjector {
    specs: Vec<SpecState>,
    seed: u64,
    log: Vec<FaultEvent>,
    bitstream_log: Vec<BitstreamStrike>,
    bitstream_attempts: u64,
    /// While `false`, polls decide nothing and draw nothing: the
    /// per-spec generator streams stay frozen, so a re-armed injector
    /// resumes exactly where it left off. Recovery replays disarm the
    /// plan so the restored run re-executes fault-free.
    armed: bool,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("specs", &self.specs.len())
            .field("events", &self.log.len())
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector from a plan. Each spec gets an independent
    /// generator stream derived from `(plan.seed, spec index)`.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let specs = plan
            .specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| SpecState {
                spec,
                rng: FaultRng::new(plan.seed ^ (i as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)),
                exhausted: false,
            })
            .collect();
        FaultInjector {
            specs,
            seed: plan.seed,
            log: Vec::new(),
            bitstream_log: Vec::new(),
            bitstream_attempts: 0,
            armed: true,
        }
    }

    /// Stops deciding faults without touching generator state or the
    /// logs. A disarmed injector's [`poll_commit`] and
    /// [`corrupt_bitstream`] strike nothing; the plan can be re-armed
    /// later and resumes deterministically.
    ///
    /// [`poll_commit`]: FaultInjector::poll_commit
    /// [`corrupt_bitstream`]: FaultInjector::corrupt_bitstream
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Re-enables a [disarmed](FaultInjector::disarm) injector.
    pub fn rearm(&mut self) {
        self.armed = true;
    }

    /// Whether the injector is currently deciding faults.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends a rule to a live injector (its stream derives from the
    /// new spec's index, so existing streams are unperturbed).
    pub fn push_spec(&mut self, spec: FaultSpec) {
        let i = self.specs.len() as u64;
        self.specs.push(SpecState {
            spec,
            rng: FaultRng::new(self.seed ^ (i + 1).wrapping_mul(0xa076_1d64_78bd_642f)),
            exhausted: false,
        });
    }

    /// Every fault applied so far, in application order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Every bitstream strike applied so far.
    pub fn bitstream_log(&self) -> &[BitstreamStrike] {
        &self.bitstream_log
    }

    /// Decides the faults striking at commit `commit` (1-based), logs
    /// them, and returns them for the system to apply.
    pub fn poll_commit(&mut self, commit: u64, cycle: u64) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        if !self.armed {
            return actions;
        }
        for st in &mut self.specs {
            if st.exhausted || matches!(st.spec.target, FaultTarget::Bitstream) {
                continue;
            }
            if !st.spec.schedule.fires(commit, &mut st.rng) {
                continue;
            }
            if matches!(st.spec.schedule, FaultSchedule::AtCommit(_)) {
                st.exhausted = true;
            }
            let mask = st.spec.model.draw_mask(&mut st.rng);
            let action = match st.spec.target {
                FaultTarget::CommitResult => FaultAction::FlipResult { mask },
                FaultTarget::Register => {
                    FaultAction::FlipRegister { reg: (1 + st.rng.below(31)) as u8, mask }
                }
                FaultTarget::Memory { base, len } => FaultAction::FlipMemory {
                    addr: base + (st.rng.below(u64::from(len.max(4)) / 4) as u32) * 4,
                    mask,
                },
                FaultTarget::InstructionWord { base, len } => FaultAction::FlipText {
                    addr: base + (st.rng.below(u64::from(len.max(4)) / 4) as u32) * 4,
                    mask,
                },
                FaultTarget::FifoPacket => FaultAction::CorruptPacket {
                    field: PACKET_FIELDS[st.rng.below(PACKET_FIELDS.len() as u64) as usize],
                    mask,
                },
                FaultTarget::MetaCache => FaultAction::PoisonMeta {
                    // The paper's meta cache backs a 4 KB window; draw
                    // word addresses across twice that to also exercise
                    // non-resident strikes.
                    addr: crate::ext::META_BASE + (st.rng.below(0x800) as u32) * 4,
                    mask,
                },
                FaultTarget::FabricStuck => {
                    st.exhausted = true;
                    FaultAction::StickFabric
                }
                FaultTarget::Bitstream => unreachable!("filtered above"),
            };
            self.log.push(FaultEvent { at: commit, cycle, action });
            actions.push(action);
        }
        actions
    }

    /// Captures the injector's complete run-time state: per-spec
    /// generator positions and one-shot flags, both event logs, and the
    /// bitstream attempt counter. The specs themselves are construction
    /// state (the re-armed plan supplies them on restore).
    pub fn snapshot(&self) -> FaultInjectorSnapshot {
        FaultInjectorSnapshot {
            rng_states: self.specs.iter().map(|s| s.rng.state()).collect(),
            exhausted: self.specs.iter().map(|s| s.exhausted).collect(),
            log: self.log.clone(),
            bitstream_log: self.bitstream_log.clone(),
            bitstream_attempts: self.bitstream_attempts,
        }
    }

    /// Restores state captured by [`FaultInjector::snapshot`] onto an
    /// injector rebuilt from the same plan.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's spec count does not match
    /// this injector's (the plans differ).
    pub fn restore(&mut self, snap: &FaultInjectorSnapshot) -> Result<(), String> {
        if snap.rng_states.len() != self.specs.len() || snap.exhausted.len() != self.specs.len() {
            return Err(format!(
                "fault plan mismatch: snapshot has {} spec(s), injector has {}",
                snap.rng_states.len(),
                self.specs.len()
            ));
        }
        for (st, (&state, &exhausted)) in
            self.specs.iter_mut().zip(snap.rng_states.iter().zip(&snap.exhausted))
        {
            st.rng = FaultRng::new(state);
            st.exhausted = exhausted;
        }
        self.log = snap.log.clone();
        self.bitstream_log = snap.bitstream_log.clone();
        self.bitstream_attempts = snap.bitstream_attempts;
        Ok(())
    }

    /// Corrupts one serialized bitstream transfer in place (if any
    /// `Bitstream` spec fires for this attempt). Returns the strike.
    pub fn corrupt_bitstream(&mut self, stream: &mut [u8]) -> Option<BitstreamStrike> {
        if !self.armed {
            return None;
        }
        self.bitstream_attempts += 1;
        let attempt = self.bitstream_attempts;
        if stream.is_empty() {
            return None;
        }
        for st in &mut self.specs {
            if st.exhausted || !matches!(st.spec.target, FaultTarget::Bitstream) {
                continue;
            }
            if !st.spec.schedule.fires(attempt, &mut st.rng) {
                continue;
            }
            if matches!(st.spec.schedule, FaultSchedule::AtCommit(_)) {
                st.exhausted = true;
            }
            let offset = st.rng.below(stream.len() as u64) as usize;
            let mask = (st.spec.model.draw_mask(&mut st.rng) & 0xff).max(1) as u8;
            stream[offset] ^= mask;
            let strike = BitstreamStrike { attempt, offset, mask };
            self.bitstream_log.push(strike);
            return Some(strike);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42)
            .inject(
                FaultTarget::CommitResult,
                FaultSchedule::Bernoulli { per_million: 100_000 },
                FaultModel::BitFlip { bits: 1 },
            )
            .inject(
                FaultTarget::Register,
                FaultSchedule::EveryCommits(7),
                FaultModel::BitFlip { bits: 2 },
            )
            .inject(
                FaultTarget::Memory { base: 0x8000, len: 0x100 },
                FaultSchedule::AtCommit(5),
                FaultModel::Mask(0x10),
            )
    }

    #[test]
    fn same_seed_same_log() {
        let (mut a, mut b) = (FaultInjector::new(&plan()), FaultInjector::new(&plan()));
        for commit in 1..=500 {
            let (x, y) = (a.poll_commit(commit, commit * 3), b.poll_commit(commit, commit * 3));
            assert_eq!(x, y);
        }
        assert_eq!(a.log(), b.log());
        assert!(!a.log().is_empty(), "plan produced no faults in 500 commits");
    }

    #[test]
    fn disarmed_injector_strikes_nothing_and_resumes_exactly() {
        let (mut armed, mut toggled) = (FaultInjector::new(&plan()), FaultInjector::new(&plan()));
        for commit in 1..=100 {
            assert_eq!(armed.poll_commit(commit, commit), toggled.poll_commit(commit, commit));
        }
        // A disarmed window decides nothing and freezes the streams...
        toggled.disarm();
        for commit in 101..=200 {
            assert!(toggled.poll_commit(commit, commit).is_empty());
            let mut bytes = [0xffu8; 16];
            assert!(toggled.corrupt_bitstream(&mut bytes).is_none());
            assert_eq!(bytes, [0xffu8; 16], "disarmed bitstream transfer untouched");
        }
        // ...so re-arming replays the same decisions the armed twin
        // makes for the same commit indices.
        toggled.rearm();
        for commit in 101..=200 {
            assert_eq!(armed.poll_commit(commit, commit), toggled.poll_commit(commit, commit));
        }
        assert_eq!(armed.log(), toggled.log());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut p2 = plan();
        p2.seed = 43;
        let (mut a, mut b) = (FaultInjector::new(&plan()), FaultInjector::new(&p2));
        for commit in 1..=500 {
            a.poll_commit(commit, commit);
            b.poll_commit(commit, commit);
        }
        assert_ne!(a.log(), b.log());
    }

    #[test]
    fn at_commit_fires_exactly_once() {
        let plan = FaultPlan::new(7).inject(
            FaultTarget::CommitResult,
            FaultSchedule::AtCommit(3),
            FaultModel::Mask(1),
        );
        let mut inj = FaultInjector::new(&plan);
        let mut hits = 0;
        for commit in 1..=20 {
            hits += inj.poll_commit(commit, commit).len();
        }
        assert_eq!(hits, 1);
        assert_eq!(inj.log()[0].at, 3);
        assert_eq!(inj.log()[0].action, FaultAction::FlipResult { mask: 1 });
    }

    #[test]
    fn bitstream_strikes_are_scheduled_by_attempt() {
        let plan = FaultPlan::new(9).inject(
            FaultTarget::Bitstream,
            FaultSchedule::AtCommit(2),
            FaultModel::BitFlip { bits: 1 },
        );
        let mut inj = FaultInjector::new(&plan);
        let golden = vec![0xaau8; 64];
        let mut first = golden.clone();
        assert!(inj.corrupt_bitstream(&mut first).is_none());
        assert_eq!(first, golden, "attempt 1 untouched");
        let mut second = golden.clone();
        let strike = inj.corrupt_bitstream(&mut second).expect("attempt 2 corrupted");
        assert_ne!(second, golden);
        assert_eq!(second[strike.offset], golden[strike.offset] ^ strike.mask);
    }

    #[test]
    fn register_strikes_never_hit_g0() {
        let plan = FaultPlan::new(1).inject(
            FaultTarget::Register,
            FaultSchedule::EveryCommits(1),
            FaultModel::BitFlip { bits: 1 },
        );
        let mut inj = FaultInjector::new(&plan);
        for commit in 1..=200 {
            for a in inj.poll_commit(commit, commit) {
                let FaultAction::FlipRegister { reg, .. } = a else {
                    panic!("unexpected action {a:?}");
                };
                assert!((1..32).contains(&reg));
            }
        }
    }
}
