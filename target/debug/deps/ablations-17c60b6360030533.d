/root/repo/target/debug/deps/ablations-17c60b6360030533.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-17c60b6360030533.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
