//! Flow-sensitive, interprocedural static taint propagation — the
//! DIFT half of check elision.
//!
//! The dynamic DIFT extension carries a 1-bit taint tag per register
//! and per memory word, propagates tags through ALU/load/store
//! traffic, and checks them on indirect jumps. This pass runs the same
//! propagation *statically*, over the recovered [`Cfg`], with a
//! three-point lattice per register and per tracked memory word:
//!
//! ```text
//!        ⊤  (unknown: may or may not carry taint)
//!       / \
//!  Untainted  Tainted
//! ```
//!
//! Taint *sources* are loads from the console input region
//! (`>= CONSOLE_BASE`); *sinks* are indirect jumps (the dynamic trap
//! site) and stores (where taint escapes to memory) — both reported as
//! diagnostics when must-taint reaches them. The payload, though, is
//! the **elision proof**: a PC is DIFT-elidable when every static path
//! proves the dynamic DIFT step at that PC is a no-op — the tag it
//! would write is already in place and the check it would run cannot
//! trap. Those PCs skip fabric forwarding entirely at run time.
//!
//! Soundness leans on one inequality: a static [`Taint::Untainted`]
//! verdict implies the dynamic tag bit is 0. Dynamic taint enters only
//! through `cpop` software ops and console-region metadata (which the
//! dynamic monitor treats as *un*tainted, so the static `Tainted`
//! source over-approximates it). Any reachable `cpop`, or any indirect
//! jump that is not a plain `ret`/`retl` (whose dynamic successor the
//! CFG cannot model), forfeits the whole elision set.
//!
//! Calls are summarized: a call-site → return-point edge smashes the
//! registers the callee may transitively write to ⊤ and, if the callee
//! may store, the whole memory taint image to ⊤ — mirroring how the
//! constant pass treats the same edges, but register-precise.

use std::collections::BTreeMap;

use flexcore_asm::Program;
use flexcore_isa::interp::CONSOLE_BASE;
use flexcore_isa::{Instruction, Opcode, Operand2, Reg, NUM_REGS};

use crate::cfg::{build_cfg, Block, Cfg};
use crate::dataflow::{
    const_transfer, pair_of, refine_edge, write_regs, ConstState, Interval, META_BASE, TOP,
    WIDEN_LIMIT,
};
use crate::diag::{Diagnostic, Rule};

/// One point of the per-register / per-word taint lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Taint {
    /// Provably tag-0 on every path (the elision-enabling fact).
    Untainted,
    /// Provably input-derived on every path (the diagnostic fact).
    Tainted,
    /// Unknown — differs across paths or laundered through a callee.
    Top,
}

impl Taint {
    /// Control-flow join: agree or give up.
    fn join(self, o: Taint) -> Taint {
        if self == o {
            self
        } else {
            Taint::Top
        }
    }

    /// Dataflow combination mirroring the dynamic `t1 | t2` of tag
    /// bits: any tainted source taints the result.
    fn or(self, o: Taint) -> Taint {
        match (self, o) {
            (Taint::Top, _) | (_, Taint::Top) => Taint::Top,
            (Taint::Tainted, _) | (_, Taint::Tainted) => Taint::Tainted,
            _ => Taint::Untainted,
        }
    }

    fn clean(self) -> bool {
        self == Taint::Untainted
    }
}

/// Word-granular taint image of monitored memory: a blanket value for
/// every untracked word plus strong-updated exceptions at words whose
/// store addresses resolved exactly.
#[derive(Clone, PartialEq, Eq)]
struct MemTaint {
    blanket: Taint,
    /// Invariant: values differ from `blanket` (normalized), keys are
    /// word-aligned, and the map stays under [`MAX_TRACKED`].
    tracked: BTreeMap<u32, Taint>,
}

/// Tracked-word cap; past it the image collapses to its join.
const MAX_TRACKED: usize = 256;

impl MemTaint {
    fn untainted() -> MemTaint {
        MemTaint { blanket: Taint::Untainted, tracked: BTreeMap::new() }
    }

    fn top() -> MemTaint {
        MemTaint { blanket: Taint::Top, tracked: BTreeMap::new() }
    }

    fn word(&self, addr: u32) -> Taint {
        self.tracked.get(&(addr & !3)).copied().unwrap_or(self.blanket)
    }

    /// Join over every word the image could hold (the verdict for a
    /// load whose address did not resolve).
    fn any(&self) -> Taint {
        self.tracked.values().fold(self.blanket, |a, &t| a.join(t))
    }

    fn set_word(&mut self, addr: u32, t: Taint) {
        let key = addr & !3;
        if t == self.blanket {
            self.tracked.remove(&key);
        } else {
            self.tracked.insert(key, t);
            if self.tracked.len() > MAX_TRACKED {
                self.blanket = self.any();
                self.tracked.clear();
            }
        }
    }

    /// A store of taint `t` to an unresolved address: every word *may*
    /// have been overwritten.
    fn store_unknown(&mut self, t: Taint) {
        self.blanket = self.blanket.join(t);
        let joined: Vec<(u32, Taint)> =
            self.tracked.iter().map(|(&a, &v)| (a, v.join(t))).collect();
        self.tracked.clear();
        for (a, v) in joined {
            if v != self.blanket {
                self.tracked.insert(a, v);
            }
        }
    }

    fn join_from(&mut self, o: &MemTaint) -> bool {
        let before = self.clone();
        let keys: Vec<u32> = self.tracked.keys().chain(o.tracked.keys()).copied().collect();
        let blanket = self.blanket.join(o.blanket);
        let mut tracked = BTreeMap::new();
        for k in keys {
            let v = self.word(k).join(o.word(k));
            if v != blanket {
                tracked.insert(k, v);
            }
        }
        self.blanket = blanket;
        self.tracked = tracked;
        if self.tracked.len() > MAX_TRACKED {
            self.blanket = self.any();
            self.tracked.clear();
        }
        *self != before
    }
}

/// Combined fixpoint state: the constant domain (for address
/// resolution, exactly as `analyze_dataflow` computes it) plus the
/// taint image of registers and monitored memory.
#[derive(Clone, PartialEq, Eq)]
struct State {
    consts: ConstState,
    regs: [Taint; NUM_REGS],
    mem: MemTaint,
}

impl State {
    fn entry() -> State {
        // Core reset zeroes every shadow tag and memory tag.
        State {
            consts: ConstState::entry(),
            regs: [Taint::Untainted; NUM_REGS],
            mem: MemTaint::untainted(),
        }
    }

    fn tag(&self, r: Reg) -> Taint {
        if r.is_zero() {
            Taint::Untainted // `%g0`'s shadow tag is hardwired 0
        } else {
            self.regs[r.index()]
        }
    }

    fn set_tag(&mut self, r: Reg, t: Taint) {
        if !r.is_zero() {
            self.regs[r.index()] = t;
        }
    }

    fn op2_tag(&self, op2: Operand2) -> Taint {
        match op2 {
            Operand2::Reg(r) => self.tag(r),
            Operand2::Imm(_) => Taint::Untainted,
        }
    }
}

/// What a call-site → return-point edge assumes about the callee.
#[derive(Clone, Copy)]
struct Summary {
    /// Bitmask of registers the callee (transitively) may write.
    writes: u32,
    /// Whether the callee (transitively) may store.
    has_store: bool,
}

const WORST_SUMMARY: Summary = Summary { writes: u32::MAX, has_store: true };

/// Result of [`analyze_taint`].
#[derive(Clone, Debug, Default)]
pub struct TaintReport {
    /// Taint-sink findings ([`Rule::TaintedJump`], [`Rule::TaintedStore`]),
    /// sorted by `(addr, rule, severity)` and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// PCs whose dynamic DIFT step is statically proven a no-op on
    /// every path reaching them (sorted, deduplicated).
    pub dift_elidable: Vec<u32>,
    /// `true` when a reachable `cpop` or unresolvable indirect jump
    /// forfeited the elision set (the report is then empty).
    pub forfeited: bool,
}

/// Runs the taint fixpoint over `program`'s recovered CFG.
pub fn analyze_taint(program: &Program) -> TaintReport {
    let (cfg, _) = build_cfg(program);
    analyze_taint_cfg(&cfg)
}

/// Runs the taint fixpoint over an already-recovered CFG (what
/// `flexcheck` uses after `analyze_program`).
pub fn analyze_taint_cfg(cfg: &Cfg) -> TaintReport {
    let Some(entry) = cfg.entry() else {
        return TaintReport::default();
    };
    if forfeits(cfg) {
        return TaintReport { forfeited: true, ..TaintReport::default() };
    }
    let summaries = call_summaries(cfg);

    // ---- fixpoint ---------------------------------------------------
    let nblocks = cfg.blocks().len();
    let mut states: Vec<Option<State>> = vec![None; nblocks];
    let mut join_counts: Vec<u32> = vec![0; nblocks];
    states[entry] = Some(State::entry());
    let mut work = vec![entry];
    while let Some(b) = work.pop() {
        let Some(in_state) = states[b].clone() else { continue };
        let block = &cfg.blocks()[b];
        let mut s = in_state;
        for (pc, inst) in &block.insts {
            transfer(&mut s, *pc, inst);
        }
        for edge in &block.succs {
            let mut t = s.clone();
            refine_edge(&mut t.consts, edge);
            if let Some((dpc, dinst)) = &edge.delay {
                transfer(&mut t, *dpc, dinst);
            }
            if edge.call_return {
                apply_summary(&mut t, summaries.get(&b).copied().unwrap_or(WORST_SUMMARY));
            }
            match &mut states[edge.to] {
                Some(dst) => {
                    join_counts[edge.to] += 1;
                    if join_state(dst, &t, join_counts[edge.to] > WIDEN_LIMIT) {
                        work.push(edge.to);
                    }
                }
                None => {
                    states[edge.to] = Some(t);
                    work.push(edge.to);
                }
            }
        }
    }

    // ---- replay: per-PC verdicts and sink diagnostics ---------------
    // A PC seen on several paths (delay slots live on edges, blocks can
    // be re-entered) is elidable only if *every* occurrence proves it.
    let mut verdicts: BTreeMap<u32, bool> = BTreeMap::new();
    let mut sinks: BTreeMap<(u32, &'static str), Diagnostic> = BTreeMap::new();
    let mut record = |s: &State, pc: u32, inst: &Instruction| {
        if let Some(v) = elidable(s, inst) {
            verdicts.entry(pc).and_modify(|e| *e &= v).or_insert(v);
        }
        for d in sink_diags(s, pc, inst) {
            sinks.entry((pc, d.rule.id())).or_insert(d);
        }
    };
    for (b, block) in cfg.blocks().iter().enumerate() {
        let Some(in_state) = &states[b] else { continue };
        let mut s = in_state.clone();
        for (pc, inst) in &block.insts {
            record(&s, *pc, inst);
            transfer(&mut s, *pc, inst);
        }
        for edge in &block.succs {
            if let Some((dpc, dinst)) = &edge.delay {
                let mut t = s.clone();
                refine_edge(&mut t.consts, edge);
                record(&t, *dpc, dinst);
            }
        }
    }

    let mut diagnostics: Vec<Diagnostic> = sinks.into_values().collect();
    diagnostics.sort_by_key(|d| (d.addr, d.rule.id(), d.severity));
    diagnostics.dedup();
    let dift_elidable: Vec<u32> =
        verdicts.into_iter().filter(|&(_, v)| v).map(|(pc, _)| pc).collect();
    TaintReport { diagnostics, dift_elidable, forfeited: false }
}

/// Whether the static model must give up: a reachable `cpop` (taint
/// and policy are then software-driven) or an indirect jump that is
/// not a plain `ret`/`retl` (its dynamic successor is unmodeled, so
/// in-states downstream could be unsound).
fn forfeits(cfg: &Cfg) -> bool {
    let bad = |inst: &Instruction| match *inst {
        Instruction::Cpop { .. } => true,
        Instruction::Jmpl { rd, rs1, .. } => !(rd == Reg::G0 && (rs1 == Reg::O7 || rs1 == Reg::I7)),
        _ => false,
    };
    cfg.blocks().iter().any(|b| {
        b.insts.iter().any(|(_, i)| bad(i))
            || b.succs.iter().any(|e| e.delay.as_ref().is_some_and(|(_, i)| bad(i)))
    })
}

/// Per-call-block callee summaries: reachable code from the call
/// target, all edges followed (a sound over-approximation of what the
/// callee may execute before control re-emerges).
fn call_summaries(cfg: &Cfg) -> BTreeMap<usize, Summary> {
    let blocks = cfg.blocks();
    let mut by_target: BTreeMap<u32, Summary> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (idx, block) in blocks.iter().enumerate() {
        let Some(&(pc, Instruction::Call { disp30 })) = block.insts.last() else { continue };
        let target = pc.wrapping_add((disp30 as u32) << 2);
        let summary = *by_target.entry(target).or_insert_with(|| summarize(blocks, target));
        out.insert(idx, summary);
    }
    out
}

fn summarize(blocks: &[Block], target: u32) -> Summary {
    let Some(start) = blocks.iter().position(|b| b.start == target) else {
        return WORST_SUMMARY;
    };
    let mut seen = vec![false; blocks.len()];
    let mut work = vec![start];
    let mut writes = 0u32;
    let mut has_store = false;
    let mut absorb = |inst: &Instruction| {
        for r in write_regs(inst) {
            writes |= 1 << r.index();
        }
        if let Instruction::Mem { op, .. } = *inst {
            if op.is_store() || op == Opcode::Swap {
                has_store = true;
            }
        }
    };
    while let Some(b) = work.pop() {
        if std::mem::replace(&mut seen[b], true) {
            continue;
        }
        for (_, inst) in &blocks[b].insts {
            absorb(inst);
        }
        for edge in &blocks[b].succs {
            if let Some((_, inst)) = &edge.delay {
                absorb(inst);
            }
            work.push(edge.to);
        }
    }
    Summary { writes, has_store }
}

fn apply_summary(s: &mut State, sum: Summary) {
    for i in 1..NUM_REGS {
        if sum.writes & (1 << i) != 0 {
            s.regs[i] = Taint::Top;
        }
    }
    if sum.has_store {
        s.mem = MemTaint::top();
    }
    // The value domain matches the constant pass: callee clobbered
    // register values and flags.
    s.consts.regs = [TOP; NUM_REGS];
    s.consts.icc = None;
    s.consts.cmp = None;
}

fn join_state(dst: &mut State, src: &State, widen: bool) -> bool {
    let mut changed = false;
    for i in 0..NUM_REGS {
        let h = if widen { TOP } else { dst.consts.regs[i].hull(src.consts.regs[i]) };
        if h != dst.consts.regs[i] {
            dst.consts.regs[i] = h;
            changed = true;
        }
        let j = dst.regs[i].join(src.regs[i]);
        if j != dst.regs[i] {
            dst.regs[i] = j;
            changed = true;
        }
    }
    if dst.consts.icc != src.consts.icc && dst.consts.icc.is_some() {
        dst.consts.icc = None;
        changed = true;
    }
    if dst.consts.cmp != src.consts.cmp && dst.consts.cmp.is_some() {
        dst.consts.cmp = None;
        changed = true;
    }
    if dst.mem.join_from(&src.mem) {
        changed = true;
    }
    changed
}

/// Static effective-address interval of a memory access.
fn ea_of(s: &State, rs1: Reg, op2: Operand2) -> Interval {
    s.consts.get(rs1).add(s.consts.operand2(op2))
}

/// The taint a load pulls out of `ea` — mirrors the dynamic monitor:
/// only addresses below `META_BASE` read memory tags; the meta region
/// reads back tag 0; the console region is the static taint *source*
/// (an over-approximation — the dynamic monitor tags console reads 0,
/// so `Untainted` verdicts stay sound).
fn load_taint(s: &State, ea: Interval, bytes: u32) -> Taint {
    if ea.lo >= CONSOLE_BASE {
        Taint::Tainted
    } else if ea.lo >= META_BASE {
        if ea.hi < CONSOLE_BASE {
            Taint::Untainted
        } else {
            Taint::Top
        }
    } else if ea.hi < META_BASE {
        match ea.as_exact() {
            Some(a) => covered_words(a, bytes).fold(Taint::Untainted, |t, w| t.or(s.mem.word(w))),
            None => s.mem.any(),
        }
    } else {
        Taint::Top
    }
}

/// Word addresses a `bytes`-wide access at `addr` covers (per-word tag
/// granularity: sub-word accesses cover their word, `ldd`/`std` two).
fn covered_words(addr: u32, bytes: u32) -> impl Iterator<Item = u32> {
    let first = addr & !3;
    let last = addr.wrapping_add(bytes.max(1) - 1) & !3;
    (0..=(last.wrapping_sub(first) / 4)).map(move |i| first.wrapping_add(i * 4))
}

/// One instruction's taint effect, mirroring `Dift::process` (then the
/// constant transfer, so addresses keep resolving).
fn transfer(s: &mut State, pc: u32, inst: &Instruction) {
    match *inst {
        Instruction::Alu { rd, rs1, op2, .. } => {
            let t = s.tag(rs1).or(s.op2_tag(op2));
            s.set_tag(rd, t);
        }
        Instruction::Sethi { rd, .. } => s.set_tag(rd, Taint::Untainted),
        Instruction::Call { .. } => s.set_tag(Reg::O7, Taint::Untainted),
        Instruction::Jmpl { rd, .. } => s.set_tag(rd, Taint::Untainted),
        Instruction::Mem { op, rd, rs1, op2 } => {
            let ea = ea_of(s, rs1, op2);
            let bytes = op.access_bytes().unwrap_or(4);
            if op == Opcode::Swap {
                let old = s.tag(rd);
                if ea.hi < META_BASE {
                    match ea.as_exact() {
                        Some(a) => {
                            s.set_tag(rd, s.mem.word(a));
                            s.mem.set_word(a, old);
                        }
                        None => {
                            s.set_tag(rd, Taint::Top);
                            s.mem.store_unknown(old);
                        }
                    }
                } else if ea.lo >= META_BASE {
                    s.set_tag(rd, Taint::Untainted);
                } else {
                    s.set_tag(rd, Taint::Top);
                    s.mem.store_unknown(old);
                }
            } else if op.is_load() {
                let t = load_taint(s, ea, bytes);
                s.set_tag(rd, t);
                if op == Opcode::Ldd {
                    if let Some(hi) = pair_of(rd) {
                        s.set_tag(hi, t);
                    }
                }
            } else {
                // Store: tags reach memory only below META_BASE.
                let mut t = s.tag(rd);
                if op == Opcode::Std {
                    if let Some(hi) = pair_of(rd) {
                        t = t.or(s.tag(hi));
                    }
                }
                if ea.lo < META_BASE {
                    match ea.as_exact() {
                        Some(a) if ea.hi < META_BASE => {
                            for w in covered_words(a, bytes) {
                                s.mem.set_word(w, t);
                            }
                        }
                        _ => s.mem.store_unknown(t),
                    }
                }
            }
        }
        // Forfeited before the fixpoint ever runs; smash anyway.
        Instruction::Cpop { .. } => {
            s.regs = [Taint::Top; NUM_REGS];
            s.mem = MemTaint::top();
        }
        Instruction::Branch { .. } | Instruction::Trap { .. } => {}
    }
    const_transfer(&mut s.consts, pc, inst);
}

/// Whether the dynamic DIFT step for `inst` in pre-state `s` is a
/// proven no-op. `None` for classes DIFT never sees forwarded.
///
/// The rules mirror `Dift::process` exactly: a tag *write* is a no-op
/// when the value written is provably 0 and the destination tag is
/// provably already 0 (or the destination is `%g0`, whose shadow tag is
/// hardwired); the `jmpl` *check* cannot trap when the target register
/// is provably untainted.
fn elidable(s: &State, inst: &Instruction) -> Option<bool> {
    let dst_clean = |rd: Reg| rd.is_zero() || s.tag(rd).clean();
    match *inst {
        Instruction::Alu { rd, rs1, op2, .. } => {
            Some(rd.is_zero() || (s.tag(rs1).clean() && s.op2_tag(op2).clean() && dst_clean(rd)))
        }
        Instruction::Sethi { rd, .. } => Some(dst_clean(rd)),
        Instruction::Call { .. } => Some(s.tag(Reg::O7).clean()),
        Instruction::Jmpl { rd, rs1, .. } => Some(s.tag(rs1).clean() && dst_clean(rd)),
        Instruction::Mem { op, rd, rs1, op2 } => {
            let ea = ea_of(s, rs1, op2);
            let bytes = op.access_bytes().unwrap_or(4);
            if op == Opcode::Swap {
                Some(false)
            } else if op.is_load() {
                let pair_clean = op != Opcode::Ldd
                    || pair_of(rd).is_none_or(|hi| hi.is_zero() || s.tag(hi).clean());
                Some(load_taint(s, ea, bytes).clean() && dst_clean(rd) && pair_clean)
            } else {
                if ea.lo >= META_BASE {
                    return Some(true); // never monitored: DIFT does nothing
                }
                let mut t = s.tag(rd);
                if op == Opcode::Std {
                    if let Some(hi) = pair_of(rd) {
                        t = t.or(s.tag(hi));
                    }
                }
                let target = match ea.as_exact() {
                    Some(a) if ea.hi < META_BASE => {
                        covered_words(a, bytes).fold(Taint::Untainted, |x, w| x.or(s.mem.word(w)))
                    }
                    _ => s.mem.any(),
                };
                Some(t.clean() && target.clean())
            }
        }
        Instruction::Cpop { .. } => Some(false),
        Instruction::Branch { .. } | Instruction::Trap { .. } => None,
    }
}

/// Sink diagnostics: must-taint reaching an indirect jump (the dynamic
/// trap site) or escaping through a store.
fn sink_diags(s: &State, pc: u32, inst: &Instruction) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match *inst {
        Instruction::Jmpl { rs1, .. } if s.tag(rs1) == Taint::Tainted => {
            out.push(Diagnostic::new(
                Rule::TaintedJump,
                Some(pc),
                format!("indirect jump through {rs1} carries input-derived taint"),
            ));
        }
        Instruction::Mem { op, rd, .. } if op.is_store() && s.tag(rd) == Taint::Tainted => {
            out.push(Diagnostic::new(
                Rule::TaintedStore,
                Some(pc),
                format!("store of input-derived taint from {rd}"),
            ));
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    fn taint_of(src: &str) -> TaintReport {
        analyze_taint(&assemble(src).expect("test source assembles"))
    }

    #[test]
    fn straight_line_clean_code_is_fully_elidable() {
        let r = taint_of(
            "start: mov 10, %l0
                    add %l0, 2, %l1
                    nop
                    ta 0",
        );
        assert!(!r.forfeited);
        // mov, add, nop all write provably-clean tags over clean tags.
        assert_eq!(r.dift_elidable.len(), 3, "{:?}", r.dift_elidable);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn console_load_taints_and_blocks_elision() {
        let r = taint_of(
            "start: sethi 0x3fffc0, %l0     ! %l0 = 0xffff0000 (console)
                    ld [%l0], %l1           ! taint source
                    add %l1, 1, %l2         ! propagates
                    st %l2, [%l0]
                    ta 0",
        );
        assert!(!r.forfeited);
        // The console load writes a tainted tag: not elidable.  Nor is
        // the add that propagates it.
        let elided: Vec<u32> = r.dift_elidable.clone();
        let base = 0x1000; // programs assemble at 0x1000 by default
        assert!(!elided.contains(&(base + 4)), "console load must stay checked: {elided:?}");
        assert!(!elided.contains(&(base + 8)), "taint propagation must stay checked: {elided:?}");
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::TaintedStore), "{:?}", r.diagnostics);
    }

    #[test]
    fn clean_leaf_call_keeps_return_elidable() {
        let r = taint_of(
            "start: call fn1
                    nop
                    ta 0
             fn1:   retl
                    nop",
        );
        assert!(!r.forfeited);
        // The retl's jmpl check is elidable: %o7 was written by `call`
        // (clean) and the callee writes nothing else.
        let p = assemble("start: call fn1\n nop\n ta 0\n fn1: retl\n nop").unwrap();
        let retl_pc = p.base() + 12;
        assert!(r.dift_elidable.contains(&retl_pc), "{:?}", r.dift_elidable);
    }

    #[test]
    fn cpop_forfeits_everything() {
        let r = taint_of(
            "start: cpop1 0, %g0, %g0, %g0
                    nop
                    ta 0",
        );
        assert!(r.forfeited);
        assert!(r.dift_elidable.is_empty());
    }

    #[test]
    fn callee_stores_smash_memory_taint() {
        // After a call to a storing callee the memory image is ⊤, so a
        // monitored load downstream is not elidable even though it was
        // before the call.
        let r = taint_of(
            "start: set buf, %l0
                    st %g0, [%l0]
                    ld [%l0], %l1       ! elidable: exact clean word
                    call fn1
                    nop
                    ld [%l0], %l2       ! NOT elidable: callee may have stored taint
                    ta 0
             fn1:   set buf, %o0
                    retl
                    st %o0, [%o0]
             buf:   .space 8",
        );
        assert!(!r.forfeited);
        let p = assemble("start: ta 0").unwrap();
        let base = p.base();
        assert!(r.dift_elidable.contains(&(base + 12)), "pre-call load: {:?}", r.dift_elidable);
        assert!(!r.dift_elidable.contains(&(base + 28)), "post-call load: {:?}", r.dift_elidable);
    }

    #[test]
    fn report_is_deterministic() {
        let src = "start: set buf, %l0
                    ld [%l0], %l1
                    cmp %l1, 3
                    be done
                    nop
                    st %l1, [%l0]
             done:  ta 0
             buf:   .space 4";
        let a = taint_of(src);
        let b = taint_of(src);
        assert_eq!(a.dift_elidable, b.dift_elidable);
        assert_eq!(format!("{:?}", a.diagnostics), format!("{:?}", b.diagnostics));
    }
}
