/root/repo/target/debug/deps/flexsim-24548521dc01c77c.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/libflexsim-24548521dc01c77c.rmeta: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
