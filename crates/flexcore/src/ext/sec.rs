//! Soft Error Check (SEC).

use flexcore_fabric::{Net, Netlist, NetlistBuilder};
use flexcore_isa::{Instruction, Opcode};
use flexcore_pipeline::TracePacket;

use crate::ext::{ExtEnv, Extension, ExtensionDescriptor, MonitorTrap};
use crate::interface::{Cfgr, ForwardPolicy};

/// Soft Error Check: verifies the main core's ALU results by
/// re-executing each forwarded ALU operation on the fabric (§IV.D),
/// as in Argus. Additions, subtractions, logic ops, and shifts are
/// verified bit-for-bit; multiplications and divisions are verified
/// with modular arithmetic (mod the Mersenne number 3).
#[derive(Clone, Debug, Default)]
pub struct Sec {
    checked: u64,
    residue_checked: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Sec {
    /// Creates the extension.
    pub fn new() -> Sec {
        Sec::default()
    }

    /// Number of exactly re-executed operations so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of residue-checked (mul/div) operations so far.
    pub fn residue_checked(&self) -> u64 {
        self.residue_checked
    }

    fn mod3(x: u32) -> u32 {
        // Digit-sum in base 4: 4 ≡ 1 (mod 3), so summing 2-bit digits
        // preserves the residue — exactly what the fabric tree does.
        let mut v = x;
        while v > 3 {
            let mut s = 0;
            while v > 0 {
                s += v & 3;
                v >>= 2;
            }
            v = s;
        }
        if v == 3 {
            0
        } else {
            v
        }
    }
}

impl Extension for Sec {
    fn name(&self) -> &'static str {
        "SEC"
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.checked, self.residue_checked]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [checked, residue_checked] = *state {
            self.checked = checked;
            self.residue_checked = residue_checked;
        }
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "SEC",
            name: "Soft Error Check",
            meta_data: &[],
            transparent_ops: &["Check an ALU operation"],
            sw_visible_ops: &["Exception when a check fails"],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new().with_classes(|c| c.is_alu(), ForwardPolicy::Always)
    }

    fn pipeline_stages(&self) -> u32 {
        6
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        let _ = &env; // SEC keeps no meta-data (Table I).
        let Instruction::Alu { op, .. } = pkt.inst else {
            return Ok(None);
        };
        let (a, b, res) = (pkt.srcv1, pkt.srcv2, pkt.result);
        let ok = match op {
            Opcode::Umul | Opcode::Smul => {
                // Residue check against the recomputed low product.
                // (Checking the full 64-bit product would need the `%y`
                // register, which the core model omits; the low-word
                // recomputation keeps the check sound while still only
                // comparing mod-3 residues, so ±3 faults escape as with
                // real residue codes.)
                self.residue_checked += 1;
                Sec::mod3(res) == Sec::mod3(a.wrapping_mul(b))
            }
            Opcode::Udiv | Opcode::Sdiv => {
                // Multiply-back verification as in Argus: the checker
                // recomputes q*b + r and compares residues with a.
                // Exact arithmetic in i128 — wrapping at 2^32 would
                // break the mod-3 homomorphism since 2^32 ≡ 1 (mod 3).
                self.residue_checked += 1;
                if b == 0 {
                    true // the core traps on its own; nothing to check
                } else {
                    let r3 = |x: i128| x.rem_euclid(3);
                    let (ai, bi, qi) = if op == Opcode::Udiv {
                        (i128::from(a), i128::from(b), i128::from(res))
                    } else {
                        (i128::from(a as i32), i128::from(b as i32), i128::from(res as i32))
                    };
                    let rem = ai % bi; // the checker's own remainder unit
                    r3(ai) == (r3(qi) * r3(bi) + r3(rem)) % 3
                }
            }
            _ => {
                // Exact re-execution for add/sub/logic/shift families.
                self.checked += 1;
                match crate::ext::sec::reexecute(op, a, b) {
                    Some(expect) => expect == res,
                    None => true,
                }
            }
        };
        if ok {
            Ok(None)
        } else {
            Err(MonitorTrap {
                pc: pkt.pc,
                reason: format!(
                    "ALU result mismatch for {}: {:#010x} op {:#010x} -> {:#010x}",
                    op, a, b, res
                ),
            })
        }
    }

    /// The SEC datapath (§IV.D, Figure 3d): a full 32-bit adder and
    /// subtractor, a logic unit, a barrel shifter, mod-3 residue trees
    /// for multiply/divide checking, and the final comparator — by far
    /// the largest extension, matching the paper's Table III.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: a[32], b[32], res[32], opsel[5].
        let mut s = Vec::with_capacity(101);
        super::push_bits(&mut s, pkt.srcv1, 32);
        super::push_bits(&mut s, pkt.srcv2, 32);
        super::push_bits(&mut s, pkt.result, 32);
        super::push_bits(&mut s, pkt.class.index() as u32, 5);
        s
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("sec");
        let a_in = b.input_bus(32);
        let b_in = b.input_bus(32);
        let res_in = b.input_bus(32);
        let opsel = b.input_bus(5);

        // Stage 1 registers.
        let a = b.register_bus(&a_in);
        let bb = b.register_bus(&b_in);
        let res = b.register_bus(&res_in);
        let op = b.register_bus(&opsel);

        // Re-execution units.
        let (sum, _) = b.add(&a, &bb);
        let (diff, _) = b.sub(&a, &bb);
        let and_u = b.bitwise(&a, &bb, |s, x, y| s.and(x, y));
        let or_u = b.bitwise(&a, &bb, |s, x, y| s.or(x, y));
        let xor_u = b.bitwise(&a, &bb, |s, x, y| s.xor(x, y));
        let shamt: Vec<_> = bb[0..5].to_vec();
        let shr = b.shift_right(&a, &shamt);

        // Select the expected result by opcode (one-hot from a 3-bit
        // subset of the opcode selector).
        let sel_bits: Vec<_> = op[0..3].to_vec();
        let onehot = b.decoder(&sel_bits);
        let mut expect = b.constant_bus(0, 32);
        for (i, unit) in [&sum, &diff, &and_u, &or_u, &xor_u, &shr].into_iter().enumerate() {
            expect = b.mux_bus(onehot[i], &expect, unit);
        }
        let expect_r = b.register_bus(&expect);
        let res_r = b.register_bus(&res);

        // Exact comparison.
        let exact_ok = b.eq(&expect_r, &res_r);

        // Residue path: mod-3 of a, b, res via 2-bit digit-sum trees,
        // a 2x2-bit residue multiplier, and a residue comparator.
        let ra = mod3_tree(&mut b, &a);
        let rb = mod3_tree(&mut b, &bb);
        let rr = mod3_tree(&mut b, &res);
        // Residue multiplier: (ra * rb) on 2-bit values -> 4-bit
        // product, folded mod 3.
        let p0 = b.and(ra[0], rb[0]);
        let p1a = b.and(ra[1], rb[0]);
        let p1b = b.and(ra[0], rb[1]);
        let p1 = b.xor(p1a, p1b);
        let p1c = b.and(p1a, p1b);
        let p2a = b.and(ra[1], rb[1]);
        let p2 = b.xor(p2a, p1c);
        let p3 = b.and(p2a, p1c);
        let d0 = [p0, p1];
        let d1 = [p2, p3];
        let prod_mod = fold_mod3(&mut b, &d0, &d1);
        let residue_ok = b.eq(&prod_mod, &rr);

        // Final verdict: pick the check by op class (bit 3 of the
        // selector distinguishes mul/div).
        let is_muldiv = op[3];
        let is_muldiv_r = b.register(is_muldiv);
        let ok = b.mux(is_muldiv_r, exact_ok, residue_ok);
        let nok = b.not(ok);
        let trap = b.register(nok);
        b.output("trap", trap);

        b.finish()
    }
}

/// Adds two 2-bit mod-3 residues: a 3-bit add followed by up to two
/// subtract-3 correction steps (structurally what the fabric tree
/// does).
fn fold_mod3(b: &mut NetlistBuilder, x: &[Net], y: &[Net]) -> Vec<Net> {
    let zero = b.constant(false);
    let x3 = vec![x[0], x[1], zero];
    let y3 = vec![y[0], y[1], zero];
    let (s, _) = b.add(&x3, &y3);
    let three = b.constant_bus(3, 3);
    let (sm3, borrow) = b.sub(&s, &three);
    let ge3 = b.not(borrow);
    let folded = b.mux_bus(ge3, &s, &sm3);
    let (sm6, borrow2) = b.sub(&folded, &three);
    let ge3b = b.not(borrow2);
    let f2 = b.mux_bus(ge3b, &folded, &sm6);
    vec![f2[0], f2[1]]
}

/// Reduces a 32-bit bus modulo 3 by summing base-4 digits in a tree
/// (4 ≡ 1 mod 3).
fn mod3_tree(b: &mut NetlistBuilder, x: &[Net]) -> Vec<Net> {
    let mut digits: Vec<Vec<Net>> = x.chunks(2).map(|c| c.to_vec()).collect();
    while digits.len() > 1 {
        let mut next = Vec::new();
        for pair in digits.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
                continue;
            }
            next.push(fold_mod3(b, &pair[0], &pair[1]));
        }
        digits = next;
    }
    digits.pop().expect("nonempty bus")
}

/// Exact re-execution of the directly checkable ALU subset. Returns
/// `None` for opcodes SEC checks by residue instead.
pub(crate) fn reexecute(op: Opcode, a: u32, b: u32) -> Option<u32> {
    use Opcode::*;
    Some(match op {
        Add | Addcc | Save | Restore => a.wrapping_add(b),
        Sub | Subcc => a.wrapping_sub(b),
        And | Andcc => a & b,
        Or | Orcc => a | b,
        Xor | Xorcc => a ^ b,
        Andn | Andncc => a & !b,
        Orn | Orncc => a | !b,
        Xnor | Xnorcc => !(a ^ b),
        Sll => a.wrapping_shl(b & 31),
        Srl => a.wrapping_shr(b & 31),
        Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{alu_packet, env_parts};
    use flexcore_isa::{InstrClass, Reg};

    fn check(op: Opcode, a: u32, b: u32, res: u32) -> Result<Option<u32>, MonitorTrap> {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut sec = Sec::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        sec.process(&alu_packet(op, Reg::O0, Reg::O1, Reg::O2, a, b, res), &mut env)
    }

    #[test]
    fn correct_results_pass() {
        assert!(check(Opcode::Add, 5, 7, 12).is_ok());
        assert!(check(Opcode::Sub, 5, 7, (-2i32) as u32).is_ok());
        assert!(check(Opcode::Xor, 0xff00, 0x0ff0, 0xf0f0).is_ok());
        assert!(check(Opcode::Sll, 1, 4, 16).is_ok());
        assert!(check(Opcode::Sra, 0x8000_0000, 4, 0xf800_0000).is_ok());
    }

    #[test]
    fn single_bit_flips_are_caught() {
        for bit in [0, 7, 15, 31] {
            let bad = 12u32 ^ (1 << bit);
            let err = check(Opcode::Add, 5, 7, bad).unwrap_err();
            assert!(err.reason.contains("mismatch"), "bit {bit}");
        }
    }

    #[test]
    fn multiplication_checked_by_residue() {
        assert!(check(Opcode::Umul, 1234, 5678, 1234u32.wrapping_mul(5678)).is_ok());
        // A fault that changes the residue is caught...
        assert!(check(Opcode::Umul, 1234, 5678, 1234u32.wrapping_mul(5678) + 1).is_err());
        // ...but one that preserves it (±3) escapes — the documented
        // limitation of mod-3 checking.
        assert!(check(Opcode::Umul, 1234, 5678, 1234u32.wrapping_mul(5678) + 3).is_ok());
    }

    #[test]
    fn division_checked_by_inverse_relation() {
        assert!(check(Opcode::Udiv, 100, 7, 14).is_ok());
        assert!(check(Opcode::Udiv, 100, 7, 15).is_err());
        assert!(check(Opcode::Sdiv, (-100i32) as u32, 7, (-14i32) as u32).is_ok());
    }

    #[test]
    fn mod3_digit_sum_is_correct() {
        for x in [0u32, 1, 2, 3, 4, 5, 254, 255, 256, 0xffff_ffff, 0x8000_0001] {
            assert_eq!(Sec::mod3(x), x % 3, "{x}");
        }
    }

    #[test]
    fn counters_distinguish_check_kinds() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut sec = Sec::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        sec.process(&alu_packet(Opcode::Add, Reg::O0, Reg::O1, Reg::O2, 1, 2, 3), &mut env)
            .unwrap();
        sec.process(&alu_packet(Opcode::Umul, Reg::O0, Reg::O1, Reg::O2, 2, 3, 6), &mut env)
            .unwrap();
        assert_eq!(sec.checked(), 1);
        assert_eq!(sec.residue_checked(), 1);
    }

    #[test]
    fn cfgr_forwards_only_alu_classes() {
        let c = Sec::new().cfgr();
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Mul), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::St), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::Jmpl), ForwardPolicy::Ignore);
    }

    #[test]
    fn netlist_is_the_largest_extension() {
        let sl = flexcore_fabric::map_to_luts(&Sec::new().netlist(), 6).lut_count();
        let bl = flexcore_fabric::map_to_luts(&crate::ext::Bc::new().netlist(), 6).lut_count();
        assert!(sl > bl, "SEC {sl} LUTs vs BC {bl}");
    }
}
