//! Control-flow graph recovery over assembled program images.
//!
//! The CFG is recovered by reachability-driven disassembly: a worklist
//! walk from the program entry that follows branch targets and
//! fall-throughs, so data words interleaved with code (`.word` tables,
//! `.space` buffers) are never mis-decoded as instructions.
//!
//! SPARC delay slots are modeled on the **edges**: a block ends at a
//! control-transfer instruction (CTI), and each outgoing edge carries
//! the delay-slot instruction *if it executes along that edge* — taken
//! and fall-through edges of a plain conditional branch both carry it,
//! the fall-through edge of an annulling branch (`b<cond>,a`) does not,
//! and `ba,a` annuls its slot on the only edge there is.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use flexcore_asm::Program;
use flexcore_isa::{decode, Cond, Instruction, Reg};

use crate::diag::{Diagnostic, Rule};

/// How a basic block ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TermKind {
    /// Falls through into the next block (split at a join point).
    FallsThrough,
    /// Ends at a branch or call.
    Branch,
    /// Ends at an unconditional trap (`ta` — the workloads' halt).
    Halt,
    /// Ends at an indirect jump (`jmpl`, including `ret`/`retl`).
    Return,
    /// Execution runs off the image or into an undecodable word.
    Invalid,
}

/// One outgoing control-flow edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Destination block index.
    pub to: usize,
    /// The delay-slot instruction executed along this edge, if any.
    pub delay: Option<(u32, Instruction)>,
    /// True for the call-site → return-point edge of a `call`: value
    /// analyses must assume the callee clobbered register *values*
    /// (initialization state survives — a callee never de-initializes
    /// a register).
    pub call_return: bool,
    /// For a *conditional* branch, the condition and whether this is
    /// the taken edge — value analyses refine ranges from it (`cmp
    /// %r, k; bl target` bounds `%r` on both edges). `None` for
    /// unconditional control flow.
    pub branch: Option<(Cond, bool)>,
}

/// A basic block: straight-line instructions ending at a CTI, a halt,
/// or a join point.
#[derive(Clone, Debug)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Instructions in order, including the terminating CTI (but not
    /// its delay slot — that lives on the edges).
    pub insts: Vec<(u32, Instruction)>,
    /// How the block ends.
    pub term: TermKind,
    /// Outgoing edges.
    pub succs: Vec<Edge>,
    /// Predecessor block indices (unordered, deduplicated).
    pub preds: Vec<usize>,
}

/// The recovered control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    base: u32,
    end: u32,
    entry: Option<usize>,
    blocks: Vec<Block>,
    code_addrs: BTreeSet<u32>,
}

impl Cfg {
    /// All basic blocks, sorted by start address.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the entry block (`None` for an empty or undecodable
    /// program).
    pub fn entry(&self) -> Option<usize> {
        self.entry
    }

    /// Load address of the first image byte.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the last image byte.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Whether `addr` holds a reachable instruction (including delay
    /// slots).
    pub fn is_code(&self, addr: u32) -> bool {
        self.code_addrs.contains(&addr)
    }

    /// Number of reachable instructions (including delay slots).
    pub fn code_len(&self) -> usize {
        self.code_addrs.len()
    }
}

/// One successor of a CTI, before block indices exist.
#[derive(Clone, Copy)]
struct RawEdge {
    to: u32,
    delay: bool,
    call_return: bool,
    branch: Option<(Cond, bool)>,
}

impl RawEdge {
    fn plain(to: u32) -> Self {
        RawEdge { to, delay: false, call_return: false, branch: None }
    }
}

/// The computed successor set of one CTI, before block indices exist.
struct RawTerm {
    kind: TermKind,
    succs: Vec<RawEdge>,
    delay: Option<(u32, Instruction)>,
}

/// Builds the CFG and reports structural diagnostics (delay-slot
/// hazards, bad targets, unreachable code).
pub fn build_cfg(program: &Program) -> (Cfg, Vec<Diagnostic>) {
    let base = program.base();
    let words = program.words();
    let end = base + (words.len() as u32) * 4;
    let inst_at = |addr: u32| -> Option<Result<Instruction, u32>> {
        if addr < base || addr >= end || !addr.is_multiple_of(4) {
            return None;
        }
        let w = words[((addr - base) / 4) as usize];
        Some(decode(w).map_err(|_| w))
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut visited: BTreeMap<u32, Instruction> = BTreeMap::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut delay_addrs: BTreeSet<u32> = BTreeSet::new();
    let mut terms: HashMap<u32, RawTerm> = HashMap::new();
    let mut worklist: Vec<u32> = Vec::new();

    let entry_addr = program.entry();
    leaders.insert(entry_addr);
    worklist.push(entry_addr);

    while let Some(start) = worklist.pop() {
        if visited.contains_key(&start) {
            continue;
        }
        let mut pc = start;
        loop {
            let inst = match inst_at(pc) {
                None => {
                    diags.push(Diagnostic::new(
                        Rule::FallsOffImage,
                        Some(pc),
                        format!("execution reaches {pc:#010x}, outside the loaded image"),
                    ));
                    terms.insert(
                        pc,
                        RawTerm { kind: TermKind::Invalid, succs: vec![], delay: None },
                    );
                    break;
                }
                Some(Err(word)) => {
                    diags.push(Diagnostic::new(
                        Rule::FallsOffImage,
                        Some(pc),
                        format!(
                            "execution reaches undecodable word {word:#010x} (data run as code?)"
                        ),
                    ));
                    terms.insert(
                        pc,
                        RawTerm { kind: TermKind::Invalid, succs: vec![], delay: None },
                    );
                    break;
                }
                Some(Ok(i)) => i,
            };
            visited.insert(pc, inst);
            if inst.is_control() {
                let raw =
                    explore_cti(pc, inst, &inst_at, &mut visited, &mut delay_addrs, &mut diags);
                for e in &raw.succs {
                    leaders.insert(e.to);
                    worklist.push(e.to);
                }
                terms.insert(pc, raw);
                break;
            }
            if let Instruction::Trap { cond: Cond::A, .. } = inst {
                terms.insert(pc, RawTerm { kind: TermKind::Halt, succs: vec![], delay: None });
                break;
            }
            let next = pc.wrapping_add(4);
            if visited.contains_key(&next) || leaders.contains(&next) {
                // Fall-through into code discovered from another path:
                // split there.
                leaders.insert(next);
                terms.insert(
                    pc,
                    RawTerm {
                        kind: TermKind::FallsThrough,
                        succs: vec![RawEdge::plain(next)],
                        delay: None,
                    },
                );
                break;
            }
            pc = next;
        }
    }

    // ---- assemble blocks --------------------------------------------
    // Delay slots that are not branched into belong to their CTI's
    // edges, not to any block.
    let edge_only_delays: BTreeSet<u32> =
        delay_addrs.iter().copied().filter(|a| !leaders.contains(a)).collect();
    for &a in delay_addrs.iter().filter(|a| leaders.contains(a)) {
        diags.push(Diagnostic::new(
            Rule::BranchIntoDelaySlot,
            Some(a),
            format!("{a:#010x} is both a branch target and the delay slot of {:#010x}", a - 4),
        ));
    }

    let mut blocks: Vec<Block> = Vec::new();
    let mut block_of: HashMap<u32, usize> = HashMap::new();
    for &leader in leaders.iter() {
        if !visited.contains_key(&leader) {
            continue; // target that failed to decode; already diagnosed
        }
        let idx = blocks.len();
        block_of.insert(leader, idx);
        let mut insts = Vec::new();
        let mut pc = leader;
        let (term, raw_succs, delay) = loop {
            let inst = visited[&pc];
            insts.push((pc, inst));
            if let Some(raw) = terms.get(&pc) {
                break (raw.kind, raw.succs.clone(), raw.delay);
            }
            let next = pc.wrapping_add(4);
            if leaders.contains(&next)
                || edge_only_delays.contains(&next)
                || !visited.contains_key(&next)
            {
                // Join point (or the walk is about to leave this
                // block's linear run): synthesize a fall-through.
                break (TermKind::FallsThrough, vec![RawEdge::plain(next)], None);
            }
            pc = next;
        };
        blocks.push(Block {
            start: leader,
            insts,
            term,
            // Temporarily store raw targets; resolved below.
            succs: raw_succs
                .iter()
                .map(|e| Edge {
                    to: e.to as usize, // placeholder: raw address, fixed up next
                    delay: if e.delay { delay } else { None },
                    call_return: e.call_return,
                    branch: e.branch,
                })
                .collect(),
            preds: Vec::new(),
        });
    }

    // Resolve raw edge addresses to block indices; drop edges into
    // nothing (already diagnosed).
    for block in blocks.iter_mut() {
        let resolved: Vec<Edge> = block
            .succs
            .iter()
            .filter_map(|e| {
                block_of.get(&(e.to as u32)).map(|&idx| Edge {
                    to: idx,
                    delay: e.delay,
                    call_return: e.call_return,
                    branch: e.branch,
                })
            })
            .collect();
        block.succs = resolved;
    }
    for b in 0..blocks.len() {
        for s in 0..blocks[b].succs.len() {
            let to = blocks[b].succs[s].to;
            if !blocks[to].preds.contains(&b) {
                blocks[to].preds.push(b);
            }
        }
    }

    let code_addrs: BTreeSet<u32> = visited.keys().copied().collect();
    report_unreachable(program, base, end, &code_addrs, &mut diags);

    let cfg = Cfg { base, end, entry: block_of.get(&entry_addr).copied(), blocks, code_addrs };
    (cfg, diags)
}

/// Explores one CTI: decodes its delay slot, diagnoses hazards, and
/// computes the raw successor set with per-edge delay execution.
fn explore_cti(
    pc: u32,
    inst: Instruction,
    inst_at: &dyn Fn(u32) -> Option<Result<Instruction, u32>>,
    visited: &mut BTreeMap<u32, Instruction>,
    delay_addrs: &mut BTreeSet<u32>,
    diags: &mut Vec<Diagnostic>,
) -> RawTerm {
    let delay_pc = pc.wrapping_add(4);
    let delay = match inst_at(delay_pc) {
        Some(Ok(d)) => {
            visited.insert(delay_pc, d);
            delay_addrs.insert(delay_pc);
            if d.is_control() {
                diags.push(Diagnostic::new(
                    Rule::DelaySlotCti,
                    Some(delay_pc),
                    format!("control-transfer `{d}` in the delay slot of `{inst}`"),
                ));
            }
            Some((delay_pc, d))
        }
        Some(Err(word)) => {
            diags.push(Diagnostic::new(
                Rule::FallsOffImage,
                Some(delay_pc),
                format!("delay slot of `{inst}` holds undecodable word {word:#010x}"),
            ));
            None
        }
        None => {
            diags.push(Diagnostic::new(
                Rule::FallsOffImage,
                Some(delay_pc),
                format!("delay slot of `{inst}` lies outside the image"),
            ));
            None
        }
    };
    let delay_is_nop = delay.as_ref().is_some_and(|(_, d)| d.is_nop());

    let mut check_target = |target: u32, what: &str| -> Option<u32> {
        match inst_at(target) {
            Some(_) => Some(target),
            None => {
                diags.push(Diagnostic::new(
                    Rule::TargetOutOfImage,
                    Some(pc),
                    format!("{what} `{inst}` targets {target:#010x}, outside the loaded image"),
                ));
                None
            }
        }
    };

    let mut succs: Vec<RawEdge> = Vec::new();
    match inst {
        Instruction::Branch { cond, annul, disp22 } => {
            let target = pc.wrapping_add((disp22 as u32) << 2);
            let ft = pc.wrapping_add(8);
            match cond {
                Cond::A => {
                    if let Some(t) = check_target(target, "branch") {
                        succs.push(RawEdge { delay: !annul, ..RawEdge::plain(t) });
                    }
                    if annul && !delay_is_nop {
                        if let Some((da, d)) = &delay {
                            diags.push(Diagnostic::new(
                                Rule::AnnulledSlotDead,
                                Some(*da),
                                format!(
                                    "`{d}` in the delay slot of `ba,a` is always annulled (dead)"
                                ),
                            ));
                        }
                    }
                }
                Cond::N => {
                    // `bn` never branches; it is a two-word nop (or a
                    // one-word nop with `,a`).
                    succs.push(RawEdge { delay: !annul, ..RawEdge::plain(ft) });
                }
                _ => {
                    if let Some(t) = check_target(target, "branch") {
                        succs.push(RawEdge {
                            delay: true,
                            branch: Some((cond, true)),
                            ..RawEdge::plain(t)
                        });
                    }
                    succs.push(RawEdge {
                        delay: !annul,
                        branch: Some((cond, false)),
                        ..RawEdge::plain(ft)
                    });
                    if annul && delay_is_nop {
                        diags.push(Diagnostic::new(
                            Rule::UselessAnnul,
                            Some(pc),
                            format!("`{inst}` annuls a delay slot that holds only `nop`"),
                        ));
                    }
                }
            }
        }
        Instruction::Call { disp30 } => {
            let target = pc.wrapping_add((disp30 as u32) << 2);
            if let Some(t) = check_target(target, "call") {
                succs.push(RawEdge { delay: true, ..RawEdge::plain(t) });
            }
            // Assume the callee returns to the post-delay-slot address.
            succs.push(RawEdge {
                delay: true,
                call_return: true,
                ..RawEdge::plain(pc.wrapping_add(8))
            });
        }
        Instruction::Jmpl { rd, rs1, .. } => {
            let is_ret = rd == Reg::G0 && (rs1 == Reg::O7 || rs1 == Reg::I7);
            if !is_ret {
                diags.push(Diagnostic::new(
                    Rule::IndirectJump,
                    Some(pc),
                    format!("indirect jump `{inst}`: target not statically resolvable"),
                ));
            }
            return RawTerm { kind: TermKind::Return, succs, delay };
        }
        _ => unreachable!("is_control() covers Branch/Call/Jmpl only"),
    }
    RawTerm { kind: TermKind::Branch, succs, delay }
}

/// Flags decodable-but-unreached instruction runs. Labeled regions are
/// assumed to be data (the workloads label every table and buffer);
/// unlabeled regions that decode cleanly end-to-end are reported.
fn report_unreachable(
    program: &Program,
    base: u32,
    end: u32,
    code: &BTreeSet<u32>,
    diags: &mut Vec<Diagnostic>,
) {
    let words = program.words();
    let labeled: BTreeSet<u32> = program.symbols().map(|(_, a)| a).collect();
    let mut gap_start: Option<u32> = None;
    let mut addr = base;
    while addr <= end {
        let in_gap = addr < end && !code.contains(&addr);
        match (gap_start, in_gap) {
            (None, true) => gap_start = Some(addr),
            (Some(g), got) if !got || labeled.contains(&addr) => {
                // Close the gap at a label, reachable code, or the end.
                let gap_words = ((addr - g) / 4) as usize;
                let first = ((g - base) / 4) as usize;
                let all_decode =
                    words[first..first + gap_words].iter().all(|&w| w != 0 && decode(w).is_ok());
                // A labeled gap start is data by assumption.
                if all_decode && gap_words > 0 && !labeled.contains(&g) {
                    diags.push(Diagnostic::new(
                        Rule::UnreachableCode,
                        Some(g),
                        format!(
                            "{gap_words} decodable instruction{} at {g:#010x} unreachable from the entry",
                            if gap_words == 1 { "" } else { "s" }
                        ),
                    ));
                }
                gap_start = if got && addr < end { Some(addr) } else { None };
            }
            _ => {}
        }
        if addr == end {
            break;
        }
        addr += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    fn cfg_of(src: &str) -> (Cfg, Vec<Diagnostic>) {
        build_cfg(&assemble(src).expect("test source assembles"))
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, diags) = cfg_of("start: add %g1, 1, %g2\n mov 3, %g3\n ta 0");
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].term, TermKind::Halt);
        assert_eq!(cfg.blocks()[0].insts.len(), 3);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn loop_has_back_edge_and_split() {
        let (cfg, _) = cfg_of(
            "start: clr %g1
             loop:  inc %g1
                    cmp %g1, 10
                    bl loop
                    nop
                    ta 0",
        );
        // Blocks: [start], [loop..bl], [ta 0].
        assert_eq!(cfg.blocks().len(), 3);
        let loop_blk = &cfg.blocks()[1];
        assert_eq!(loop_blk.term, TermKind::Branch);
        assert_eq!(loop_blk.succs.len(), 2);
        // Both edges of a non-annulling conditional branch execute the
        // delay slot.
        assert!(loop_blk.succs.iter().all(|e| e.delay.is_some()));
        // The loop header has two predecessors: entry and itself.
        assert_eq!(cfg.blocks()[1].preds.len(), 2);
    }

    #[test]
    fn ba_annul_edge_skips_delay() {
        let (cfg, diags) = cfg_of(
            "start: ba,a out
                    add %g1, 1, %g1
             out:   ta 0",
        );
        let entry = &cfg.blocks()[cfg.entry().unwrap()];
        assert_eq!(entry.succs.len(), 1);
        assert!(entry.succs[0].delay.is_none(), "ba,a annuls its slot");
        assert!(
            diags.iter().any(|d| d.rule == Rule::AnnulledSlotDead),
            "the annulled add is dead: {diags:?}"
        );
    }

    #[test]
    fn annulling_conditional_executes_delay_only_when_taken() {
        let (cfg, _) = cfg_of(
            "start: cmp %g1, 0
                    be,a out
                    add %g2, 1, %g2
                    ta 1
             out:   ta 0",
        );
        let b = cfg
            .blocks()
            .iter()
            .find(|b| matches!(b.insts.last(), Some((_, Instruction::Branch { .. }))))
            .unwrap();
        let taken = b.succs.iter().find(|e| e.delay.is_some()).expect("taken edge has delay");
        let untaken = b.succs.iter().find(|e| e.delay.is_none()).expect("untaken edge annuls");
        assert_ne!(taken.to, untaken.to);
    }

    #[test]
    fn data_words_are_not_disassembled() {
        let (cfg, diags) = cfg_of(
            "start: ta 0
             tbl:   .word 0x80102030, 12345
                    .space 16",
        );
        assert_eq!(cfg.blocks().len(), 1);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unlabeled_dead_code_is_flagged() {
        let (_, diags) = cfg_of(
            "start: ba done
                    nop
                    add %g1, 1, %g1
                    add %g2, 1, %g2
             done:  ta 0",
        );
        assert!(diags.iter().any(|d| d.rule == Rule::UnreachableCode), "{diags:?}");
    }

    #[test]
    fn cti_in_delay_slot_is_an_error() {
        let (_, diags) = cfg_of(
            "start: ba out
                    ba out
             out:   ta 0",
        );
        assert!(diags.iter().any(|d| d.rule == Rule::DelaySlotCti && d.is_error()), "{diags:?}");
    }

    #[test]
    fn branch_off_image_is_an_error() {
        let (_, diags) = cfg_of("start: ba .+0x100000\n nop");
        assert!(diags.iter().any(|d| d.rule == Rule::TargetOutOfImage), "{diags:?}");
    }

    #[test]
    fn running_off_the_image_is_an_error() {
        let (_, diags) = cfg_of("start: add %g1, 1, %g1");
        assert!(diags.iter().any(|d| d.rule == Rule::FallsOffImage), "{diags:?}");
    }

    #[test]
    fn call_produces_target_and_return_edges() {
        let (cfg, _) = cfg_of(
            "start: call fn
                    nop
                    ta 0
             fn:    retl
                    nop",
        );
        let entry = &cfg.blocks()[cfg.entry().unwrap()];
        assert_eq!(entry.term, TermKind::Branch);
        assert_eq!(entry.succs.len(), 2);
        assert_eq!(entry.succs.iter().filter(|e| e.call_return).count(), 1);
        let ret_blk = cfg
            .blocks()
            .iter()
            .find(|b| matches!(b.insts.last(), Some((_, Instruction::Jmpl { .. }))))
            .unwrap();
        assert_eq!(ret_blk.term, TermKind::Return);
        assert!(ret_blk.succs.is_empty());
    }

    #[test]
    fn six_workloads_recover_nontrivial_cfgs() {
        for w in flexcore_workloads::Workload::all() {
            let p = w.program().unwrap();
            let (cfg, _) = build_cfg(&p);
            assert!(cfg.blocks().len() > 5, "{}: {} blocks", w.name(), cfg.blocks().len());
            assert!(cfg.entry().is_some(), "{}", w.name());
            // Every kernel loops somewhere: at least one back edge.
            let back_edges = cfg
                .blocks()
                .iter()
                .enumerate()
                .flat_map(|(i, b)| b.succs.iter().map(move |e| (i, e.to)))
                .filter(|&(from, to)| cfg.blocks()[to].start <= cfg.blocks()[from].start)
                .count();
            assert!(back_edges > 0, "{}", w.name());
        }
    }
}
