//! SEC demo: a transient bit flip in the ALU corrupts a checksum loop;
//! the soft-error checker re-executes every ALU operation on the
//! fabric and catches the mismatch (§IV.D).
//!
//! ```sh
//! cargo run --example soft_error
//! ```

use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::Sec;
use flexcore_suite::flexcore::faults::{FaultModel, FaultPlan, FaultSchedule, FaultTarget};
use flexcore_suite::flexcore::{System, SystemConfig};

fn program() -> Result<flexcore_suite::asm::Program, flexcore_suite::asm::AsmError> {
    assemble(
        "start:  clr %o0
                mov 1000, %o1
        loop:   add %o0, %o1, %o0    ! checksum accumulation
                subcc %o1, 1, %o1
                bne loop
                nop
                ta 0",
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fault-free run: the checker stays silent.
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
    sys.load_program(&program()?);
    let clean = sys.try_run(100_000).expect("simulation error");
    assert!(clean.monitor_trap.is_none());
    println!(
        "fault-free:  {} ALU ops checked exactly, {} by residue — no trap",
        sys.extension().checked(),
        sys.extension().residue_checked()
    );

    // Inject a single-event upset: flip bit 13 of the 503rd committed
    // instruction's result — one of the loop's `add`s — in the register
    // file AND the forwarded packet, like a real ALU soft error. The
    // declarative plan is seeded, so the campaign replays identically.
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
    sys.load_program(&program()?);
    sys.arm_faults(FaultPlan::new(0xf1ec).inject(
        FaultTarget::CommitResult,
        FaultSchedule::AtCommit(503),
        FaultModel::Mask(1 << 13),
    ));
    let faulty = sys.try_run(100_000)?;
    match &faulty.monitor_trap {
        Some(trap) => println!("injected SEU: {trap}"),
        None => println!("injected SEU was NOT detected (exit {:?})", faulty.exit),
    }
    println!(
        "fault log:   {:?} ({} fault injected)",
        sys.fault_log(),
        faulty.resilience.faults_injected
    );
    assert!(faulty.monitor_trap.is_some(), "SEC must catch the bit flip");
    Ok(())
}
