/root/repo/target/debug/deps/flexcore_bench-1c7e118e9a2fea9b.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_bench-1c7e118e9a2fea9b.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
