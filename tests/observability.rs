//! End-to-end observability properties: the epoch metrics series sums
//! (or maxes) back to the run's aggregate counters on every workload,
//! the exporters emit valid deterministic JSON, the flight recorder
//! freezes pre-trap context, and VCD dumps match the netlist interface.

use flexcore_suite::asm::assemble;
use flexcore_suite::fabric::{vcd_signal_count, write_vcd};
use flexcore_suite::flexcore::ext::{Dift, Sec, Umc};
use flexcore_suite::flexcore::obs::{
    ChromeRecorder, MetricsRecorder, Observer, PacketTap, TraceSink,
};
use flexcore_suite::flexcore::{Extension, OverflowPolicy, RunResult, System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use flexcore_suite::workloads::Workload;
use proptest::prelude::*;

/// An ALU-heavy counted loop: cheap to simulate, forwards plenty of
/// packets under SEC.
fn alu_loop() -> flexcore_suite::asm::Program {
    assemble(
        "
        start:  set 200, %o0
                set 0, %o1
        loop:   add %o1, 3, %o1
                xor %o1, %o0, %o2
                sub %o2, 1, %o3
                subcc %o0, 1, %o0
                bne loop
                nop
                ta 0
        ",
    )
    .expect("test program assembles")
}

fn run_with_sink<E: Extension, S: TraceSink>(
    program: &flexcore_suite::asm::Program,
    config: SystemConfig,
    ext: E,
    sink: S,
) -> (RunResult, S) {
    let mut sys = System::with_sink(config, ext, sink);
    sys.load_program(program);
    let r = sys.try_run(200_000_000).expect("simulation error");
    (r, sys.into_sink())
}

// ------------------------------------------------- series consistency

/// The headline invariant: on all six paper workloads, summing the
/// epoch series reproduces the aggregate counters bit-for-bit (and the
/// occupancy peak maxes back).
#[test]
fn epoch_series_sums_to_aggregates_on_every_workload() {
    for workload in Workload::all() {
        let program = workload.program().expect("workload assembles");
        // DIFT forwards the most instruction classes; a shallow FIFO at
        // half fabric speed also produces back-pressure stalls.
        let config = SystemConfig::fabric_half_speed().with_fifo_depth(8);
        let (r, m) = run_with_sink(&program, config, Dift::new(), MetricsRecorder::new(1000));
        assert_eq!(r.exit, ExitReason::Halt(0), "{} failed", workload.name());

        let epochs = m.epochs();
        assert!(!epochs.is_empty(), "{}: no epochs sampled", workload.name());
        let committed: u64 = epochs.iter().map(|e| e.committed).sum();
        let forwarded: u64 = epochs.iter().map(|e| e.forwarded).sum();
        let dropped: u64 = epochs.iter().map(|e| e.dropped).sum();
        let stalls: u64 = epochs.iter().map(|e| e.fifo_stall_cycles).sum();
        let peak: u64 = epochs.iter().map(|e| e.occ_peak).max().unwrap_or(0);
        assert_eq!(committed, r.forward.committed, "{}: committed", workload.name());
        assert_eq!(forwarded, r.forward.forwarded, "{}: forwarded", workload.name());
        assert_eq!(dropped, r.forward.dropped, "{}: dropped", workload.name());
        assert_eq!(stalls, r.forward.fifo_stall_cycles, "{}: stalls", workload.name());
        assert_eq!(peak, r.forward.peak_occupancy, "{}: peak occupancy", workload.name());

        // And the recorder's own cross-check agrees (it also covers
        // per-class counts, meta misses, bus transfers, faults).
        m.check_against(&r).unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
    }
}

/// Dropped packets (the overflow-accounting path) land in the series
/// too, not just the aggregate counter.
#[test]
fn drop_accounting_reaches_the_epoch_series() {
    let config = SystemConfig::fabric_quarter_speed()
        .with_fifo_depth(2)
        .with_overflow_policy(OverflowPolicy::DropWithAccounting);
    let (r, m) = run_with_sink(&alu_loop(), config, Sec::new(), MetricsRecorder::new(100));
    assert_eq!(r.exit, ExitReason::Halt(0));
    assert!(r.forward.dropped > 0, "depth-2 FIFO at 0.25X must overflow");
    let dropped: u64 = m.epochs().iter().map(|e| e.dropped).sum();
    assert_eq!(dropped, r.forward.dropped);
    m.check_against(&r).expect("series consistent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The epoch width is a presentation choice: any width yields a
    /// series whose totals match the aggregates exactly.
    #[test]
    fn totals_are_invariant_under_epoch_width(width in 1u64..3000) {
        let config = SystemConfig::fabric_quarter_speed().with_fifo_depth(4);
        let (r, m) =
            run_with_sink(&alu_loop(), config, Sec::new(), MetricsRecorder::new(width));
        prop_assert_eq!(r.exit, ExitReason::Halt(0));
        prop_assert!(r.forward.fifo_stall_cycles > 0, "the shallow FIFO must stall");
        let check = m.check_against(&r);
        prop_assert!(check.is_ok(), "width {}: {:?}", width, check);
    }
}

// ----------------------------------------------------- JSON exporters

#[test]
fn metrics_jsonl_is_deterministic_and_parseable() {
    let mk = || {
        let config = SystemConfig::fabric_quarter_speed().with_fifo_depth(4);
        let (r, m) = run_with_sink(&alu_loop(), config, Sec::new(), MetricsRecorder::new(100));
        m.to_jsonl(&r)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "same program, same config: byte-identical JSONL");

    let lines: Vec<&str> = a.lines().collect();
    assert!(lines.len() >= 3, "meta + epochs + total");
    for line in &lines {
        serde::from_str(line).unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
    }
    let meta = serde::from_str(lines[0]).unwrap();
    assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
    let total = serde::from_str(lines[lines.len() - 1]).unwrap();
    assert_eq!(total.get("type").and_then(|v| v.as_str()), Some("total"));
    assert!(total.get("committed").and_then(|v| v.as_u64()).unwrap() > 0);
}

#[test]
fn chrome_trace_is_valid_and_perfetto_shaped() {
    let config = SystemConfig::fabric_quarter_speed().with_fifo_depth(4);
    let (r, c) = run_with_sink(&alu_loop(), config, Sec::new(), ChromeRecorder::new());
    assert_eq!(r.exit, ExitReason::Halt(0));

    let json = c.to_chrome_json();
    let v = serde::from_str(&json).expect("trace parses as JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    assert!(events.len() > 3, "metadata plus real events");
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("every event has ph");
        assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some(), "every event has pid");
        phases.insert(ph.to_string());
    }
    assert!(phases.contains("M"), "process/thread metadata present");
    assert!(phases.contains("X"), "fabric spans present");
    assert!(phases.contains("C"), "FIFO occupancy counter present");
}

#[test]
fn run_result_json_round_trips() {
    let config = SystemConfig::fabric_quarter_speed().with_fifo_depth(4);
    let (r, _) = run_with_sink(&alu_loop(), config, Sec::new(), Observer::new().with_flight(4));
    let v = serde::from_str(&serde::to_string(&r)).expect("RunResult serializes to valid JSON");
    assert_eq!(v.get("cycles").and_then(|c| c.as_u64()), Some(r.cycles));
    assert_eq!(v.get("instret").and_then(|c| c.as_u64()), Some(r.instret));
    assert_eq!(v.get("exit").and_then(|e| e.get("kind")).and_then(|k| k.as_str()), Some("halt"));
    let flight = v.get("flight").and_then(|f| f.as_array()).expect("flight array");
    assert_eq!(flight.len(), r.flight.len());
    assert_eq!(flight.len(), 4, "ring holds the last 4 commits");
}

// ----------------------------------------------------- flight recorder

/// FlexCore traps are imprecise (§III.C): the frozen log's newest entry
/// is the violating instruction, and the live log keeps the skid that
/// committed after it.
#[test]
fn flight_recorder_freezes_the_violating_instruction() {
    let program = assemble(
        "start: set 0x8000, %o0
                ld [%o0], %o1     ! read-before-write: UMC must trap
                add %o1, 1, %o2
                add %o2, 1, %o3
                ta 0",
    )
    .expect("assembles");
    let (r, obs) = run_with_sink(
        &program,
        SystemConfig::fabric_half_speed(),
        Umc::new(),
        Observer::new().with_flight(8),
    );
    assert!(r.monitor_trap.is_some(), "read-before-write must trap");

    let flight = obs.flight.expect("flight recorder installed");
    let frozen = flight.at_trap().expect("trap context frozen");
    assert!(!frozen.is_empty() && frozen.len() <= 8);
    let newest = frozen.last().unwrap();
    assert!(
        newest.inst.to_string().starts_with("ld"),
        "newest frozen entry is the violating load, got: {}",
        newest.inst
    );
    // The live log (attached to RunResult) advanced past the freeze
    // point by exactly the trap skid.
    let live_last = r.flight.last().expect("live log non-empty");
    assert_eq!(
        live_last.instret - newest.instret,
        r.trap_skid.expect("imprecise trap has a skid"),
        "live log advanced by the reported skid"
    );
}

// ----------------------------------------------------------------- VCD

#[test]
fn vcd_dump_matches_the_netlist_interface() {
    let (r, obs) = run_with_sink(
        &alu_loop(),
        SystemConfig::fabric_quarter_speed(),
        Sec::new(),
        Observer::new().with_packet_tap(16),
    );
    assert_eq!(r.exit, ExitReason::Halt(0));
    let tap: &PacketTap = obs.packets.as_ref().expect("tap installed");
    assert!(!tap.packets().is_empty(), "SEC forwards ALU ops");

    let ext = Sec::new();
    let netlist = ext.netlist();
    let stimulus: Vec<Vec<bool>> = tap.packets().iter().map(|p| ext.vcd_stimulus(p)).collect();
    for s in &stimulus {
        assert_eq!(s.len(), netlist.inputs().len(), "one bit per netlist input");
    }
    let mut out = Vec::new();
    write_vcd(&netlist, &stimulus, &mut out).expect("vcd writes");
    let text = String::from_utf8(out).expect("vcd is ascii");
    assert!(text.starts_with("$date"), "vcd header");
    assert!(text.contains("$enddefinitions"));
    let vars = text.lines().filter(|l| l.trim_start().starts_with("$var")).count();
    assert_eq!(vars, vcd_signal_count(&netlist), "one $var per signal");
}
