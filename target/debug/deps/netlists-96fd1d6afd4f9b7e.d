/root/repo/target/debug/deps/netlists-96fd1d6afd4f9b7e.d: crates/flexcore/tests/netlists.rs

/root/repo/target/debug/deps/libnetlists-96fd1d6afd4f9b7e.rmeta: crates/flexcore/tests/netlists.rs

crates/flexcore/tests/netlists.rs:
