//! Two-pass assembler for the FlexCore reproduction's SPARC-V8 subset.
//!
//! The MiBench-style workloads in `flexcore-workloads` are written in
//! assembly and assembled by this crate into memory images for the
//! Leon3-like core model. The dialect is classic SPARC assembler:
//!
//! ```text
//!         .org    0x1000
//! start:  set     buffer, %o0        ! synthetic: sethi + or
//!         mov     16, %o1
//! loop:   ldub    [%o0], %o2
//!         subcc   %o1, 1, %o1
//!         bne     loop
//!         add     %o0, 1, %o0        ! delay slot
//!         ta      0                  ! halt
//!         .align  4
//! buffer: .space  16
//! ```
//!
//! Supported pieces:
//!
//! * every mnemonic in [`flexcore_isa`], plus the usual synthetic
//!   instructions (`set`, `mov`, `cmp`, `tst`, `clr`, `inc`, `dec`,
//!   `not`, `neg`, `nop`, `ret`, `retl`, `jmp`, `b<cond>[,a]`,
//!   `t<cond>`, `call label`),
//! * labels, forward references, and `sym + offset` expressions,
//! * `%hi(expr)` / `%lo(expr)` relocation operators,
//! * directives: `.org`, `.word`, `.half`, `.byte`, `.ascii`, `.asciz`,
//!   `.space`, `.align`, `.equ`,
//! * `!` and `#` line comments.
//!
//! # Example
//!
//! ```
//! use flexcore_asm::assemble;
//!
//! let program = assemble("
//!     start:  mov 5, %o0
//!             ta 0
//! ")?;
//! assert_eq!(program.words().len(), 2);
//! assert_eq!(program.symbol("start"), Some(program.base()));
//! # Ok::<(), flexcore_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod emit;
mod error;
mod parse;
mod program;

pub use error::AsmError;
pub use program::Program;

/// Assembles `source` at the default base address (`0x1000`).
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) on any syntax error,
/// unknown mnemonic, undefined or duplicate symbol, or out-of-range
/// immediate/displacement.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, Program::DEFAULT_BASE)
}

/// Assembles `source` with the image starting at `base` (must be
/// 4-byte aligned). A `.org` directive in the source overrides `base`.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_at(source: &str, base: u32) -> Result<Program, AsmError> {
    emit::assemble_impl(source, base)
}
