/root/repo/target/debug/deps/table4-038b1239d0c32dfe.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-038b1239d0c32dfe.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
