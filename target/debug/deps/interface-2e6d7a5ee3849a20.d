/root/repo/target/debug/deps/interface-2e6d7a5ee3849a20.d: tests/interface.rs

/root/repo/target/debug/deps/interface-2e6d7a5ee3849a20: tests/interface.rs

tests/interface.rs:
