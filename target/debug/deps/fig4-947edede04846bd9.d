/root/repo/target/debug/deps/fig4-947edede04846bd9.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-947edede04846bd9: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
