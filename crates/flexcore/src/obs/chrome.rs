//! Chrome trace-event recording (Perfetto / `chrome://tracing`).
//!
//! The recorder stores raw [`TraceEvent`]s during the run (cheap) and
//! renders the Chrome JSON at export time. Cycles are written as
//! microseconds 1:1, so one timeline microsecond is one core-clock
//! cycle.

use crate::obs::{TraceEvent, TraceSink};

/// Records events for Chrome trace-event JSON export.
///
/// Per-commit events ([`Commit`](TraceEvent::Commit) /
/// [`Forward`](TraceEvent::Forward) /
/// [`FifoEnqueue`](TraceEvent::FifoEnqueue) occupancy counters are the
/// exception) would swamp a timeline viewer at millions of
/// instructions, so the recorder keeps spans (fabric activity, commit
/// stalls), counters (FIFO occupancy), and instants (drops, misses, bus
/// grants, faults, traps, bitstream retries) — and drops the per-commit
/// firehose. Rate questions belong to
/// [`MetricsRecorder`](crate::obs::MetricsRecorder).
#[derive(Clone, Debug)]
pub struct ChromeRecorder {
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
}

impl Default for ChromeRecorder {
    fn default() -> ChromeRecorder {
        ChromeRecorder::new()
    }
}

impl ChromeRecorder {
    /// Default retention ceiling (events beyond it are counted, not
    /// stored).
    pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

    /// A recorder with the default retention ceiling.
    pub fn new() -> ChromeRecorder {
        ChromeRecorder::with_max_events(ChromeRecorder::DEFAULT_MAX_EVENTS)
    }

    /// A recorder keeping at most `max_events` renderable events
    /// (clamped to ≥ 1).
    pub fn with_max_events(max_events: usize) -> ChromeRecorder {
        ChromeRecorder { events: Vec::new(), max_events: max_events.max(1), dropped: 0 }
    }

    /// The retained renderable events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renderable events discarded after the ceiling was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn renderable(ev: &TraceEvent) -> bool {
        !matches!(ev, TraceEvent::Commit { .. } | TraceEvent::Forward { .. })
    }
}

impl TraceSink for ChromeRecorder {
    fn event(&mut self, ev: TraceEvent) {
        if !ChromeRecorder::renderable(&ev) {
            return;
        }
        if self.events.len() < self.max_events {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// JSON rendering — behind the `serde` feature.
#[cfg(feature = "serde")]
mod export {
    use super::*;
    use serde::Value;

    const PID: u64 = 1;
    const TID_CORE: u64 = 1;
    const TID_FABRIC: u64 = 2;

    fn base(name: &str, ph: &str, ts: u64, tid: u64) -> serde::ObjectBuilder {
        Value::object()
            .field("name", &name)
            .field("ph", &ph)
            .field("ts", &ts)
            .field("pid", &PID)
            .field("tid", &tid)
    }

    fn thread_meta(tid: u64, name: &str) -> Value {
        Value::object()
            .field("name", &"thread_name")
            .field("ph", &"M")
            .field("pid", &PID)
            .field("tid", &tid)
            .raw("args", Value::object().field("name", &name).build())
            .build()
    }

    fn render(ev: &TraceEvent) -> Option<Value> {
        let v = match *ev {
            TraceEvent::Commit { .. } | TraceEvent::Forward { .. } => return None,
            TraceEvent::FabricSpan { start, end, pc, class, meta_reads, meta_writes } => {
                base(&format!("{class:?}").to_lowercase(), "X", start, TID_FABRIC)
                    .field("dur", &end.saturating_sub(start))
                    .raw(
                        "args",
                        Value::object()
                            .field("pc", &format!("{pc:#010x}"))
                            .field("meta_reads", &meta_reads)
                            .field("meta_writes", &meta_writes)
                            .build(),
                    )
                    .build()
            }
            TraceEvent::CommitStall { cycle, until } => base("fifo-stall", "X", cycle, TID_CORE)
                .field("dur", &until.saturating_sub(cycle))
                .build(),
            TraceEvent::FifoEnqueue { cycle, occupancy, .. } => {
                base("fifo_occupancy", "C", cycle, TID_CORE)
                    .raw("args", Value::object().field("entries", &occupancy).build())
                    .build()
            }
            TraceEvent::Drop { cycle, class, overflow } => base("drop", "i", cycle, TID_CORE)
                .field("s", &"t")
                .raw(
                    "args",
                    Value::object()
                        .field("class", &format!("{class:?}").to_lowercase())
                        .field("overflow", &overflow)
                        .build(),
                )
                .build(),
            TraceEvent::MetaMiss { cycle, count } => base("meta-miss", "i", cycle, TID_FABRIC)
                .field("s", &"t")
                .raw("args", Value::object().field("count", &count).build())
                .build(),
            TraceEvent::BusGrant { cycle, transfers, wait_cycles } => {
                base("bus-grant", "i", cycle, TID_FABRIC)
                    .field("s", &"t")
                    .raw(
                        "args",
                        Value::object()
                            .field("transfers", &transfers)
                            .field("wait_cycles", &wait_cycles)
                            .build(),
                    )
                    .build()
            }
            TraceEvent::BitstreamRetry { attempt } => base("bitstream-retry", "i", 0, TID_FABRIC)
                .field("s", &"t")
                .raw("args", Value::object().field("attempt", &attempt).build())
                .build(),
            TraceEvent::FaultInjected { cycle, instret } => base("fault", "i", cycle, TID_CORE)
                .field("s", &"t")
                .raw("args", Value::object().field("instret", &instret).build())
                .build(),
            TraceEvent::Recovery { cycle, rung } => base("recovery", "i", cycle, TID_CORE)
                .field("s", &"g")
                .raw("args", Value::object().field("rung", &rung).build())
                .build(),
            TraceEvent::DegradedEnter { cycle } => {
                base("degraded-enter", "i", cycle, TID_CORE).field("s", &"g").build()
            }
            TraceEvent::SwapBegin { cycle, instret } => base("swap-begin", "i", cycle, TID_FABRIC)
                .field("s", &"g")
                .raw("args", Value::object().field("instret", &instret).build())
                .build(),
            TraceEvent::SwapComplete { cycle, drained } => {
                base("swap-complete", "i", cycle, TID_FABRIC)
                    .field("s", &"g")
                    .raw("args", Value::object().field("drained", &drained).build())
                    .build()
            }
            TraceEvent::CheckElided { cycle, pc, class } => {
                base("check-elided", "i", cycle, TID_CORE)
                    .field("s", &"t")
                    .raw(
                        "args",
                        Value::object()
                            .field("pc", &format!("{pc:#010x}"))
                            .field("class", &format!("{class:?}").to_lowercase())
                            .build(),
                    )
                    .build()
            }
            TraceEvent::Trap { cycle, pc, instret } => base("trap", "i", cycle, TID_CORE)
                .field("s", &"g")
                .raw(
                    "args",
                    Value::object()
                        .field("pc", &format!("{pc:#010x}"))
                        .field("instret", &instret)
                        .build(),
                )
                .build(),
        };
        Some(v)
    }

    impl ChromeRecorder {
        /// Renders the recording as a Chrome trace-event JSON object
        /// (`traceEvents` array form), loadable at `ui.perfetto.dev` or
        /// `chrome://tracing`. Timestamps are core-clock cycles written
        /// as microseconds.
        pub fn to_chrome_json(&self) -> String {
            let mut trace_events = vec![
                Value::object()
                    .field("name", &"process_name")
                    .field("ph", &"M")
                    .field("pid", &PID)
                    .raw("args", Value::object().field("name", &"flexcore-sim").build())
                    .build(),
                thread_meta(TID_CORE, "core"),
                thread_meta(TID_FABRIC, "fabric"),
            ];
            trace_events.extend(self.events.iter().filter_map(render));
            let doc = Value::object()
                .raw("traceEvents", Value::Array(trace_events))
                .field("displayTimeUnit", &"ms")
                .raw(
                    "otherData",
                    Value::object()
                        .field("clock", &"core-cycles-as-us")
                        .field("dropped_events", &self.dropped)
                        .build(),
                )
                .build();
            serde::to_string(&doc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_isa::InstrClass;

    #[test]
    fn commit_firehose_is_not_retained() {
        let mut c = ChromeRecorder::new();
        c.event(TraceEvent::Commit { cycle: 1, pc: 0, instret: 1, class: InstrClass::Add });
        c.event(TraceEvent::Forward { cycle: 1, class: InstrClass::Add });
        c.event(TraceEvent::CommitStall { cycle: 2, until: 5 });
        assert_eq!(c.events().len(), 1);
        assert_eq!(c.dropped(), 0, "firehose events are filtered, not dropped");
    }

    #[test]
    fn ceiling_counts_overflow() {
        let mut c = ChromeRecorder::with_max_events(2);
        for i in 0..5 {
            c.event(TraceEvent::MetaMiss { cycle: i, count: 1 });
        }
        assert_eq!(c.events().len(), 2);
        assert_eq!(c.dropped(), 3);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn export_is_valid_json_with_trace_events() {
        let mut c = ChromeRecorder::new();
        c.event(TraceEvent::FabricSpan {
            start: 10,
            end: 14,
            pc: 0x1000,
            class: InstrClass::Ld,
            meta_reads: 1,
            meta_writes: 0,
        });
        c.event(TraceEvent::Trap { cycle: 20, pc: 0x1004, instret: 3 });
        let json = c.to_chrome_json();
        let doc = serde::from_str(&json).expect("emitter output parses");
        let events = doc.get("traceEvents").and_then(serde::Value::as_array).unwrap();
        // 3 metadata records + 2 rendered events.
        assert_eq!(events.len(), 5);
        assert_eq!(events[3].get("ph").and_then(serde::Value::as_str), Some("X"));
        assert_eq!(events[3].get("ts").and_then(serde::Value::as_u64), Some(10));
        assert_eq!(events[3].get("dur").and_then(serde::Value::as_u64), Some(4));
    }
}
