/root/repo/target/debug/deps/faultsweep-97e34884e393dd65.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/faultsweep-97e34884e393dd65: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
