/root/repo/target/debug/deps/system_properties-c9e31f62ae7de8b8.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-c9e31f62ae7de8b8: tests/system_properties.rs

tests/system_properties.rs:
