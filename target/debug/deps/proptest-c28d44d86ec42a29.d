/root/repo/target/debug/deps/proptest-c28d44d86ec42a29.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c28d44d86ec42a29.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
