/root/repo/target/debug/deps/flexcore_bench-0c677e2e8e1d936e.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/flexcore_bench-0c677e2e8e1d936e: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
