/root/repo/target/release/deps/table3-c4a5875caac5a25b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-c4a5875caac5a25b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
