/root/repo/target/debug/deps/fig4-77bc406524575880.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-77bc406524575880.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
