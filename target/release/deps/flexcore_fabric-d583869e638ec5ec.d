/root/repo/target/release/deps/flexcore_fabric-d583869e638ec5ec.d: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

/root/repo/target/release/deps/libflexcore_fabric-d583869e638ec5ec.rlib: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

/root/repo/target/release/deps/libflexcore_fabric-d583869e638ec5ec.rmeta: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

crates/fabric/src/lib.rs:
crates/fabric/src/bitstream.rs:
crates/fabric/src/calib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/lutmap.rs:
crates/fabric/src/netlist.rs:
crates/fabric/src/vcd.rs:
