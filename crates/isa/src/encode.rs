//! Instruction → 32-bit machine word.

use crate::{Instruction, Opcode, Operand2, Reg};

fn f3(op: u32, rd: Reg, op3: u32, rs1: Reg, op2: Operand2) -> u32 {
    let base =
        (op << 30) | ((rd.index() as u32) << 25) | (op3 << 19) | ((rs1.index() as u32) << 14);
    match op2 {
        Operand2::Reg(rs2) => base | rs2.index() as u32,
        Operand2::Imm(imm) => {
            assert!(Operand2::imm_fits(imm), "immediate {imm} does not fit in simm13");
            base | (1 << 13) | ((imm as u32) & 0x1fff)
        }
    }
}

/// Encodes a decoded instruction into its 32-bit SPARC machine word.
///
/// This is the inverse of [`decode`](crate::decode) for every
/// instruction the model implements; the round-trip property is enforced
/// by property tests.
///
/// # Panics
///
/// Panics if an immediate or displacement does not fit its field
/// (`simm13`: 13 bits signed, `disp22`/`disp30`: 22/30 bits signed,
/// `imm22`: 22 bits unsigned, `opc`: 9 bits).
pub fn encode(inst: &Instruction) -> u32 {
    match *inst {
        Instruction::Alu { op, rd, rs1, op2 } => f3(2, rd, op.op3().expect("ALU opcode"), rs1, op2),
        Instruction::Mem { op, rd, rs1, op2 } => f3(3, rd, op.op3().expect("mem opcode"), rs1, op2),
        Instruction::Jmpl { rd, rs1, op2 } => {
            f3(2, rd, Opcode::Jmpl.op3().expect("Jmpl has an op3"), rs1, op2)
        }
        Instruction::Trap { cond, rs1, op2 } => {
            // Ticc stores the condition in bits 28:25 (the rd field's
            // low four bits); bit 29 is reserved-zero.
            let cond_reg = Reg::from_field(cond.to_bits() as u32);
            f3(2, cond_reg, Opcode::Ticc.op3().expect("Ticc has an op3"), rs1, op2)
        }
        Instruction::Cpop { space, opc, rd, rs1, rs2 } => {
            assert!(space == 1 || space == 2, "cpop space must be 1 or 2");
            assert!(opc < 512, "cpop opc {opc} does not fit in 9 bits");
            let op3 = if space == 1 { 0x36 } else { 0x37 };
            (2 << 30)
                | ((rd.index() as u32) << 25)
                | (op3 << 19)
                | ((rs1.index() as u32) << 14)
                | ((opc as u32) << 5)
                | rs2.index() as u32
        }
        Instruction::Sethi { rd, imm22 } => {
            assert!(imm22 < (1 << 22), "imm22 {imm22:#x} does not fit in 22 bits");
            ((rd.index() as u32) << 25) | (0b100 << 22) | imm22
        }
        Instruction::Branch { cond, annul, disp22 } => {
            assert!((-(1 << 21)..(1 << 21)).contains(&disp22), "disp22 {disp22} out of range");
            (u32::from(annul) << 29)
                | ((cond.to_bits() as u32) << 25)
                | (0b010 << 22)
                | ((disp22 as u32) & 0x3f_ffff)
        }
        Instruction::Call { disp30 } => {
            assert!((-(1 << 29)..(1 << 29)).contains(&disp30), "disp30 {disp30} out of range");
            (1 << 30) | ((disp30 as u32) & 0x3fff_ffff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, Cond};

    #[test]
    fn nop_encodes_to_canonical_word() {
        // `sethi 0, %g0` is 0x01000000 on real SPARC.
        assert_eq!(encode(&Instruction::nop()), 0x0100_0000);
    }

    #[test]
    fn add_reg_reg_matches_reference_encoding() {
        // add %g1, %g2, %g3 => 0x86004002 (cross-checked against the
        // SPARC V8 manual field layout).
        let i = Instruction::alu(Opcode::Add, Reg::G1, Reg::G3, Operand2::Reg(Reg::G2));
        assert_eq!(encode(&i), 0x8600_4002);
    }

    #[test]
    fn ld_imm_matches_reference_encoding() {
        // ld [%sp + 4], %o0 => 0xd003a004
        let i = Instruction::mem(Opcode::Ld, Reg::O0, Reg::SP, Operand2::Imm(4));
        assert_eq!(encode(&i), 0xd003_a004);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let i = Instruction::alu(Opcode::Add, Reg::G1, Reg::G1, Operand2::Imm(-1));
        let w = encode(&i);
        assert_eq!(w & 0x1fff, 0x1fff);
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn branch_negative_displacement_round_trips() {
        let i = Instruction::Branch { cond: Cond::Ne, annul: true, disp22: -5 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    #[should_panic(expected = "does not fit in simm13")]
    fn oversized_immediate_panics() {
        let i = Instruction::alu(Opcode::Add, Reg::G1, Reg::G1, Operand2::Imm(5000));
        let _ = encode(&i);
    }

    #[test]
    #[should_panic(expected = "does not fit in 9 bits")]
    fn oversized_cpop_opc_panics() {
        let i = Instruction::Cpop { space: 1, opc: 512, rd: Reg::G0, rs1: Reg::G0, rs2: Reg::G0 };
        let _ = encode(&i);
    }
}
