/root/repo/target/debug/deps/superscalar-916ff676e9228ffe.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/superscalar-916ff676e9228ffe: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
