/root/repo/target/debug/deps/serde-41f83cca70e6df91.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/serde-41f83cca70e6df91: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
