/root/repo/target/debug/deps/superscalar-63d1fe4ce82eb383.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/libsuperscalar-63d1fe4ce82eb383.rmeta: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
