/root/repo/target/debug/examples/program_fabric-068d89b6d172b763.d: examples/program_fabric.rs

/root/repo/target/debug/examples/program_fabric-068d89b6d172b763: examples/program_fabric.rs

examples/program_fabric.rs:
