/root/repo/target/debug/deps/execution-0cc89970a1ed0bf0.d: crates/pipeline/tests/execution.rs Cargo.toml

/root/repo/target/debug/deps/libexecution-0cc89970a1ed0bf0.rmeta: crates/pipeline/tests/execution.rs Cargo.toml

crates/pipeline/tests/execution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
