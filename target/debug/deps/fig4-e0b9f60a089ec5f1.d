/root/repo/target/debug/deps/fig4-e0b9f60a089ec5f1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-e0b9f60a089ec5f1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
