//! Array Bound Check (BC) via color tags.

use flexcore_fabric::{MacroBlock, Netlist, NetlistBuilder};
use flexcore_isa::{InstrClass, Instruction, Opcode};
use flexcore_pipeline::TracePacket;

use crate::ext::{
    byte_tag_location, ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, META_BASE,
};
use crate::interface::{Cfgr, ForwardPolicy};

/// Software-visible `cpop1` sub-opcodes for BC.
pub mod ops {
    /// Set the pointer color of the register numbered `rs1` to
    /// `rs2 & 0xf` (performed on the pointer returned by an
    /// allocation).
    pub const SET_REG_COLOR: u16 = 0;
    /// Color the memory range: `rs1` = start address, `rs2` packs
    /// `len << 4 | color`. Sets the *location* color of every word in
    /// `[rs1, rs1 + len)`.
    pub const COLOR_RANGE: u16 = 1;
    /// Clear both tags over the range encoded as in
    /// [`COLOR_RANGE`] (de-allocation).
    pub const CLEAR_RANGE: u16 = 2;
    /// Read the packed 8-bit memory tag of the word at `rs1`.
    pub const READ_TAG: u16 = 3;
}

/// Array bound checking with color tags (§IV.C): each pointer carries a
/// 4-bit color in a register tag, each memory word an 8-bit tag packing
/// a pointer color (upper nibble, for pointer values stored in memory)
/// and a location color (lower nibble). On every access the pointer's
/// color must match the location's color.
#[derive(Clone, Debug, Default)]
pub struct Bc {
    checks: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Bc {
    /// Creates the extension.
    pub fn new() -> Bc {
        Bc::default()
    }

    fn monitored(addr: u32) -> bool {
        addr < META_BASE
    }

    /// Reads the packed 8-bit memory tag for the word at `addr`.
    fn mem_tag(env: &mut ExtEnv<'_>, addr: u32) -> u8 {
        let (meta_addr, shift) = byte_tag_location(addr);
        ((env.read_meta(meta_addr) >> shift) & 0xff) as u8
    }

    /// Writes selected bits of the packed tag (mask is within the
    /// byte).
    fn write_mem_tag(env: &mut ExtEnv<'_>, addr: u32, value: u8, mask: u8) {
        let (meta_addr, shift) = byte_tag_location(addr);
        env.write_meta(meta_addr, u32::from(value) << shift, u32::from(mask) << shift);
    }

    fn check(env: &mut ExtEnv<'_>, pc: u32, addr: u32, ptr_color: u8) -> Result<u8, MonitorTrap> {
        let tag = Bc::mem_tag(env, addr);
        let loc_color = tag & 0x0f;
        if ptr_color != loc_color {
            return Err(MonitorTrap {
                pc,
                reason: format!(
                    "out-of-bound access at {addr:#010x}: pointer color {ptr_color} vs location color {loc_color}"
                ),
            });
        }
        Ok(tag)
    }
}

impl Extension for Bc {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.checks]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [checks] = *state {
            self.checks = checks;
        }
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "BC",
            name: "Array Bound Check",
            meta_data: &["4-bit tag per register", "8-bit tag per word in memory"],
            transparent_ops: &[
                "Propagate tags on ALU/load/store",
                "Check a pointer tag (register) with a memory tag on a load/store",
            ],
            sw_visible_ops: &[
                "Set reg/mem tags on array allocation",
                "Clear tags on a de-allocation",
                "Exception when a tag check fails",
            ],
        }
    }

    fn cfgr(&self) -> Cfgr {
        // Loads, stores, arithmetic (pointer arithmetic), plus sethi
        // and logic so that pointer materialization sequences (`set`)
        // propagate tags coherently.
        Cfgr::new()
            .with_classes(|c| c.is_mem(), ForwardPolicy::Always)
            .with_classes(
                |c| {
                    matches!(
                        c,
                        InstrClass::Add
                            | InstrClass::Sub
                            | InstrClass::AddCc
                            | InstrClass::SubCc
                            | InstrClass::Logic
                            | InstrClass::LogicCc
                            | InstrClass::Shift
                            | InstrClass::Sethi
                            | InstrClass::Save
                            | InstrClass::Restore
                    )
                },
                ForwardPolicy::Always,
            )
            .with_class(InstrClass::Cpop1, ForwardPolicy::WaitForAck)
    }

    fn pipeline_stages(&self) -> u32 {
        5
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        match pkt.inst {
            Instruction::Alu { rd, rs1, op2, .. } => {
                // Pointer-color propagation: colors add (mod 16), so
                // `ptr + offset` keeps the color when the offset's
                // color is 0 (§IV.C).
                let c1 = env.shadow.tag(rs1) & 0x0f;
                let c2 = op2.reg().map_or(0, |r| env.shadow.tag(r) & 0x0f);
                env.shadow.set_tag(rd, (c1.wrapping_add(c2)) & 0x0f);
                Ok(None)
            }
            Instruction::Sethi { rd, .. } => {
                env.shadow.set_tag(rd, 0);
                Ok(None)
            }
            Instruction::Mem { op, rd, rs1, .. } => {
                if !Bc::monitored(pkt.addr) {
                    return Ok(None);
                }
                self.checks += 1;
                let ptr_color = env.shadow.tag(rs1) & 0x0f;
                let pair = || flexcore_isa::Reg::new(rd.index() as u8 | 1).expect("pair register");
                match op {
                    Opcode::Ldd => {
                        // Both words must belong to the pointed-to
                        // object.
                        let t1 = Bc::check(env, pkt.pc, pkt.addr, ptr_color)?;
                        let t2 = Bc::check(env, pkt.pc, pkt.addr + 4, ptr_color)?;
                        env.shadow.set_tag(rd, t1 >> 4);
                        env.shadow.set_tag(pair(), t2 >> 4);
                    }
                    Opcode::Std => {
                        Bc::check(env, pkt.pc, pkt.addr, ptr_color)?;
                        Bc::check(env, pkt.pc, pkt.addr + 4, ptr_color)?;
                        let c1 = env.shadow.tag(rd) & 0x0f;
                        let c2 = env.shadow.tag(pair()) & 0x0f;
                        Bc::write_mem_tag(env, pkt.addr, c1 << 4, 0xf0);
                        Bc::write_mem_tag(env, pkt.addr + 4, c2 << 4, 0xf0);
                    }
                    Opcode::Swap => {
                        let tag = Bc::check(env, pkt.pc, pkt.addr, ptr_color)?;
                        let reg_color = env.shadow.tag(rd) & 0x0f;
                        Bc::write_mem_tag(env, pkt.addr, reg_color << 4, 0xf0);
                        env.shadow.set_tag(rd, tag >> 4);
                    }
                    _ if op.is_load() => {
                        let tag = Bc::check(env, pkt.pc, pkt.addr, ptr_color)?;
                        // The upper nibble is the pointer color of the
                        // *value* being loaded.
                        if op == Opcode::Ld {
                            env.shadow.set_tag(rd, tag >> 4);
                        } else {
                            // Sub-word loads never load a pointer.
                            env.shadow.set_tag(rd, 0);
                        }
                    }
                    _ => {
                        let _ = Bc::check(env, pkt.pc, pkt.addr, ptr_color)?;
                        if op == Opcode::St {
                            // Copy the stored value's pointer color
                            // into the upper nibble of the memory tag.
                            let v_color = env.shadow.tag(rd) & 0x0f;
                            Bc::write_mem_tag(env, pkt.addr, v_color << 4, 0xf0);
                        }
                    }
                }
                Ok(None)
            }
            Instruction::Cpop { space: 1, opc, .. } => match opc {
                ops::SET_REG_COLOR => {
                    if let Some(r) = flexcore_isa::Reg::new((pkt.srcv1 & 31) as u8) {
                        env.shadow.set_tag(r, (pkt.srcv2 & 0x0f) as u8);
                    }
                    Ok(None)
                }
                ops::COLOR_RANGE | ops::CLEAR_RANGE => {
                    let start = pkt.srcv1 & !3;
                    let len = pkt.srcv2 >> 4;
                    let color = if opc == ops::COLOR_RANGE { (pkt.srcv2 & 0x0f) as u8 } else { 0 };
                    let mask = if opc == ops::COLOR_RANGE { 0x0f } else { 0xff };
                    let mut a = start;
                    while a < start + len {
                        Bc::write_mem_tag(env, a, color, mask);
                        a += 4;
                    }
                    Ok(None)
                }
                ops::READ_TAG => Ok(Some(u32::from(Bc::mem_tag(env, pkt.srcv1)))),
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }

    /// The BC datapath (§IV.C, Figure 3c): meta address translation,
    /// byte-lane extraction, the 4-bit color comparator, the 4-bit
    /// color adder for propagation, and the write-lane placement
    /// network. The 4-bit register tag file is a shadow register-file
    /// macro.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: addr[32], is_load, is_store, is_alu,
        // ptr_color[4], val_color[4], src2_color[4], tag_word[32].
        let mut s = Vec::with_capacity(79);
        super::push_bits(&mut s, pkt.addr, 32);
        s.push(pkt.class.is_load());
        s.push(pkt.class.is_store());
        s.push(pkt.class.is_alu());
        super::push_bits(&mut s, 0, 4); // ptr_color: shadow register file
        super::push_bits(&mut s, 0, 4); // val_color likewise
        super::push_bits(&mut s, 0, 4); // src2_color likewise
        super::push_bits(&mut s, 0, 32); // tag_word comes from the meta cache
        s
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("bc");
        let addr = b.input_bus(32);
        let is_load = b.input();
        let is_store = b.input();
        let is_alu = b.input();
        let ptr_color = b.input_bus(4); // rs1's shadow tag
        let val_color = b.input_bus(4); // rd's shadow tag (stores)
        let src2_color = b.input_bus(4);
        let tag_word = b.input_bus(32); // meta-cache read data

        b.add_macro(MacroBlock::RegFile { entries: crate::ShadowRegFile::ENTRIES, width: 4 });

        // Stage 1 registers.
        let addr_r = b.register_bus(&addr);
        let ld_r = b.register(is_load);
        let st_r = b.register(is_store);
        let alu_r = b.register(is_alu);
        let pc_r = b.register_bus(&ptr_color);
        let vc_r = b.register_bus(&val_color);
        let sc_r = b.register_bus(&src2_color);

        // Meta address = base + (addr >> 2): byte-per-word layout.
        let base: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let word_index: Vec<_> =
            (0..32).map(|i| if i < 30 { addr_r[i + 2] } else { b.constant(false) }).collect();
        let (meta_addr, _) = b.add(&base, &word_index);
        let meta_addr_r = b.register_bus(&meta_addr);
        b.output_bus("meta_addr", &meta_addr_r);

        // Byte-lane extraction: select one of four byte lanes of the
        // meta word by meta_addr[1:0] (big-endian lane order).
        let lane_sel = [meta_addr_r[0], meta_addr_r[1]];
        let mut byte = Vec::with_capacity(8);
        for bit in 0..8 {
            // Lanes in BE order: lane 0 holds bits 31..24.
            let lanes = [tag_word[24 + bit], tag_word[16 + bit], tag_word[8 + bit], tag_word[bit]];
            let m0 = b.mux(lane_sel[0], lanes[0], lanes[1]);
            let m1 = b.mux(lane_sel[0], lanes[2], lanes[3]);
            let sel_bit = b.mux(lane_sel[1], m0, m1);
            byte.push(sel_bit);
        }
        let loc_color: Vec<_> = byte[0..4].to_vec();
        let stored_ptr_color: Vec<_> = byte[4..8].to_vec();

        // Color check: pointer color must equal location color on any
        // access.
        let eq = b.eq(&pc_r, &loc_color);
        let neq = b.not(eq);
        let mem_op = b.or(ld_r, st_r);
        let trap = b.and(mem_op, neq);
        let trap_r = b.register(trap);
        b.output("trap", trap_r);

        // Load path: destination tag = stored pointer color.
        let dest_from_mem = stored_ptr_color.clone();
        // ALU path: color adder (4-bit).
        let (color_sum, _) = b.add(&pc_r, &sc_r);
        let dest_tag = b.mux_bus(alu_r, &dest_from_mem, &color_sum);
        let dest_tag_r = b.register_bus(&dest_tag);
        b.output_bus("dest_tag", &dest_tag_r);

        // Store path: place the value color into the upper nibble of
        // the right byte lane.
        let lane_onehot = b.decoder(&vec![lane_sel[0], lane_sel[1]]);
        let mut wen = Vec::with_capacity(32);
        let mut wdata = Vec::with_capacity(32);
        for (lane, &lane_hot) in lane_onehot.iter().enumerate().take(4) {
            // Big-endian: lane 0 occupies bits 31..24.
            let base_bit = 24 - 8 * lane;
            for bit in 0..8 {
                let is_upper = bit >= 4;
                let en = if is_upper { b.and(lane_hot, st_r) } else { b.constant(false) };
                wen.push((base_bit + bit, en));
                let data = if is_upper { vc_r[bit - 4] } else { b.constant(false) };
                let gated = b.and(data, en);
                wdata.push((base_bit + bit, gated));
            }
        }
        wen.sort_by_key(|&(pos, _)| pos);
        wdata.sort_by_key(|&(pos, _)| pos);
        let wen_bus: Vec<_> = wen.into_iter().map(|(_, n)| n).collect();
        let wdata_bus: Vec<_> = wdata.into_iter().map(|(_, n)| n).collect();
        b.output_bus("wen", &wen_bus);
        b.output_bus("wdata", &wdata_bus);

        // Range engine for the software-visible COLOR_RANGE /
        // CLEAR_RANGE operations: a current-address counter and the
        // done comparator that sequence multi-word tag updates. The end
        // address is a software-loaded config register (the cpop
        // handler computes start+len once on the core side).
        let range_end: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let cursor: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let four = b.constant_bus(4, 32);
        let (next_cursor, _) = b.add(&cursor, &four);
        let (_, not_done) = b.sub(&cursor, &range_end); // borrow set while cursor < end
        let running = b.register(not_done);
        let cursor_next = b.mux_bus(running, &cursor, &next_cursor);
        for (q, d) in cursor.iter().zip(&cursor_next) {
            b.connect_dff(*q, *d);
        }
        b.output_bus("range_cursor", &cursor);
        b.output("range_busy", running);

        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{alu_packet, env_parts, mem_packet, packet_with_cpop};
    use flexcore_isa::Reg;

    /// Colors a 32-byte "allocation" at 0x2000 with color 5 and marks
    /// %o0 as the pointer.
    fn allocate(bc: &mut Bc, env: &mut ExtEnv<'_>, color: u32) {
        bc.process(&packet_with_cpop(1, ops::COLOR_RANGE, 0x2000, (32 << 4) | color), env).unwrap();
        bc.process(&packet_with_cpop(1, ops::SET_REG_COLOR, Reg::O0.index() as u32, color), env)
            .unwrap();
    }

    #[test]
    fn in_bounds_access_passes() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        assert!(bc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());
        assert!(bc.process(&mem_packet(Opcode::St, 0x201c), &mut env).is_ok());
    }

    #[test]
    fn out_of_bounds_access_traps() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        // One word past the allocation: location color is 0, not 5.
        let err = bc.process(&mem_packet(Opcode::Ld, 0x2020), &mut env).unwrap_err();
        assert!(err.reason.contains("out-of-bound"));
    }

    #[test]
    fn adjacent_allocations_have_distinct_colors() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        // Two adjacent arrays with different colors.
        bc.process(&packet_with_cpop(1, ops::COLOR_RANGE, 0x2000, (32 << 4) | 3), &mut env)
            .unwrap();
        bc.process(&packet_with_cpop(1, ops::COLOR_RANGE, 0x2020, (32 << 4) | 7), &mut env)
            .unwrap();
        bc.process(&packet_with_cpop(1, ops::SET_REG_COLOR, Reg::O0.index() as u32, 3), &mut env)
            .unwrap();
        // Walking off the end of array A into array B traps even
        // though B is allocated.
        assert!(bc.process(&mem_packet(Opcode::Ld, 0x201c), &mut env).is_ok());
        assert!(bc.process(&mem_packet(Opcode::Ld, 0x2020), &mut env).is_err());
    }

    #[test]
    fn pointer_arithmetic_keeps_the_color() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        // %o2 = %o0 + %o3 (offset register color 0).
        bc.process(
            &alu_packet(Opcode::Add, Reg::O0, Reg::O3, Reg::O2, 0x2000, 8, 0x2008),
            &mut env,
        )
        .unwrap();
        assert_eq!(env.shadow.tag(Reg::O2), 5);
    }

    #[test]
    fn pointer_color_survives_a_memory_round_trip() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        // Store the colored pointer itself into word 0 of the array;
        // the data register of the store is %o1 in mem_packet, so
        // color %o1 too.
        env.shadow.set_tag(Reg::O1, 5);
        bc.process(&mem_packet(Opcode::St, 0x2000), &mut env).unwrap();
        env.shadow.set_tag(Reg::O1, 0);
        bc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).unwrap();
        assert_eq!(env.shadow.tag(Reg::O1), 5, "pointer color reloaded from memory");
    }

    #[test]
    fn deallocation_clears_tags() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        bc.process(&packet_with_cpop(1, ops::CLEAR_RANGE, 0x2000, 32 << 4), &mut env).unwrap();
        // Use-after-free: pointer still has color 5, memory is 0.
        assert!(bc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_err());
    }

    #[test]
    fn read_tag_reports_packed_byte() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        allocate(&mut bc, &mut env, 5);
        env.shadow.set_tag(Reg::O1, 9);
        bc.process(&mem_packet(Opcode::St, 0x2004), &mut env).unwrap();
        let t = bc.process(&packet_with_cpop(1, ops::READ_TAG, 0x2004, 0), &mut env).unwrap();
        assert_eq!(t, Some(0x95), "upper nibble 9 (value), lower 5 (location)");
    }

    #[test]
    fn untagged_code_accessing_untagged_memory_passes() {
        // Color 0 everywhere: ordinary non-array code never traps.
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut bc = Bc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        assert!(bc.process(&mem_packet(Opcode::Ld, 0x5000), &mut env).is_ok());
        assert!(bc.process(&mem_packet(Opcode::St, 0x5004), &mut env).is_ok());
    }

    #[test]
    fn netlist_is_larger_than_dift() {
        let bcn = Bc::new().netlist();
        let dn = crate::ext::Dift::new().netlist();
        let bl = flexcore_fabric::map_to_luts(&bcn, 6).lut_count();
        let dl = flexcore_fabric::map_to_luts(&dn, 6).lut_count();
        assert!(bl > dl, "BC {bl} LUTs vs DIFT {dl}");
    }
}
