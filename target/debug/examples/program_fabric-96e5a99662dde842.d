/root/repo/target/debug/examples/program_fabric-96e5a99662dde842.d: examples/program_fabric.rs

/root/repo/target/debug/examples/libprogram_fabric-96e5a99662dde842.rmeta: examples/program_fabric.rs

examples/program_fabric.rs:
