/root/repo/target/debug/deps/flexcore_fabric-46fcc351fb7df8c1.d: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

/root/repo/target/debug/deps/libflexcore_fabric-46fcc351fb7df8c1.rmeta: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

crates/fabric/src/lib.rs:
crates/fabric/src/bitstream.rs:
crates/fabric/src/calib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/lutmap.rs:
crates/fabric/src/netlist.rs:
crates/fabric/src/vcd.rs:
