/root/repo/target/debug/deps/flexcore_bench-ac4f480ea0cb53ef.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_bench-ac4f480ea0cb53ef.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
