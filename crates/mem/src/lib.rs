//! Memory substrate for the FlexCore reproduction.
//!
//! The paper's prototype system contains, besides the Leon3 core itself:
//!
//! * 32-KB L1 instruction and data caches with 32-byte lines, using a
//!   write-through / no-allocate policy (the Leon3 default),
//! * a 4-KB **meta-data cache** private to the reconfigurable fabric,
//!   "almost identical to regular data caches except for the capability
//!   to write at a bit granularity" (§III.D),
//! * a shared memory bus to off-chip SDRAM, used by both the main core
//!   and the meta-data cache — meta-data refills "hog the memory bus"
//!   and slow down the main core's own misses (§V.C).
//!
//! This crate models all of those pieces:
//!
//! * [`MainMemory`] — sparse, paged, big-endian backing store,
//! * [`SystemBus`] — a single shared bus with SDRAM burst timing and
//!   per-master contention accounting,
//! * [`TimingCache`] — a tag-only set-associative cache used for the L1
//!   caches (write-through means the flat memory is always current, so
//!   the L1s need no data array in the model),
//! * [`MetaDataCache`] — a data-carrying, write-back, write-allocate
//!   cache with the paper's 32-bit *bit write-enable mask* interface,
//! * [`StoreBuffer`] — the write buffer that hides write-through store
//!   latency until it fills.
//!
//! # Example
//!
//! ```
//! use flexcore_mem::{BusMaster, CacheConfig, MainMemory, MetaDataCache, SystemBus};
//!
//! let mut mem = MainMemory::new();
//! let mut bus = SystemBus::default();
//! let mut meta = MetaDataCache::new(CacheConfig::meta_default());
//!
//! // Set bit 5 of the meta word at 0x4000_0000 without touching the rest.
//! let w = meta.write_masked(0x4000_0000, 1 << 5, 1 << 5, &mut mem, &mut bus, BusMaster::Fabric, 0);
//! let r = meta.read_word(0x4000_0000, &mut mem, &mut bus, BusMaster::Fabric, w.ready_at);
//! assert_eq!(r.value, 1 << 5);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod bus;
mod cache;
mod mainmem;
mod metacache;
#[cfg(feature = "serde")]
mod serde_impls;
mod storebuf;

pub use bus::{BusMaster, BusStats, SdramTiming, SystemBus};
pub use cache::{
    CacheConfig, CacheSnapshot, CacheStats, LineState, Lookup, TimingCache, WritePolicy,
};
pub use mainmem::MainMemory;
pub use metacache::{MetaAccess, MetaCacheSnapshot, MetaDataCache};
pub use storebuf::StoreBuffer;
