/root/repo/target/debug/deps/golden-5b1e6b49f0b68fd9.d: crates/pipeline/tests/golden.rs

/root/repo/target/debug/deps/golden-5b1e6b49f0b68fd9: crates/pipeline/tests/golden.rs

crates/pipeline/tests/golden.rs:
