/root/repo/target/debug/examples/bounds_check-10b9c7a129c2ffcf.d: examples/bounds_check.rs

/root/repo/target/debug/examples/bounds_check-10b9c7a129c2ffcf: examples/bounds_check.rs

examples/bounds_check.rs:
