//! Software-instrumentation baselines (§V.C).
//!
//! The paper compares FlexCore against monitoring implemented purely in
//! software by instrumenting each dynamic instruction: LIFT-style DIFT
//! (3.6× slowdown even highly optimized on an aggressive superscalar),
//! Purify-style uninitialized-memory checking (up to 5.5×), and
//! compiler-inserted bound checks (up to 1.69× with extensive
//! optimization). On a simple in-order core the overheads are higher
//! ("we expect the software overheads to be even higher for simple
//! in-order processors").
//!
//! This module models such instrumentation on the same core model used
//! everywhere else: every monitored instruction is followed by a short
//! instrumentation sequence (extra cycles) and, for memory operations,
//! by real tag-memory accesses that go through the same L1 D-cache and
//! memory bus as program data — the two first-order costs of software
//! monitoring.

use flexcore_asm::Program;
use flexcore_isa::{InstrClass, NUM_INSTR_CLASSES};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult};

use crate::ext::{bit_tag_location, byte_tag_location};

/// How the software monitor lays out its tags in memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagLayout {
    /// No tag memory (pure re-execution checks, e.g. software SEC).
    None,
    /// One bit per word, packed (software DIFT/UMC).
    BitPerWord,
    /// One byte per word (software BC).
    BytePerWord,
}

/// An instrumentation cost model for one software monitor.
#[derive(Clone, Debug)]
pub struct SoftwareMonitor {
    /// Monitor name.
    pub name: &'static str,
    /// Extra dynamic instructions executed per committed instruction
    /// of each class (the inlined instrumentation sequence).
    pub extra_instr: [u32; NUM_INSTR_CLASSES],
    /// Tag layout; memory-class instructions additionally perform one
    /// tag-memory access through the D-cache.
    pub tag_layout: TagLayout,
}

impl SoftwareMonitor {
    fn with_classes(
        name: &'static str,
        tag_layout: TagLayout,
        rules: &[(&dyn Fn(InstrClass) -> bool, u32)],
    ) -> SoftwareMonitor {
        let mut extra_instr = [0u32; NUM_INSTR_CLASSES];
        for c in InstrClass::all() {
            for (pred, cost) in rules {
                if pred(c) {
                    extra_instr[c.index()] = *cost;
                }
            }
        }
        SoftwareMonitor { name, extra_instr, tag_layout }
    }

    /// LIFT-style software DIFT: every ALU op needs a tag-propagation
    /// sequence (load both source tags, OR, store destination tag —
    /// kept in registers by good compilers, ≈3 instructions); memory
    /// ops need address translation plus a tag load/store (≈5); jumps
    /// need a check (≈2).
    pub fn dift() -> SoftwareMonitor {
        SoftwareMonitor::with_classes(
            "DIFT (software)",
            TagLayout::BitPerWord,
            &[
                (&|c: InstrClass| c.is_alu() || c == InstrClass::Sethi, 3),
                (&|c: InstrClass| c.is_mem(), 5),
                (&|c: InstrClass| c == InstrClass::Jmpl, 2),
            ],
        )
    }

    /// Purify-style software UMC: every load/store is preceded by a
    /// tag lookup, shift/mask, branch (≈6 instructions; Purify
    /// instruments at byte granularity and is heavier still).
    pub fn umc() -> SoftwareMonitor {
        SoftwareMonitor::with_classes(
            "UMC (software)",
            TagLayout::BitPerWord,
            &[(&|c: InstrClass| c.is_mem(), 6)],
        )
    }

    /// Compiler-inserted bound checking: a compare+branch per memory
    /// access (≈3 instructions) plus color-table maintenance on
    /// pointer arithmetic (≈1).
    pub fn bc() -> SoftwareMonitor {
        SoftwareMonitor::with_classes(
            "BC (software)",
            TagLayout::BytePerWord,
            &[
                (&|c: InstrClass| c.is_mem(), 3),
                (
                    &|c: InstrClass| {
                        matches!(
                            c,
                            InstrClass::Add
                                | InstrClass::Sub
                                | InstrClass::AddCc
                                | InstrClass::SubCc
                        )
                    },
                    1,
                ),
            ],
        )
    }

    /// Software SEC: re-execute every ALU instruction and compare
    /// (≈3 instructions: recompute, compare, branch).
    pub fn sec() -> SoftwareMonitor {
        SoftwareMonitor::with_classes(
            "SEC (software)",
            TagLayout::None,
            &[(&|c: InstrClass| c.is_alu(), 3)],
        )
    }
}

/// Result of a software-monitored run.
#[derive(Clone, Copy, Debug)]
pub struct SoftwareRunResult {
    /// Why the program stopped.
    pub exit: ExitReason,
    /// Total cycles including instrumentation.
    pub cycles: u64,
    /// Program instructions committed (instrumentation instructions
    /// are charged as cycles, not counted here).
    pub instret: u64,
}

/// Runs `program` under software instrumentation per `monitor`,
/// returning the instrumented timing.
pub fn run_software_monitored(
    monitor: &SoftwareMonitor,
    program: &Program,
    max_instructions: u64,
) -> SoftwareRunResult {
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(program, &mut mem);
    loop {
        if core.stats().instret >= max_instructions {
            core.halt(ExitReason::InstructionLimit);
        }
        match core.step(&mut mem, &mut bus) {
            StepResult::Annulled => {}
            StepResult::Exited(exit) => {
                return SoftwareRunResult {
                    exit,
                    cycles: core.quiesced_at(),
                    instret: core.stats().instret,
                };
            }
            StepResult::Committed(pkt) => {
                let extra = monitor.extra_instr[pkt.class.index()];
                if extra > 0 {
                    // Instrumentation instructions: charge their
                    // cycles on the same core.
                    let target = core.cycle() + u64::from(extra);
                    core.stall_until(target);
                    // Memory-class instructions also touch tag memory
                    // through the D-cache.
                    if pkt.class.is_mem() {
                        match monitor.tag_layout {
                            TagLayout::None => {}
                            TagLayout::BitPerWord => {
                                let (tag_addr, _) = bit_tag_location(pkt.addr);
                                core.instrumentation_access(
                                    tag_addr,
                                    pkt.class.is_store(),
                                    &mut mem,
                                    &mut bus,
                                );
                            }
                            TagLayout::BytePerWord => {
                                let (tag_addr, _) = byte_tag_location(pkt.addr);
                                core.instrumentation_access(
                                    tag_addr,
                                    pkt.class.is_store(),
                                    &mut mem,
                                    &mut bus,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    fn loopy_program() -> Program {
        assemble(
            "start: mov 500, %o0
                    set buf, %o2
            loop:   ld [%o2], %o1
                    add %o1, %o0, %o1
                    st %o1, [%o2]
                    subcc %o0, 1, %o0
                    bne loop
                    nop
                    ta 0
                    .align 4
            buf:    .word 0",
        )
        .unwrap()
    }

    fn baseline_cycles(p: &Program) -> u64 {
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.load_program(p, &mut mem);
        assert_eq!(core.run(&mut mem, &mut bus, 1_000_000), ExitReason::Halt(0));
        core.quiesced_at()
    }

    #[test]
    fn software_dift_is_several_times_slower() {
        let p = loopy_program();
        let base = baseline_cycles(&p);
        let sw = run_software_monitored(&SoftwareMonitor::dift(), &p, 1_000_000);
        assert_eq!(sw.exit, ExitReason::Halt(0));
        let slowdown = sw.cycles as f64 / base as f64;
        assert!(slowdown > 2.0, "DIFT software slowdown only {slowdown:.2}x");
        assert!(slowdown < 15.0, "implausibly slow: {slowdown:.2}x");
    }

    #[test]
    fn monitors_rank_by_coverage() {
        // DIFT instruments ALU + mem + jumps; BC less; both slower
        // than baseline.
        let p = loopy_program();
        let base = baseline_cycles(&p);
        let dift = run_software_monitored(&SoftwareMonitor::dift(), &p, 1_000_000).cycles;
        let bc = run_software_monitored(&SoftwareMonitor::bc(), &p, 1_000_000).cycles;
        let umc = run_software_monitored(&SoftwareMonitor::umc(), &p, 1_000_000).cycles;
        assert!(dift > bc, "DIFT {dift} should exceed BC {bc}");
        assert!(bc > base && umc > base);
    }

    #[test]
    fn functional_results_are_unaffected() {
        // Instrumentation charges time but does not perturb execution.
        let p = loopy_program();
        let sw = run_software_monitored(&SoftwareMonitor::umc(), &p, 1_000_000);
        assert_eq!(sw.exit, ExitReason::Halt(0));
        let base = baseline_cycles(&p);
        assert!(sw.cycles > base);
        assert_eq!(sw.instret, {
            let mut mem = MainMemory::new();
            let mut bus = SystemBus::default();
            let mut core = Core::new(CoreConfig::leon3());
            core.load_program(&p, &mut mem);
            core.run(&mut mem, &mut bus, 1_000_000);
            core.stats().instret
        });
    }
}
