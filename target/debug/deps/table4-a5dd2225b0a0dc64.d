/root/repo/target/debug/deps/table4-a5dd2225b0a0dc64.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-a5dd2225b0a0dc64.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
