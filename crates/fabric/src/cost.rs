//! Area / power / frequency cost models for both implementation flows.

use std::fmt;

use crate::calib;
use crate::lutmap::map_to_luts;
use crate::{Gate, MacroBlock, Netlist};

/// Cost of the macro blocks (RAMs, register files, FIFOs) attached to a
/// netlist. Macros are identical custom hardware on both flows (the
/// paper implements the meta-data register file and caches as dedicated
/// modules even in the FlexCore configuration).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MacroCost {
    /// Total silicon area, µm².
    pub area_um2: f64,
    /// Total storage bits.
    pub bits: u64,
}

impl MacroCost {
    /// Sums the macro costs of a netlist.
    pub fn of(netlist: &Netlist) -> MacroCost {
        let mut area = 0.0;
        let mut bits = 0;
        for m in netlist.macros() {
            area += MacroCost::block_area_um2(m);
            bits += m.bits();
        }
        MacroCost { area_um2: area, bits }
    }

    /// Area of a single macro block, µm². FIFOs pay a width-
    /// proportional periphery on top of their storage bits (the paper's
    /// "SRAM peripheral circuits" observation — FIFO area is dominated
    /// by width, not depth).
    pub fn block_area_um2(m: &MacroBlock) -> f64 {
        match *m {
            MacroBlock::Ram { .. } => m.bits() as f64 * calib::SRAM_UM2_PER_BIT,
            MacroBlock::RegFile { .. } => m.bits() as f64 * calib::REGFILE_UM2_PER_BIT,
            MacroBlock::Fifo { width, .. } => {
                m.bits() as f64 * calib::FIFO_UM2_PER_BIT
                    + f64::from(width) * calib::FIFO_PERIPHERY_PER_WIDTH_UM2
            }
        }
    }

    /// Dynamic power at `freq_mhz`, mW (toggle rate 0.1).
    pub fn power_mw(&self, freq_mhz: f64) -> f64 {
        self.bits as f64 * calib::SRAM_UW_PER_BIT_MHZ * freq_mhz / 1000.0
    }
}

/// FPGA-flow cost of a netlist: the paper's Synplify/ISE + Kuon–Rose +
/// power-spreadsheet pipeline.
#[derive(Clone, Debug)]
pub struct FpgaCost {
    name: String,
    luts: usize,
    depth: usize,
    flops: usize,
    macros: MacroCost,
}

impl FpgaCost {
    /// Maps `netlist` to 6-LUTs and derives its FPGA costs.
    pub fn of(netlist: &Netlist) -> FpgaCost {
        let mapping = map_to_luts(netlist, 6);
        FpgaCost {
            name: netlist.name().to_string(),
            luts: mapping.lut_count(),
            depth: mapping.depth(),
            flops: netlist.flops(),
            macros: MacroCost::of(netlist),
        }
    }

    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mapped LUT count.
    pub fn luts(&self) -> usize {
        self.luts
    }

    /// Critical-path depth in LUT levels.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flip-flop count (absorbed into the CLBs; no extra area).
    pub fn flops(&self) -> usize {
        self.flops
    }

    /// LUT area via the Kuon–Rose model, µm² (excludes macros).
    pub fn area_um2(&self) -> f64 {
        self.luts as f64 * calib::LUT_AREA_UM2
    }

    /// Macro-block costs (reported separately, as the paper folds them
    /// into the dedicated FlexCore modules).
    pub fn macros(&self) -> MacroCost {
        self.macros
    }

    /// Maximum operating frequency from LUT depth, MHz.
    pub fn fmax_mhz(&self) -> f64 {
        1.0e6 / (calib::FPGA_PS_BASE + calib::FPGA_PS_PER_LEVEL * self.depth.max(1) as f64)
    }

    /// Dynamic power at `freq_mhz`, mW (toggle 0.1, static prob 0.5 —
    /// the paper's spreadsheet settings).
    pub fn power_mw(&self, freq_mhz: f64) -> f64 {
        self.luts as f64 * calib::FPGA_DYN_UW_PER_LUT_MHZ * freq_mhz / 1000.0
    }
}

impl fmt::Display for FpgaCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LUTs (depth {}), {:.0} um2, {:.0} MHz, {:.1} mW",
            self.name,
            self.luts,
            self.depth,
            self.area_um2(),
            self.fmax_mhz(),
            self.power_mw(self.fmax_mhz())
        )
    }
}

/// NAND2-equivalents of one gate (standard-cell mapping weights).
fn gate_equivalents(g: &Gate) -> f64 {
    match g {
        Gate::Input | Gate::Const(_) => 0.0,
        Gate::Not(_) => 0.5,
        Gate::And(..) | Gate::Or(..) => 1.5,
        Gate::Xor(..) => 3.0,
        Gate::Mux { .. } => 3.0,
        Gate::Dff(_) => 6.0,
    }
}

/// Longest combinational path, in gate levels.
fn logic_depth(netlist: &Netlist) -> usize {
    let gates = netlist.gates();
    let mut depth = vec![0usize; gates.len()];
    let mut max = 0;
    for (i, g) in gates.iter().enumerate() {
        if matches!(g, Gate::Input | Gate::Const(_) | Gate::Dff(_)) {
            continue;
        }
        let d = g.inputs().iter().map(|n| depth[n.index()]).max().unwrap_or(0) + 1;
        depth[i] = d;
        max = max.max(d);
    }
    max
}

/// ASIC-flow cost of a netlist: the paper's Synopsys DC / 65-nm IBM
/// library pipeline, modeled with NAND2-equivalent weights.
#[derive(Clone, Debug)]
pub struct AsicCost {
    name: String,
    ge: f64,
    logic_depth: usize,
    macros: MacroCost,
}

impl AsicCost {
    /// Derives standard-cell costs for `netlist`.
    pub fn of(netlist: &Netlist) -> AsicCost {
        let ge: f64 = netlist.gates().iter().map(gate_equivalents).sum();
        AsicCost {
            name: netlist.name().to_string(),
            ge,
            logic_depth: logic_depth(netlist),
            macros: MacroCost::of(netlist),
        }
    }

    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// NAND2-equivalent gate count.
    pub fn gate_equivalents(&self) -> f64 {
        self.ge
    }

    /// Longest combinational path in gate levels.
    pub fn logic_depth(&self) -> usize {
        self.logic_depth
    }

    /// Standard-cell area, µm² (excludes macros).
    pub fn area_um2(&self) -> f64 {
        self.ge * calib::NAND2_AREA_UM2
    }

    /// Macro-block costs.
    pub fn macros(&self) -> MacroCost {
        self.macros
    }

    /// Total area including macros, µm².
    pub fn total_area_um2(&self) -> f64 {
        self.area_um2() + self.macros.area_um2
    }

    /// Standalone maximum frequency of this logic, MHz.
    pub fn fmax_mhz(&self) -> f64 {
        1.0e6 / (calib::ASIC_PS_BASE + calib::ASIC_PS_PER_LEVEL * self.logic_depth.max(1) as f64)
    }

    /// Main-core frequency after integrating this extension (the tap
    /// penalty of Table III), MHz.
    pub fn core_fmax_mhz(&self) -> f64 {
        calib::LEON3_FMAX_MHZ * (1.0 - calib::core_tap_penalty(self.ge))
    }

    /// Dynamic logic power at `freq_mhz`, mW (toggle 0.1).
    pub fn power_mw(&self, freq_mhz: f64) -> f64 {
        self.ge * calib::ASIC_DYN_UW_PER_GE_MHZ * freq_mhz / 1000.0
    }

    /// Total power at `freq_mhz` including macros, mW.
    pub fn total_power_mw(&self, freq_mhz: f64) -> f64 {
        self.power_mw(freq_mhz) + self.macros.power_mw(freq_mhz)
    }
}

impl fmt::Display for AsicCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} GE (depth {}), {:.0} um2 logic + {:.0} um2 macros",
            self.name,
            self.ge,
            self.logic_depth,
            self.area_um2(),
            self.macros.area_um2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn adder32() -> Netlist {
        let mut b = NetlistBuilder::new("add32");
        let x = b.input_bus(32);
        let y = b.input_bus(32);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        b.finish()
    }

    #[test]
    fn fpga_cost_of_32bit_adder_is_plausible() {
        let c = FpgaCost::of(&adder32());
        // A 32-bit prefix adder maps to roughly 30-160 6-LUTs (the
        // greedy mapper duplicates prefix-tree logic that a carry-chain
        // aware mapper would pack tighter).
        assert!((30..=160).contains(&c.luts()), "{} luts", c.luts());
        assert!(c.area_um2() > 5_000.0);
        assert!(c.fmax_mhz() > 50.0 && c.fmax_mhz() < 1000.0, "{}", c.fmax_mhz());
        assert!(c.power_mw(250.0) > 0.0);
    }

    #[test]
    fn asic_is_denser_and_faster_than_fpga() {
        // The whole premise of Table III: the same logic is much
        // smaller and faster as standard cells than as LUTs.
        let n = adder32();
        let f = FpgaCost::of(&n);
        let a = AsicCost::of(&n);
        assert!(
            a.area_um2() < f.area_um2() / 3.0,
            "asic {} vs fpga {}",
            a.area_um2(),
            f.area_um2()
        );
    }

    #[test]
    fn macro_costs_accumulate() {
        let mut b = NetlistBuilder::new("macros");
        let i = b.input();
        b.output("o", i);
        b.add_macro(MacroBlock::Ram { words: 1024, width: 32 });
        b.add_macro(MacroBlock::Fifo { depth: 64, width: 293 });
        b.add_macro(MacroBlock::RegFile { entries: 32, width: 8 });
        let n = b.finish();
        let m = MacroCost::of(&n);
        assert_eq!(m.bits, 1024 * 32 + 64 * 293 + 256);
        let expect = 32768.0 * calib::SRAM_UM2_PER_BIT
            + 18752.0 * calib::FIFO_UM2_PER_BIT
            + 293.0 * calib::FIFO_PERIPHERY_PER_WIDTH_UM2
            + 256.0 * calib::REGFILE_UM2_PER_BIT;
        assert!((m.area_um2 - expect).abs() < 1.0);
        assert!(m.power_mw(465.0) > 0.0);

        // The paper's depth observation: 16-entry vs 64-entry FIFOs of
        // the same width differ by only a small factor.
        let small = MacroCost::block_area_um2(&MacroBlock::Fifo { depth: 16, width: 293 });
        let big = MacroCost::block_area_um2(&MacroBlock::Fifo { depth: 64, width: 293 });
        let growth = big / small;
        assert!((1.05..1.30).contains(&growth), "16->64 entry growth {growth}");
    }

    #[test]
    fn logic_depth_counts_gate_levels() {
        let mut b = NetlistBuilder::new("chain");
        let mut x = b.input();
        let y = b.input();
        for _ in 0..10 {
            x = b.and(x, y);
        }
        b.output("o", x);
        let a = AsicCost::of(&b.finish());
        assert_eq!(a.logic_depth(), 10);
    }

    #[test]
    fn registered_logic_breaks_the_path() {
        let mut b = NetlistBuilder::new("pipe");
        let mut x = b.input();
        let y = b.input();
        for _ in 0..5 {
            x = b.and(x, y);
        }
        let q = b.register(x);
        let mut z = q;
        for _ in 0..3 {
            z = b.or(z, y);
        }
        b.output("o", z);
        let a = AsicCost::of(&b.finish());
        assert_eq!(a.logic_depth(), 5, "the longer of the two stages");
    }

    #[test]
    fn core_tap_frequency_is_slightly_below_baseline() {
        let a = AsicCost::of(&adder32());
        let f = a.core_fmax_mhz();
        assert!(f < calib::LEON3_FMAX_MHZ);
        assert!(f > 0.95 * calib::LEON3_FMAX_MHZ, "{f}");
    }
}
