//! Benchmark harness regenerating every table and figure of the
//! FlexCore paper.
//!
//! Binaries (each prints the paper's rows/series and, where available,
//! the paper's published numbers next to the measured ones):
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `table1` | Table I (extension descriptors) and Table II (interface fields) |
//! | `table3` | Table III (area / power / frequency, ASIC and FlexCore) |
//! | `table4` | Table IV (normalized execution time per benchmark × extension × fabric clock); `--software` adds the §V.C software baselines |
//! | `fig4`   | Figure 4 (fraction of instructions forwarded to the fabric) |
//! | `fig5`   | Figure 5 (average performance vs. forward-FIFO size) |
//! | `faultsweep` | §V soft-error story: SEC detection coverage and UMC/DIFT/BC false-trap rates under seeded fault injection |
//!
//! The library part hosts the shared runners so the binaries and the
//! micro-benches stay thin.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod elide;
pub mod microbench;
pub mod paper;
mod runner;
pub mod swap;
pub mod trial;

pub use runner::{
    baseline_cycles, geomean, paper_config, run_extension, run_extension_profiled,
    run_extension_series, run_panic_tolerant, run_panic_tolerant_observed, series_dir_from_args,
    ExtKind, JobReport, RunSummary, MAX_INSTRUCTIONS,
};
