/root/repo/target/debug/deps/flexsim-48b64c6fec72525a.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/flexsim-48b64c6fec72525a: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
