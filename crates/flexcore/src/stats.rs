//! System-level statistics and run results.

use flexcore_isa::{InstrClass, NUM_INSTR_CLASSES};
use flexcore_mem::{BusStats, CacheStats};
use flexcore_pipeline::{CoreStats, ExitReason};

use crate::ext::MonitorTrap;
use crate::obs::FlightEntry;

/// Forwarding statistics (the data behind the paper's Figure 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Instructions committed by the core.
    pub committed: u64,
    /// Packets forwarded to the fabric.
    pub forwarded: u64,
    /// Packets dropped by an `IfNotFull` policy on a full FIFO.
    pub dropped: u64,
    /// Forwarded packets per instruction class.
    pub per_class: [u64; NUM_INSTR_CLASSES],
    /// Cycles the commit stage stalled on a full FIFO.
    pub fifo_stall_cycles: u64,
    /// Peak FIFO occupancy. A `u64` like every other counter here so
    /// serialized results are platform-independent.
    pub peak_occupancy: u64,
}

impl ForwardStats {
    /// Fraction of committed instructions forwarded to the fabric
    /// (Figure 4's y-axis).
    pub fn forwarded_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.committed as f64
        }
    }

    /// Forwarded packets of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.per_class[class.index()]
    }
}

/// Fault-injection and graceful-degradation accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Faults the injector applied (all targets).
    pub faults_injected: u64,
    /// FFIFO packets corrupted in flight ([`FaultTarget::FifoPacket`]).
    ///
    /// [`FaultTarget::FifoPacket`]: crate::faults::FaultTarget::FifoPacket
    pub packets_corrupted: u64,
    /// Packets dropped by the
    /// [`DropWithAccounting`](crate::OverflowPolicy::DropWithAccounting)
    /// FIFO overflow policy.
    pub dropped_overflow: u64,
    /// Bitstream transfers that failed validation and were retried.
    pub bitstream_retries: u64,
    /// Bitstreams successfully loaded (including after retries).
    pub bitstream_reloads: u64,
    /// Instructions committed while the system ran in degraded mode
    /// (monitoring bypassed by the recovery supervisor).
    pub unmonitored_commits: u64,
    /// Packets the CFGR would have forwarded for checking but that
    /// degraded mode suppressed.
    pub suppressed_checks: u64,
    /// Mid-run bitstream hot-swaps completed (see
    /// [`crate::reconfig`]).
    pub swaps_completed: u64,
    /// FIFO packets still in flight when a hot-swap began quiescing —
    /// all of them were fully processed by the outgoing extension
    /// before the region was reprogrammed (drained, never dropped).
    pub swap_drained_packets: u64,
    /// Core cycles the commit stage spent stalled across swap windows
    /// (quiesce drain + frame shift-in + retry backoff).
    pub swap_stall_cycles: u64,
    /// Packets never enqueued because a static check-elision table
    /// (see [`ElisionTable`](crate::ElisionTable)) proved the
    /// extension's check redundant at that PC.
    pub elided_checks: u64,
}

/// The complete result of a [`System`](crate::System) run.
///
/// `PartialEq` compares every *architectural* field — checkpoint
/// round-trip tests use it to assert that an interrupted-and-restored
/// run reproduces the uninterrupted run bit for bit. [`host_ns`]
/// (host wall-clock, which legitimately differs between two identical
/// simulations) is excluded from equality by the manual impl below.
///
/// [`host_ns`]: RunResult::host_ns
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the core stopped.
    pub exit: ExitReason,
    /// The monitor trap, if the extension raised one.
    pub monitor_trap: Option<MonitorTrap>,
    /// How many instructions committed *after* the violating one
    /// before the TRAP signal arrived — the imprecision of FlexCore
    /// exceptions (§III.C). `None` when no trap fired.
    pub trap_skid: Option<u64>,
    /// Total core-clock cycles, including draining the fabric at the
    /// end (the EMPTY-signal discipline).
    pub cycles: u64,
    /// Committed instructions.
    pub instret: u64,
    /// Forwarding statistics.
    pub forward: ForwardStats,
    /// Core pipeline statistics.
    pub core: CoreStats,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// Meta-data cache statistics.
    pub meta_cache: CacheStats,
    /// Shared-bus statistics.
    pub bus: BusStats,
    /// Fault-injection and graceful-degradation counters.
    pub resilience: ResilienceStats,
    /// Console output produced by the program.
    pub console: Vec<u8>,
    /// The last committed instructions, oldest first — populated when a
    /// [`FlightRecorder`](crate::obs::FlightRecorder) (or an
    /// [`Observer`](crate::obs::Observer) carrying one) is installed as
    /// the system's trace sink; empty otherwise.
    pub flight: Vec<FlightEntry>,
    /// Host wall-clock nanoseconds spent inside the run loop
    /// (accumulated across checkpoint/resume segments). Measurement,
    /// not architectural state: excluded from `PartialEq` and from the
    /// byte-determinism contracts on serialized results.
    pub host_ns: u64,
}

impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `host_ns` — two bit-identical simulations
        // still take different amounts of host time.
        self.exit == other.exit
            && self.monitor_trap == other.monitor_trap
            && self.trap_skid == other.trap_skid
            && self.cycles == other.cycles
            && self.instret == other.instret
            && self.forward == other.forward
            && self.core == other.core
            && self.icache == other.icache
            && self.dcache == other.dcache
            && self.meta_cache == other.meta_cache
            && self.bus == other.bus
            && self.resilience == other.resilience
            && self.console == other.console
            && self.flight == other.flight
    }
}

impl RunResult {
    /// Cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instret as f64
        }
    }

    /// Host wall-clock seconds spent in the run loop.
    pub fn host_secs(&self) -> f64 {
        self.host_ns as f64 / 1e9
    }

    /// Simulated instructions committed per host second (0.0 when no
    /// host time was measured).
    pub fn sim_insns_per_sec(&self) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            self.instret as f64 / self.host_secs()
        }
    }

    /// Simulated core-clock cycles per host second (0.0 when no host
    /// time was measured).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.host_ns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.host_secs()
        }
    }

    /// A human-readable summary table (the `flexsim` default output).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        fn cache_line(out: &mut String, name: &str, s: &CacheStats) {
            let _ = writeln!(
                out,
                "{name:<18}{} accesses, {} misses ({:.2}% miss), {} writebacks",
                s.accesses(),
                s.read_misses + s.write_misses,
                s.miss_ratio() * 100.0,
                s.writebacks,
            );
        }
        let mut out = String::new();
        let _ = writeln!(out, "{:<18}{:?}", "exit", self.exit);
        if let Some(trap) = &self.monitor_trap {
            let _ = writeln!(out, "{:<18}{trap}", "monitor trap");
            if let Some(skid) = self.trap_skid {
                let _ = writeln!(out, "{:<18}{skid} instructions (imprecise, §III.C)", "trap skid");
            }
        }
        let _ = writeln!(out, "{:<18}{}", "cycles", self.cycles);
        let _ = writeln!(out, "{:<18}{}", "instret", self.instret);
        let _ = writeln!(out, "{:<18}{:.4}", "cpi", self.cpi());
        if self.host_ns > 0 {
            let _ = writeln!(out, "{:<18}{:.3}s", "host time", self.host_secs());
            let _ = writeln!(
                out,
                "{:<18}{:.0} sim insns/s, {:.0} sim cycles/s",
                "host rate",
                self.sim_insns_per_sec(),
                self.sim_cycles_per_sec(),
            );
        }
        let _ = writeln!(
            out,
            "{:<18}{} of {} committed ({:.2}%), {} dropped",
            "forwarded",
            self.forward.forwarded,
            self.forward.committed,
            self.forward.forwarded_fraction() * 100.0,
            self.forward.dropped,
        );
        let _ = writeln!(
            out,
            "{:<18}{} stall cycles, peak occupancy {}",
            "forward fifo", self.forward.fifo_stall_cycles, self.forward.peak_occupancy,
        );
        cache_line(&mut out, "icache", &self.icache);
        cache_line(&mut out, "dcache", &self.dcache);
        cache_line(&mut out, "meta cache", &self.meta_cache);
        let _ = writeln!(
            out,
            "{:<18}{} busy cycles; core {} xfers ({} wait), fabric {} xfers ({} wait)",
            "bus",
            self.bus.busy_cycles,
            self.bus.core_transfers,
            self.bus.core_wait_cycles,
            self.bus.fabric_transfers,
            self.bus.fabric_wait_cycles,
        );
        if self.resilience != ResilienceStats::default() {
            let _ = writeln!(
                out,
                "{:<18}{} faults, {} packets corrupted, {} overflow drops, {} bitstream retries",
                "resilience",
                self.resilience.faults_injected,
                self.resilience.packets_corrupted,
                self.resilience.dropped_overflow,
                self.resilience.bitstream_retries,
            );
        }
        if self.resilience.unmonitored_commits != 0 || self.resilience.suppressed_checks != 0 {
            let _ = writeln!(
                out,
                "{:<18}{} unmonitored commits, {} suppressed checks",
                "degraded mode",
                self.resilience.unmonitored_commits,
                self.resilience.suppressed_checks,
            );
        }
        if self.resilience.swaps_completed != 0 {
            let _ = writeln!(
                out,
                "{:<18}{} completed, {} packets drained, {} stall cycles",
                "hot swaps",
                self.resilience.swaps_completed,
                self.resilience.swap_drained_packets,
                self.resilience.swap_stall_cycles,
            );
        }
        if self.resilience.elided_checks != 0 {
            let _ = writeln!(
                out,
                "{:<18}{} checks statically discharged (never enqueued)",
                "elided", self.resilience.elided_checks,
            );
        }
        if !self.flight.is_empty() {
            let _ =
                writeln!(out, "last {} commits (instret cycle pc disassembly):", self.flight.len());
            for e in &self.flight {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarded_fraction_handles_empty_run() {
        let s = ForwardStats::default();
        assert_eq!(s.forwarded_fraction(), 0.0);
    }

    #[test]
    fn forwarded_fraction_is_a_ratio() {
        let s = ForwardStats { committed: 200, forwarded: 50, ..Default::default() };
        assert_eq!(s.forwarded_fraction(), 0.25);
    }
}
