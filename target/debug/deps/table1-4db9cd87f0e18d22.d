/root/repo/target/debug/deps/table1-4db9cd87f0e18d22.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4db9cd87f0e18d22: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
