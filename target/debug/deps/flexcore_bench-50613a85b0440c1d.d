/root/repo/target/debug/deps/flexcore_bench-50613a85b0440c1d.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/flexcore_bench-50613a85b0440c1d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
