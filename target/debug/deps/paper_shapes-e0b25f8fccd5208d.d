/root/repo/target/debug/deps/paper_shapes-e0b25f8fccd5208d.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-e0b25f8fccd5208d: tests/paper_shapes.rs

tests/paper_shapes.rs:
