/root/repo/target/debug/deps/proptest-4f97c55a9a2cc907.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4f97c55a9a2cc907: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
