/root/repo/target/debug/deps/roundtrip-818225bc15606d79.d: crates/asm/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-818225bc15606d79.rmeta: crates/asm/tests/roundtrip.rs Cargo.toml

crates/asm/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
