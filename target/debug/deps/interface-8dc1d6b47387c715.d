/root/repo/target/debug/deps/interface-8dc1d6b47387c715.d: tests/interface.rs Cargo.toml

/root/repo/target/debug/deps/libinterface-8dc1d6b47387c715.rmeta: tests/interface.rs Cargo.toml

tests/interface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
