/root/repo/target/debug/deps/execution-b7f530f43cb00897.d: crates/pipeline/tests/execution.rs

/root/repo/target/debug/deps/execution-b7f530f43cb00897: crates/pipeline/tests/execution.rs

crates/pipeline/tests/execution.rs:
