//! `stringsearch`: Boyer–Moore–Horspool over LCG-generated text
//! (MiBench's stringsearch runs Pratt–Boyer–Moore searches; this
//! kernel builds the Horspool skip table and scans a text buffer for
//! several patterns, counting matches).

use crate::lcg;

// A text comfortably larger than the 32-KB L1 and whose BC meta-data
// (1 byte/word = 24 KB) overflows the 4-KB meta cache: this workload is
// the one that stresses the memory system, like MiBench stringsearch
// in the paper (its Table IV worst case).
const TEXT_LEN: usize = 96 * 1024;
const PAT_LEN: usize = 4;
const PASSES: u32 = 4;
const SEED: u32 = 0x5ee0_5eed;
/// Byte alphabet: small so matches actually occur.
const ALPHABET: u32 = 8;

fn text() -> Vec<u8> {
    let mut seed = SEED;
    (0..TEXT_LEN)
        .map(|_| {
            seed = lcg(seed);
            b'a' + ((seed >> 24) % ALPHABET) as u8
        })
        .collect()
}

/// Pattern for one pass: taken from the text itself so matches exist.
fn pattern(text: &[u8], pass: u32) -> [u8; PAT_LEN] {
    let off = (lcg(0x9999_0000 + pass) as usize) % (TEXT_LEN - PAT_LEN);
    let mut p = [0u8; PAT_LEN];
    p.copy_from_slice(&text[off..off + PAT_LEN]);
    p
}

/// Horspool search counting matches — mirrors the assembly exactly.
fn horspool_count(text: &[u8], pat: &[u8]) -> u32 {
    let m = pat.len();
    let mut skip = [m as u32; 256];
    for i in 0..m - 1 {
        skip[pat[i] as usize] = (m - 1 - i) as u32;
    }
    let mut count = 0;
    let mut pos = 0usize;
    while pos + m <= text.len() {
        let mut j = m;
        while j > 0 && text[pos + j - 1] == pat[j - 1] {
            j -= 1;
        }
        if j == 0 {
            count += 1;
            pos += 1;
        } else {
            pos += skip[text[pos + m - 1] as usize] as usize;
        }
    }
    count
}

/// Rust reference producing the expected total match count.
fn reference() -> u32 {
    let t = text();
    (0..PASSES).map(|p| horspool_count(&t, &pattern(&t, p))).sum()
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let t = text();
    // Patterns are baked as data words (one byte per word for easy
    // indexed access in the kernel's inner loop).
    let mut pat_words = String::new();
    for pass in 0..PASSES {
        let p = pattern(&t, pass);
        for &b in &p {
            pat_words.push_str(&format!(".word {b}\n"));
        }
    }
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! stringsearch: Horspool over generated text, {PASSES} patterns.
        .equ TEXTLEN, {TEXT_LEN}
        .equ PATLEN, {PAT_LEN}
        .equ PASSES, {PASSES}
start:
        ! Generate the text (byte stores).
        set {SEED}, %g2
        set text, %l6
        set TEXTLEN, %l5
gen:
        {lcg}
        srl %g2, 24, %o0
        and %o0, 7, %o0        ! alphabet of 8
        add %o0, 'a', %o0
        stb %o0, [%l6]
        add %l6, 1, %l6
        subcc %l5, 1, %l5
        bne gen
        nop

        clr %g5                ! total matches
        clr %g6                ! pass index
pass:
        ! Build the skip table: 256 entries of PATLEN, then
        ! skip[pat[i]] = PATLEN-1-i for i in 0..PATLEN-1.
        set skip, %l0
        mov 256, %o0
fill_skip:
        mov PATLEN, %o1
        st %o1, [%l0]
        add %l0, 4, %l0
        subcc %o0, 1, %o0
        bne fill_skip
        nop
        ! pattern base for this pass: pats + pass*PATLEN*4
        set pats, %l1
        sll %g6, 4, %o0        ! PATLEN*4 = 16 bytes per pattern
        add %l1, %o0, %l1      ! %l1 = &pat[0] (one byte per word)
        set skip, %l0
        clr %o1                ! i
skip_init:
        sll %o1, 2, %o2
        ld [%l1 + %o2], %o3    ! pat[i]
        sll %o3, 2, %o3
        add %l0, %o3, %o3
        mov PATLEN, %o4
        sub %o4, 1, %o4
        sub %o4, %o1, %o4      ! PATLEN-1-i
        st %o4, [%o3]
        add %o1, 1, %o1
        cmp %o1, PATLEN - 1
        bl skip_init
        nop

        ! Search.
        set text, %l2          ! text base
        clr %l3                ! pos
        set {search_end}, %l4  ! TEXTLEN - PATLEN
search:
        cmp %l3, %l4
        bgu pass_done
        nop
        ! compare pat backwards: j = PATLEN
        mov PATLEN, %o1
cmploop:
        cmp %o1, 0
        be matched
        nop
        add %l3, %o1, %o2
        sub %o2, 1, %o2
        ldub [%l2 + %o2], %o3  ! text[pos + j - 1]
        sll %o1, 2, %o4
        sub %o4, 4, %o4
        ld [%l1 + %o4], %o5    ! pat[j-1]
        cmp %o3, %o5
        bne mismatch
        nop
        ba cmploop
        sub %o1, 1, %o1        ! j-- in the delay slot
matched:
        add %g5, 1, %g5
        ba search
        add %l3, 1, %l3        ! pos++ in the delay slot
mismatch:
        ! pos += skip[text[pos + PATLEN - 1]]
        add %l3, PATLEN - 1, %o2
        ldub [%l2 + %o2], %o3
        sll %o3, 2, %o3
        set skip, %o4
        ld [%o4 + %o3], %o5
        ba search
        add %l3, %o5, %l3      ! advance in the delay slot
pass_done:
        add %g6, 1, %g6
        cmp %g6, PASSES
        bl pass
        nop

        set {expected}, %o1
        cmp %g5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
skip:   .space 1024
pats:
{pat_words}
        .align 4
text:   .space {TEXT_LEN}
",
        search_end = TEXT_LEN - PAT_LEN
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horspool_agrees_with_naive_search() {
        let t = text();
        for pass in 0..4 {
            let p = pattern(&t, pass);
            let naive = t.windows(PAT_LEN).filter(|w| *w == p).count() as u32;
            assert_eq!(horspool_count(&t, &p), naive, "pass {pass}");
        }
    }

    #[test]
    fn patterns_actually_occur() {
        // The small alphabet plus text-sampled patterns guarantee a
        // meaningful match count.
        assert!(reference() > 10, "reference count {}", reference());
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
