/root/repo/target/debug/examples/fifo_sweep-a4b7d8bb978bef90.d: examples/fifo_sweep.rs

/root/repo/target/debug/examples/fifo_sweep-a4b7d8bb978bef90: examples/fifo_sweep.rs

examples/fifo_sweep.rs:
