//! The bundled daemon client: one connection per request, typed
//! errors, and a backpressure-honoring submit loop.
//!
//! The protocol is deliberately tiny — connect to the daemon's Unix
//! socket, write one JSON line, read the response line(s), close. The
//! interesting part is the failure behavior: a `rejected` answer
//! carries the daemon's `retry_after_ms` hint, and [`Client::submit`]
//! honors it with **bounded exponential backoff plus deterministic
//! jitter** — it waits at least the hinted delay, doubles its own
//! floor each round up to a cap, and adds a seed-derived jitter term
//! so a herd of clients hammered off the same rejection does not
//! resynchronize into the exact same retry instant. The jitter is a
//! pure function of (seed, attempt): test runs are reproducible,
//! nothing reads a clock for randomness.

use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::Value;

use crate::job::{JobId, JobSpec};

/// How [`Client::submit`] retries `rejected` answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Submission attempts before giving up (clamped to ≥ 1).
    pub max_attempts: u32,
    /// First-round backoff floor; doubles per round.
    pub base_ms: u64,
    /// Ceiling on any single wait (hint + backoff + jitter included).
    pub cap_ms: u64,
    /// Jitter seed — two clients with different seeds spread their
    /// retries apart; the same seed reproduces the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 8, base_ms: 25, cap_ms: 2_000, seed: 0xf1ec }
    }
}

impl RetryPolicy {
    /// The wait before retry round `attempt` (1-based) given the
    /// daemon's hint: `min(cap, max(hint, base·2^(attempt-1)) + jitter)`
    /// where jitter is a deterministic function of (seed, attempt)
    /// bounded by a quarter of the backoff floor.
    pub fn backoff_ms(&self, attempt: u32, hint_ms: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        let floor = self.base_ms.saturating_mul(1 << shift);
        let jitter_bound = (floor / 4).max(1);
        let wait = floor.max(hint_ms).saturating_add(jitter(self.seed, attempt) % jitter_bound);
        wait.min(self.cap_ms)
    }
}

/// splitmix64-style bit mix: deterministic, clock-free jitter.
fn jitter(seed: u64, attempt: u32) -> u64 {
    let mut x = seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the daemon.
    Io {
        /// The socket path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The daemon answered with a typed error object.
    Refused {
        /// The `error` field (`rejected`, `duplicate`, `draining`,
        /// `malformed`, `oversized`, `bad-job`, `unknown-job`, ...).
        kind: String,
        /// The full response, for diagnostics.
        response: Value,
    },
    /// The daemon's answer did not parse as a response line.
    Protocol(String),
    /// Every submit attempt came back `rejected`.
    RetriesExhausted {
        /// Attempts spent.
        attempts: u32,
        /// The last rejection's `retry_after_ms` hint.
        last_hint_ms: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            ClientError::Refused { kind, response } => {
                write!(f, "daemon refused ({kind}): {}", serde::to_string(response))
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::RetriesExhausted { attempts, last_hint_ms } => write!(
                f,
                "gave up after {attempts} rejected submissions (last hint: {last_hint_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client for one daemon socket.
#[derive(Clone, Debug)]
pub struct Client {
    socket: PathBuf,
    retry: RetryPolicy,
}

impl Client {
    /// A client for the daemon at `socket` with default retries.
    pub fn new(socket: &Path) -> Client {
        Client { socket: socket.to_path_buf(), retry: RetryPolicy::default() }
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    fn io_err(&self, error: std::io::Error) -> ClientError {
        ClientError::Io { path: self.socket.clone(), error }
    }

    /// One request/response round trip on a fresh connection.
    fn request(&self, v: &Value) -> Result<Value, ClientError> {
        let mut stream = UnixStream::connect(&self.socket).map_err(|e| self.io_err(e))?;
        let mut line = serde::to_string(v);
        line.push('\n');
        stream.write_all(line.as_bytes()).map_err(|e| self.io_err(e))?;
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        reader.read_line(&mut buf).map_err(|e| self.io_err(e))?;
        decode_response(&buf)
    }

    /// Liveness check; returns the daemon's `ping` response.
    pub fn ping(&self) -> Result<Value, ClientError> {
        self.request(&Value::object().field("op", &"ping").build())
    }

    /// The daemon's status document (phase + deterministic counters).
    pub fn status(&self) -> Result<Value, ClientError> {
        self.request(&Value::object().field("op", &"status").build())
    }

    /// Asks the daemon to drain: stop admission, finish queued and
    /// in-flight work, heartbeat, and exit.
    pub fn drain(&self) -> Result<Value, ClientError> {
        self.request(&Value::object().field("op", &"drain").build())
    }

    /// Submits a job, honoring `rejected` backpressure with bounded
    /// exponential backoff + deterministic jitter. Non-backpressure
    /// refusals (`duplicate`, `draining`, `bad-job`, ...) are returned
    /// immediately — retrying them would never succeed.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId, ClientError> {
        let req = Value::object().field("op", &"submit").raw("job", spec.to_value()).build();
        let attempts = self.retry.max_attempts.max(1);
        let mut last_hint = 0u64;
        for attempt in 1..=attempts {
            match self.request(&req) {
                Ok(resp) => {
                    let id = resp
                        .get("id")
                        .and_then(Value::as_str)
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .map(JobId);
                    return id.ok_or_else(|| {
                        ClientError::Protocol(format!(
                            "submit response without a campaign id: {}",
                            serde::to_string(&resp)
                        ))
                    });
                }
                Err(ClientError::Refused { kind, response }) if kind == "rejected" => {
                    last_hint = response.get("retry_after_ms").and_then(Value::as_u64).unwrap_or(0);
                    if attempt < attempts {
                        let wait = self.retry.backoff_ms(attempt, last_hint);
                        std::thread::sleep(Duration::from_millis(wait));
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last_hint_ms: last_hint })
    }

    /// Subscribes to a job's live feed: `on_line` sees every streamed
    /// trial line; the terminal `done` line is returned. An error line
    /// (unknown job, malformed id) comes back as
    /// [`ClientError::Refused`].
    pub fn subscribe<F>(&self, id: JobId, mut on_line: F) -> Result<Value, ClientError>
    where
        F: FnMut(&Value),
    {
        let req = Value::object().field("op", &"subscribe").field("id", &id.to_string()).build();
        let mut stream = UnixStream::connect(&self.socket).map_err(|e| self.io_err(e))?;
        let mut line = serde::to_string(&req);
        line.push('\n');
        stream.write_all(line.as_bytes()).map_err(|e| self.io_err(e))?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line.map_err(|e| self.io_err(e))?;
            let v = decode_response(&line)?;
            match v.get("stream").and_then(Value::as_str) {
                Some("done") => return Ok(v),
                _ => on_line(&v),
            }
        }
        Err(ClientError::Protocol("feed ended without a terminal `done` line".into()))
    }
}

/// Decodes one response line: JSON that is either an `ok`/stream
/// object or a typed error object.
fn decode_response(line: &str) -> Result<Value, ClientError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(ClientError::Protocol("empty response (daemon closed the connection)".into()));
    }
    let v = serde::from_str(trimmed)
        .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
    if let Some(kind) = v.get("error").and_then(Value::as_str) {
        return Err(ClientError::Refused { kind: kind.to_string(), response: v.clone() });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_hint_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 8, base_ms: 100, cap_ms: 1_000, seed: 7 };
        // The hint is a floor: a 400 ms hint beats the 100 ms base.
        assert!(p.backoff_ms(1, 400) >= 400);
        // With no hint the exponential floor applies.
        assert!(p.backoff_ms(1, 0) >= 100);
        assert!(p.backoff_ms(2, 0) >= 200);
        assert!(p.backoff_ms(3, 0) >= 400);
        // Everything respects the cap, hint included.
        assert!(p.backoff_ms(6, 0) <= 1_000);
        assert!(p.backoff_ms(1, 50_000) <= 1_000);
    }

    #[test]
    fn jitter_is_deterministic_and_spreads_seeds() {
        let p = RetryPolicy { max_attempts: 8, base_ms: 100, cap_ms: 10_000, seed: 1 };
        let q = RetryPolicy { seed: 2, ..p };
        assert_eq!(p.backoff_ms(2, 0), p.backoff_ms(2, 0), "same seed, same schedule");
        // Different seeds decorrelate at least one of the first rounds
        // (jitter bound is floor/4, so collisions are possible on any
        // single round but not across all of them for these seeds).
        assert!(
            (1..=4).any(|a| p.backoff_ms(a, 0) != q.backoff_ms(a, 0)),
            "seeds must spread retry schedules"
        );
    }

    #[test]
    fn error_lines_decode_to_typed_refusals() {
        let err = decode_response(r#"{"ok":false,"error":"rejected","retry_after_ms":750}"#)
            .expect_err("typed refusal");
        let ClientError::Refused { kind, response } = err else {
            panic!("expected Refused, got {err:?}");
        };
        assert_eq!(kind, "rejected");
        assert_eq!(response.get("retry_after_ms").and_then(Value::as_u64), Some(750));
        assert!(decode_response("").is_err());
        assert!(decode_response("not json").is_err());
        assert!(decode_response(r#"{"ok":true,"op":"ping"}"#).is_ok());
    }
}
