/root/repo/target/debug/deps/faultsweep-3b01a67794d81bd4.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/faultsweep-3b01a67794d81bd4: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
