//! Micro-benchmarks: the assembler on the largest workload sources.

use flexcore_asm::assemble;
use flexcore_bench::microbench::Harness;
use flexcore_workloads::Workload;

fn main() {
    let h = Harness::new();
    let sha = Workload::sha().source();
    let fft = Workload::fft().source();
    h.run("assemble/sha", || assemble(&sha).expect("sha assembles").len());
    h.run("assemble/fft", || assemble(&fft).expect("fft assembles").len());
}
