//! `basicmath`: integer square roots, GCDs, and division/remainder
//! chains over an LCG stream (MiBench's basicmath exercises scalar math
//! library routines; this kernel keeps the integer-heavy core:
//! Newton's isqrt, Euclid's gcd, and quotient/remainder arithmetic).

use crate::lcg;

const ITERS: u32 = 500;
const SEED: u32 = 0x0bad_cafe;

/// Newton integer square root, mirroring the assembly's wrapping
/// arithmetic. The kernel only feeds it values below 2^20 (`a` is
/// `seed >> 12`), where the iteration cannot overflow.
fn isqrt(v: u32) -> u32 {
    if v == 0 {
        return 0;
    }
    let mut x = v;
    let mut y = x.wrapping_add(1) / 2;
    while y < x {
        x = y;
        y = x.wrapping_add(v / x) / 2;
    }
    x
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Rust reference producing the expected checksum.
fn reference() -> u32 {
    let mut seed = SEED;
    let mut total = 0u32;
    for _ in 0..ITERS {
        seed = lcg(seed);
        let a = (seed >> 12) | 1;
        seed = lcg(seed);
        let b = ((seed >> 20) | 1).max(1);
        let q = a / b;
        let r = a - q * b;
        total =
            total.wrapping_add(q).wrapping_add(r).wrapping_add(isqrt(a)).wrapping_add(gcd(a, b));
    }
    total
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! basicmath: isqrt (Newton), gcd (Euclid), div/rem chains.
        .equ ITERS, {ITERS}
start:
        set {SEED}, %g2
        set ITERS, %g3
        clr %g5                ! total
iter:
        {lcg}
        srl %g2, 12, %l0       ! a
        or %l0, 1, %l0
        {lcg}
        srl %g2, 20, %l1       ! b
        or %l1, 1, %l1

        ! q = a / b ; r = a - q*b
        udiv %l0, %l1, %l2
        umul %l2, %l1, %o0
        sub %l0, %o0, %l3
        add %g5, %l2, %g5
        add %g5, %l3, %g5

        ! isqrt(a) by Newton: x = a; y = (x+1)/2; while y < x ...
        mov %l0, %l4           ! x
        add %l4, 1, %o0
        srl %o0, 1, %l5        ! y
newton:
        cmp %l5, %l4
        bgeu newton_done
        nop
        mov %l5, %l4
        udiv %l0, %l4, %o0
        add %l4, %o0, %o0
        ba newton
        srl %o0, 1, %l5        ! y = (x + a/x)/2 in the delay slot
newton_done:
        add %g5, %l4, %g5

        ! gcd(a, b) by Euclid with remainders.
        mov %l0, %o1           ! a
        mov %l1, %o2           ! b
gcd:
        cmp %o2, 0
        be gcd_done
        nop
        udiv %o1, %o2, %o3
        umul %o3, %o2, %o3
        sub %o1, %o3, %o3      ! t = a % b
        mov %o2, %o1
        ba gcd
        mov %o3, %o2
gcd_done:
        add %g5, %o1, %g5

        subcc %g3, 1, %g3
        bne iter
        nop

        set {expected}, %o1
        cmp %g5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_the_integer_square_root() {
        for v in [0u32, 1, 2, 3, 4, 15, 16, 17, 99, 100, 65535, 65536, (1 << 20) - 1] {
            let r = isqrt(v);
            assert!(u64::from(r) * u64::from(r) <= u64::from(v), "{v}");
            assert!((u64::from(r) + 1) * (u64::from(r) + 1) > u64::from(v), "{v}");
        }
    }

    #[test]
    fn gcd_matches_euclid_properties() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(100, 0), 100);
        for (a, b) in [(48u32, 36u32), (1071, 462), (270, 192)] {
            let g = gcd(a, b);
            assert_eq!(a % g, 0);
            assert_eq!(b % g, 0);
        }
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
