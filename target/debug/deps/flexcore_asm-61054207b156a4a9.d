/root/repo/target/debug/deps/flexcore_asm-61054207b156a4a9.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libflexcore_asm-61054207b156a4a9.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
