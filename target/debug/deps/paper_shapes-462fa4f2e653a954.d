/root/repo/target/debug/deps/paper_shapes-462fa4f2e653a954.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-462fa4f2e653a954: tests/paper_shapes.rs

tests/paper_shapes.rs:
