//! Core configuration.

use flexcore_mem::CacheConfig;

/// Timing and cache parameters of the modeled core.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Write buffer depth for write-through stores.
    pub store_buffer_depth: usize,
    /// Extra cycles for integer multiply (Leon3's 32x32 multiplier).
    pub mul_latency: u32,
    /// Extra cycles for integer divide (Leon3's radix-2 divider).
    pub div_latency: u32,
    /// Extra cycles a load spends in the pipeline beyond the base cycle
    /// (Leon3 loads occupy the memory stage for two cycles).
    pub load_latency: u32,
    /// Extra cycles charged on a *taken* control transfer beyond its
    /// delay slot (the Leon3 fetch-redirect bubble on jumps and taken
    /// branches).
    pub taken_branch_penalty: u32,
    /// Idealized commit width: how many instructions share one base
    /// cycle. 1 models the paper's single-issue Leon3; larger values
    /// give an optimistic superscalar bound (no dependence stalls) for
    /// the paper's future-work question of how FlexCore scales when
    /// the core commits faster. Cache, branch, and latency penalties
    /// still apply per instruction.
    pub commit_width: u32,
}

impl CoreConfig {
    /// The paper's evaluation configuration (§V.A): Leon3 with
    /// single-issue 7-stage pipeline, 32-KB L1 I/D caches with 32-B
    /// lines, write-through no-allocate.
    pub fn leon3() -> CoreConfig {
        CoreConfig {
            icache: CacheConfig::l1_default(),
            dcache: CacheConfig::l1_default(),
            store_buffer_depth: 8,
            mul_latency: 4,
            div_latency: 35,
            load_latency: 1,
            taken_branch_penalty: 1,
            commit_width: 1,
        }
    }

    /// An idealized `width`-issue variant of the Leon3 configuration
    /// (see [`CoreConfig::commit_width`]).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn superscalar(width: u32) -> CoreConfig {
        assert!(width > 0, "commit width must be at least 1");
        CoreConfig { commit_width: width, ..CoreConfig::leon3() }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::leon3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leon3_matches_paper_parameters() {
        let c = CoreConfig::leon3();
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.icache.line_bytes, 32);
        assert_eq!(c.dcache.size_bytes, 32 * 1024);
        assert!(c.div_latency > c.mul_latency);
    }
}
