/root/repo/target/debug/examples/soft_error-2de09d0cae5a6c2b.d: examples/soft_error.rs Cargo.toml

/root/repo/target/debug/examples/libsoft_error-2de09d0cae5a6c2b.rmeta: examples/soft_error.rs Cargo.toml

examples/soft_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
