/root/repo/target/debug/examples/dift_attack-0220940e0382815a.d: examples/dift_attack.rs

/root/repo/target/debug/examples/dift_attack-0220940e0382815a: examples/dift_attack.rs

examples/dift_attack.rs:
