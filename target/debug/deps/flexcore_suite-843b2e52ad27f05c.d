/root/repo/target/debug/deps/flexcore_suite-843b2e52ad27f05c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_suite-843b2e52ad27f05c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
