/root/repo/target/debug/deps/fabric_models-6f879cc1a53669b2.d: crates/bench/benches/fabric_models.rs Cargo.toml

/root/repo/target/debug/deps/libfabric_models-6f879cc1a53669b2.rmeta: crates/bench/benches/fabric_models.rs Cargo.toml

crates/bench/benches/fabric_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
