/root/repo/target/debug/deps/flexcore_fabric-4a229bf2ae310bc1.d: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

/root/repo/target/debug/deps/libflexcore_fabric-4a229bf2ae310bc1.rmeta: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs

crates/fabric/src/lib.rs:
crates/fabric/src/bitstream.rs:
crates/fabric/src/calib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/lutmap.rs:
crates/fabric/src/netlist.rs:
crates/fabric/src/vcd.rs:
