//! Greedy K-feasible-cone technology mapping to LUTs.

use std::collections::BTreeSet;

use crate::{Gate, Net, Netlist};

/// One mapped LUT: a root net, its cone leaves, and the truth table of
/// the cone as a function of the leaves (LSB-first index order).
#[derive(Clone, Debug)]
pub struct Lut {
    /// The net this LUT produces.
    pub root: Net,
    /// Cone inputs (terminals or other LUT roots), sorted.
    pub leaves: Vec<Net>,
    /// `2^leaves.len()` entries; index bit *i* is the value of
    /// `leaves[i]`.
    pub table: Vec<bool>,
}

/// Result of [`map_to_luts`].
#[derive(Clone, Debug)]
pub struct LutMapping {
    k: usize,
    luts: Vec<Lut>,
    depth: usize,
}

impl LutMapping {
    /// Reassembles a mapping from parts (the bitstream loader). The
    /// parts must describe a well-formed network: every truth table
    /// sized `2^leaves`, leaves strictly sorted and topologically
    /// before their root, and roots in strictly increasing net order.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violation.
    pub(crate) fn from_parts(
        k: usize,
        luts: Vec<Lut>,
        depth: usize,
    ) -> Result<LutMapping, &'static str> {
        if !(1..=16).contains(&k) {
            return Err("LUT size out of range");
        }
        let mut prev_root: Option<Net> = None;
        for lut in &luts {
            if lut.table.len() != 1 << lut.leaves.len() {
                return Err("truth table size does not match leaf count");
            }
            if lut.leaves.len() > k {
                return Err("cone wider than the LUT size");
            }
            if !lut.leaves.windows(2).all(|w| w[0] < w[1]) {
                return Err("leaves not strictly sorted");
            }
            if lut.leaves.iter().any(|&l| l >= lut.root) {
                return Err("leaf does not precede its root");
            }
            if prev_root.is_some_and(|p| p >= lut.root) {
                return Err("roots not in topological order");
            }
            prev_root = Some(lut.root);
        }
        Ok(LutMapping { k, luts, depth })
    }

    /// LUT input count the mapping targeted (6 for Virtex-5).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of LUTs.
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// Critical-path depth in LUT levels.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The mapped LUTs, in topological order.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// Evaluates the LUT network against the original netlist's input
    /// and flop-state conventions; returns output values and updates
    /// `state` exactly like [`Netlist::eval`].
    ///
    /// Used by the equivalence tests: the mapped network must compute
    /// the same function as the source netlist.
    ///
    /// # Panics
    ///
    /// Panics on input/state length mismatch.
    pub fn eval(
        &self,
        netlist: &Netlist,
        input_values: &[bool],
        state: &mut Vec<bool>,
    ) -> Vec<bool> {
        assert_eq!(input_values.len(), netlist.inputs().len(), "input vector length");
        assert_eq!(state.len(), netlist.flops(), "state vector length");
        let mut values = vec![None::<bool>; netlist.gates().len()];
        let mut in_iter = input_values.iter();
        let mut flop_iter = state.iter();
        for (i, gate) in netlist.gates().iter().enumerate() {
            match gate {
                Gate::Input => values[i] = Some(*in_iter.next().expect("checked")),
                Gate::Const(v) => values[i] = Some(*v),
                Gate::Dff(_) => values[i] = Some(*flop_iter.next().expect("checked")),
                _ => {}
            }
        }
        // LUTs are in topological order (roots only reference earlier
        // nets).
        for lut in &self.luts {
            let mut idx = 0usize;
            for (bit, leaf) in lut.leaves.iter().enumerate() {
                if values[leaf.index()].expect("leaf evaluated before root") {
                    idx |= 1 << bit;
                }
            }
            values[lut.root.index()] = Some(lut.table[idx]);
        }
        let mut next = Vec::with_capacity(state.len());
        for (i, gate) in netlist.gates().iter().enumerate() {
            if let Gate::Dff(d) = gate {
                let _ = i;
                next.push(values[d.index()].expect("flop input must be mapped"));
            }
        }
        *state = next;
        netlist
            .outputs()
            .iter()
            .map(|(_, n)| values[n.index()].expect("output must be mapped"))
            .collect()
    }
}

fn is_terminal(g: &Gate) -> bool {
    matches!(g, Gate::Input | Gate::Const(_) | Gate::Dff(_))
}

/// Evaluates the cone rooted at `net` down to `leaves`, under the given
/// leaf assignment.
fn eval_cone(netlist: &Netlist, net: Net, leaves: &[Net], assignment: usize) -> bool {
    if let Ok(pos) = leaves.binary_search(&net) {
        return (assignment >> pos) & 1 == 1;
    }
    match netlist.gates()[net.index()] {
        Gate::Const(v) => v,
        Gate::Input | Gate::Dff(_) => {
            unreachable!("terminal {net:?} must be a leaf of its cone")
        }
        Gate::Not(a) => !eval_cone(netlist, a, leaves, assignment),
        Gate::And(a, b) => {
            eval_cone(netlist, a, leaves, assignment) && eval_cone(netlist, b, leaves, assignment)
        }
        Gate::Or(a, b) => {
            eval_cone(netlist, a, leaves, assignment) || eval_cone(netlist, b, leaves, assignment)
        }
        Gate::Xor(a, b) => {
            eval_cone(netlist, a, leaves, assignment) ^ eval_cone(netlist, b, leaves, assignment)
        }
        Gate::Mux { sel, a, b } => {
            if eval_cone(netlist, sel, leaves, assignment) {
                eval_cone(netlist, b, leaves, assignment)
            } else {
                eval_cone(netlist, a, leaves, assignment)
            }
        }
    }
}

/// Maps a netlist's combinational logic onto `k`-input LUTs with a
/// greedy cone-growing heuristic (logic duplication allowed, as in real
/// mappers): each gate absorbs its fan-in cones while the merged leaf
/// set stays within `k`; when it would overflow, the fan-ins are
/// materialized as LUT roots. Primary outputs and flop data inputs are
/// always roots.
///
/// The returned mapping carries per-LUT truth tables so that functional
/// equivalence with the source netlist can be (and is, in this crate's
/// property tests) checked by co-simulation.
///
/// # Panics
///
/// Panics if `k` is 0 or absurdly large (> 16: truth tables become
/// infeasible).
pub fn map_to_luts(netlist: &Netlist, k: usize) -> LutMapping {
    assert!((1..=16).contains(&k), "LUT size {k} out of range");
    let gates = netlist.gates();
    let n = gates.len();
    // Per net: cone leaf set and arrival depth (LUT levels).
    let mut leafset: Vec<BTreeSet<Net>> = vec![BTreeSet::new(); n];
    let mut conedepth: Vec<usize> = vec![0; n];
    let mut is_root = vec![false; n];

    // Mark structural roots first: outputs and flop inputs.
    let mut forced_roots: Vec<Net> = Vec::new();
    for (_, net) in netlist.outputs() {
        forced_roots.push(*net);
    }
    for g in gates {
        if let Gate::Dff(d) = g {
            forced_roots.push(*d);
        }
    }

    for i in 0..n {
        let net = Net(i as u32);
        let gate = &gates[i];
        if is_terminal(gate) {
            if !matches!(gate, Gate::Const(_)) {
                leafset[i].insert(net);
            }
            conedepth[i] = 0;
            continue;
        }
        let fanins = gate.inputs();
        let mut union: BTreeSet<Net> = BTreeSet::new();
        for f in &fanins {
            if is_root[f.index()] || is_terminal(&gates[f.index()]) {
                // Already materialized: contributes itself as a leaf
                // (constants contribute nothing).
                if !matches!(gates[f.index()], Gate::Const(_)) {
                    union.insert(*f);
                }
            } else {
                union.extend(leafset[f.index()].iter().copied());
            }
        }
        if union.len() <= k {
            leafset[i] = union;
        } else {
            // Cut here: materialize each non-terminal fan-in as a root.
            let mut cut: BTreeSet<Net> = BTreeSet::new();
            for f in &fanins {
                if !matches!(gates[f.index()], Gate::Const(_)) {
                    if !is_terminal(&gates[f.index()]) {
                        is_root[f.index()] = true;
                    }
                    cut.insert(*f);
                }
            }
            leafset[i] = cut;
        }
        // Arrival of a leaf: 0 for terminals, the (root) cone depth for
        // mapped gates. The cone containing `net` adds one level.
        let depth = leafset[i]
            .iter()
            .map(|l| if is_terminal(&gates[l.index()]) { 0 } else { conedepth[l.index()] })
            .max()
            .unwrap_or(0);
        conedepth[i] = depth + 1;
    }

    for net in forced_roots {
        if !is_terminal(&gates[net.index()]) {
            is_root[net.index()] = true;
        }
    }

    // Build the LUTs (topological: net order).
    let mut luts = Vec::new();
    let mut depth = 0;
    for i in 0..n {
        if !is_root[i] {
            continue;
        }
        let root = Net(i as u32);
        let leaves: Vec<Net> = leafset[i].iter().copied().collect();
        let table: Vec<bool> = (0..1usize << leaves.len())
            .map(|assignment| eval_cone(netlist, root, &leaves, assignment))
            .collect();
        depth = depth.max(conedepth[i]);
        luts.push(Lut { root, leaves, table });
    }
    LutMapping { k, luts, depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn single_gate_maps_to_one_lut() {
        let mut b = NetlistBuilder::new("and");
        let x = b.input();
        let y = b.input();
        let z = b.and(x, y);
        b.output("z", z);
        let m = map_to_luts(&b.finish(), 6);
        assert_eq!(m.lut_count(), 1);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn six_input_cone_fits_one_lut() {
        // OR-tree of 6 inputs: 5 gates, all absorbed into one 6-LUT.
        let mut b = NetlistBuilder::new("or6");
        let xs = b.input_bus(6);
        let o = b.reduce_or(&xs);
        b.output("o", o);
        let m = map_to_luts(&b.finish(), 6);
        assert_eq!(m.lut_count(), 1);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn seven_input_cone_needs_more_than_one_lut() {
        let mut b = NetlistBuilder::new("or7");
        let xs = b.input_bus(7);
        let o = b.reduce_or(&xs);
        b.output("o", o);
        let m = map_to_luts(&b.finish(), 6);
        // Optimal is 2; the greedy heuristic may use 3.
        assert!((2..=3).contains(&m.lut_count()), "{}", m.lut_count());
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn wide_xor_scales_logarithmically_in_depth() {
        let mut b = NetlistBuilder::new("xor64");
        let xs = b.input_bus(64);
        let o = b.reduce_xor(&xs);
        b.output("o", o);
        let m = map_to_luts(&b.finish(), 6);
        // Optimal is ~13 LUTs / 2 levels; the greedy mapper lands
        // within 2x of that.
        assert!(m.lut_count() <= 26, "{} luts", m.lut_count());
        assert!(m.depth() <= 4, "depth {}", m.depth());
    }

    #[test]
    fn mapped_network_matches_netlist_exhaustively() {
        // 8-bit adder, all 65536 input pairs.
        let mut b = NetlistBuilder::new("add8");
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let m = map_to_luts(&n, 6);
        for a in (0..256u64).step_by(7) {
            for bb in (0..256u64).step_by(11) {
                let mut inp = to_bits(a, 8);
                inp.extend(to_bits(bb, 8));
                let mut s1 = n.initial_state();
                let mut s2 = n.initial_state();
                assert_eq!(n.eval(&inp, &mut s1), m.eval(&n, &inp, &mut s2), "{a}+{bb}");
            }
        }
    }

    #[test]
    fn flop_inputs_become_roots() {
        let mut b = NetlistBuilder::new("regged");
        let x = b.input();
        let y = b.input();
        let z = b.xor(x, y);
        let q = b.register(z);
        b.output("q", q);
        let n = b.finish();
        let m = map_to_luts(&n, 6);
        assert_eq!(m.lut_count(), 1, "the xor feeding the flop");
        // Sequential equivalence over a few cycles.
        let mut s1 = n.initial_state();
        let mut s2 = n.initial_state();
        for (a, bb) in [(true, false), (true, true), (false, false), (false, true)] {
            assert_eq!(n.eval(&[a, bb], &mut s1), m.eval(&n, &[a, bb], &mut s2));
            assert_eq!(s1, s2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_k_rejected() {
        let mut b = NetlistBuilder::new("x");
        let i = b.input();
        b.output("o", i);
        let _ = map_to_luts(&b.finish(), 0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::{Netlist, NetlistBuilder};
    use proptest::prelude::*;

    /// Random netlist construction recipe: a list of ops over the pool
    /// of existing nets.
    #[derive(Clone, Debug)]
    enum Op {
        Not(usize),
        And(usize, usize),
        Or(usize, usize),
        Xor(usize, usize),
        Mux(usize, usize, usize),
        Reg(usize),
    }

    fn build(num_inputs: usize, ops: &[Op]) -> Netlist {
        let mut b = NetlistBuilder::new("random");
        let mut pool: Vec<crate::Net> = (0..num_inputs).map(|_| b.input()).collect();
        for op in ops {
            let pick = |i: usize| pool[i % pool.len()];
            let n = match *op {
                Op::Not(a) => b.not(pick(a)),
                Op::And(a, c) => b.and(pick(a), pick(c)),
                Op::Or(a, c) => b.or(pick(a), pick(c)),
                Op::Xor(a, c) => b.xor(pick(a), pick(c)),
                Op::Mux(s, a, c) => b.mux(pick(s), pick(a), pick(c)),
                Op::Reg(d) => b.register(pick(d)),
            };
            pool.push(n);
        }
        // Expose the last few nets as outputs.
        for (i, &n) in pool.iter().rev().take(4).enumerate() {
            b.output(format!("o{i}"), n);
        }
        b.finish()
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<usize>().prop_map(Op::Not),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::And(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Or(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
            (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
            any::<usize>().prop_map(Op::Reg),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The mapped LUT network is cycle-by-cycle equivalent to the
        /// source netlist on random circuits and random stimulus.
        #[test]
        fn mapping_preserves_function(
            num_inputs in 1usize..8,
            ops in prop::collection::vec(arb_op(), 1..120),
            stimulus in prop::collection::vec(any::<u8>(), 1..12),
            k in 2usize..7,
        ) {
            let n = build(num_inputs, &ops);
            let m = map_to_luts(&n, k);
            let mut s1 = n.initial_state();
            let mut s2 = n.initial_state();
            for byte in stimulus {
                let inputs: Vec<bool> = (0..num_inputs).map(|i| (byte >> (i % 8)) & 1 == 1).collect();
                let o1 = n.eval(&inputs, &mut s1);
                let o2 = m.eval(&n, &inputs, &mut s2);
                prop_assert_eq!(&o1, &o2);
                prop_assert_eq!(&s1, &s2);
            }
        }

        /// LUT count never exceeds the gate count (each gate fits in a
        /// LUT by itself) and depth is positive when logic exists.
        #[test]
        fn mapping_size_sanity(
            num_inputs in 1usize..6,
            ops in prop::collection::vec(arb_op(), 1..80),
        ) {
            let n = build(num_inputs, &ops);
            let m = map_to_luts(&n, 6);
            prop_assert!(m.lut_count() <= n.logic_gates().max(1));
            if n.logic_gates() > 0 && m.lut_count() > 0 {
                prop_assert!(m.depth() >= 1);
            }
        }
    }
}
