//! End-to-end daemon tests: a real `Daemon` on a real Unix socket,
//! driven by the bundled `Client` and by raw (hostile) connections.
//!
//! These are the in-process halves of the CI `flexserve-daemon-soak`
//! contracts: admission while draining jobs, streaming subscription,
//! typed refusals for malformed/oversized/draining requests, client
//! disconnects that disturb nothing, and a graceful drain that ends
//! the lifecycle with every admitted trial journaled.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use flexcore_serve::{
    Client, ClientError, Daemon, DaemonConfig, JobSpec, RetryPolicy, ServerConfig, WorkerPolicy,
};
use serde::Value;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexserve-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn daemon_config(dir: &Path, workers: usize, max_depth: usize) -> DaemonConfig {
    DaemonConfig {
        socket_path: dir.join("flexserve.sock"),
        server: ServerConfig {
            journal_dir: dir.join("journals"),
            worker_policy: WorkerPolicy { workers, ..WorkerPolicy::default() },
            max_depth,
            status_path: Some(dir.join("status.json")),
            ..ServerConfig::default()
        },
        idle_heartbeat: Duration::from_millis(50),
        ..DaemonConfig::default()
    }
}

/// Starts a daemon on its own thread and waits until the socket
/// answers pings.
fn start_daemon(
    config: DaemonConfig,
) -> (Client, std::thread::JoinHandle<Result<flexcore_serve::daemon::DaemonReport, String>>) {
    let socket = config.socket_path.clone();
    let handle = std::thread::spawn(move || Daemon::new(config).run().map_err(|e| e.to_string()));
    let client = Client::new(&socket);
    for _ in 0..200 {
        if client.ping().is_ok() {
            return (client, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", socket.display());
}

fn job(name: &str, trials: usize) -> JobSpec {
    JobSpec { name: name.into(), trials, workloads: vec!["bitcount".into()], ..JobSpec::default() }
}

#[test]
fn daemon_admits_streams_and_drains_gracefully() {
    let dir = tmpdir("lifecycle");
    let (client, handle) = start_daemon(daemon_config(&dir, 2, 8));

    let ping = client.ping().expect("ping");
    assert_eq!(ping.get("phase").and_then(Value::as_str), Some("accepting"));

    let spec = job("lifecycle", 6);
    let id = client.submit(&spec).expect("admitted");
    assert_eq!(id, spec.id(), "the daemon echoes the campaign hash");

    // Subscribe and collect the live feed through to the terminal line.
    let mut streamed = 0u64;
    let done = client
        .subscribe(id, |line| {
            assert_eq!(line.get("stream").and_then(Value::as_str), Some("trial"));
            assert_eq!(line.get("id").and_then(Value::as_str), Some(id.to_string().as_str()));
            streamed += 1;
        })
        .expect("feed reaches the terminal line");
    assert_eq!(done.get("state").and_then(Value::as_str), Some("completed"));
    let executed = done.get("executed").and_then(Value::as_u64).expect("executed");
    let reused = done.get("reused").and_then(Value::as_u64).expect("reused");
    assert_eq!(executed + reused, 6, "every trial accounted for");
    assert!(streamed <= executed, "the feed never invents records");

    // A second subscribe after completion replays the terminal line.
    let replay = client.subscribe(id, |_| panic!("no trial lines on replay")).expect("replay");
    assert_eq!(replay.get("executed").and_then(Value::as_u64), Some(executed));

    // status reflects the drained queue and carries only host_-prefixed
    // wall-clock fields.
    let status = client.status().expect("status");
    assert_eq!(status.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert_eq!(status.get("jobs_admitted").and_then(Value::as_u64), Some(1));
    assert_eq!(status.get("jobs_completed").and_then(Value::as_u64), Some(1));
    assert!(status.get("host_uptime_secs").is_some());
    assert!(status.get("uptime_secs").is_none(), "wall-clock fields must be host_-prefixed");

    // Graceful drain: ack, refuse new work, finish, return, clean up.
    let ack = client.drain().expect("drain ack");
    assert_eq!(ack.get("phase").and_then(Value::as_str), Some("draining"));
    let refused = client.submit(&job("late", 2)).expect_err("admission closed");
    let ClientError::Refused { kind, .. } = refused else {
        panic!("expected a typed refusal, got {refused:?}");
    };
    assert_eq!(kind, "draining");

    let report = handle.join().expect("daemon thread").expect("clean drain");
    assert_eq!(report.jobs.len(), 1);
    assert!(!daemon_config(&dir, 2, 8).socket_path.exists(), "socket removed on shutdown");
    // The journal + merged log survive for resume/inspection.
    assert!(report.jobs[0].merged_log.is_some());
    // The final heartbeat of the drain contract was written.
    let status_text = std::fs::read_to_string(dir.join("status.json")).expect("heartbeat");
    assert!(status_text.contains("\"host_uptime_secs\""));
}

#[test]
fn hostile_requests_get_typed_errors_and_disturb_nothing() {
    let dir = tmpdir("hostile");
    let mut config = daemon_config(&dir, 1, 8);
    config.max_request_bytes = 4096;
    let socket = config.socket_path.clone();
    let (client, handle) = start_daemon(config);

    // Keep the daemon busy so the hostile traffic overlaps real work.
    let id = client.submit(&job("victim", 12)).expect("admitted");

    let raw = |payload: &[u8]| -> String {
        let mut s = UnixStream::connect(&socket).expect("connect");
        s.write_all(payload).expect("write");
        let mut line = String::new();
        use std::io::BufRead as _;
        std::io::BufReader::new(s).read_line(&mut line).expect("read");
        line
    };

    // Malformed JSON → typed error on that connection only.
    assert!(raw(b"this is not json\n").contains("\"malformed\""));
    // Valid JSON, no op → malformed.
    assert!(raw(b"{\"hello\":1}\n").contains("\"malformed\""));
    // Unknown op → typed unknown-op.
    assert!(raw(b"{\"op\":\"explode\"}\n").contains("\"unknown-op\""));
    // Oversized request → typed oversized with the limit.
    let huge = format!("{{\"op\":\"submit\",\"pad\":\"{}\"}}\n", "x".repeat(8192));
    assert!(raw(huge.as_bytes()).contains("\"oversized\""));
    // Mid-request disconnect: no newline, just vanish.
    drop(UnixStream::connect(&socket).expect("connect"));
    {
        let mut s = UnixStream::connect(&socket).expect("connect");
        s.write_all(b"{\"op\":\"sub").expect("half a request");
        drop(s);
    }

    // Unknown subscription id → typed unknown-job.
    let err = client.subscribe(flexcore_serve::JobId(0xdead_beef), |_| {}).expect_err("unknown");
    assert!(
        matches!(err, ClientError::Refused { ref kind, .. } if kind == "unknown-job"),
        "{err:?}"
    );

    // Through all of that, the victim job completes with nothing lost.
    let done = client.subscribe(id, |_| {}).expect("feed");
    assert_eq!(done.get("state").and_then(Value::as_str), Some("completed"));
    let executed = done.get("executed").and_then(Value::as_u64).unwrap_or(0);
    let reused = done.get("reused").and_then(Value::as_u64).unwrap_or(0);
    assert_eq!(executed + reused, 12, "hostile connections cost zero trials");

    client.drain().expect("drain");
    let report = handle.join().expect("daemon thread").expect("clean drain");
    assert_eq!(report.jobs.len(), 1);
}

#[test]
fn duplicate_submissions_are_typed_while_the_original_is_alive() {
    let dir = tmpdir("duplicate");
    // One worker and two queued jobs: the second stays queued long
    // enough to collide with deterministically.
    let (client, handle) = start_daemon(daemon_config(&dir, 1, 8));
    let first = job("first", 12);
    let second = job("second", 10);
    client.submit(&first).expect("admitted");
    client.submit(&second).expect("admitted");
    let err = client.submit(&second).expect_err("already queued");
    let ClientError::Refused { kind, response } = err else {
        panic!("expected typed duplicate, got a different error");
    };
    assert_eq!(kind, "duplicate");
    assert_eq!(response.get("id").and_then(Value::as_str), Some(second.id().to_string().as_str()));
    client.drain().expect("drain");
    let report = handle.join().expect("daemon thread").expect("drain finishes queued work");
    assert_eq!(report.jobs.len(), 2, "draining still ran every admitted job");
}

#[test]
fn saturation_answers_rejected_with_retry_hint_and_client_backs_off() {
    let dir = tmpdir("saturation");
    // Depth 1 and slow drain: the queue is full the moment one job
    // queues behind the running one.
    let (client, handle) = start_daemon(daemon_config(&dir, 1, 1));
    client.submit(&job("running", 16)).expect("admitted");
    client.submit(&job("queued", 16)).expect("admitted");

    // Same-priority overload: a one-shot client sees the typed
    // rejection with a usable hint.
    let one_shot =
        client.clone().with_retry(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    let err = one_shot.submit(&job("overflow", 4)).expect_err("queue full");
    let ClientError::RetriesExhausted { attempts, last_hint_ms } = err else {
        panic!("expected exhausted retries, got a different error");
    };
    assert_eq!(attempts, 1);
    assert!(last_hint_ms > 0, "rejection carries a retry_after_ms hint");

    // A patient client backs off per the hint and eventually lands the
    // job once the queue drains.
    let patient = client.clone().with_retry(RetryPolicy {
        max_attempts: 60,
        base_ms: 25,
        cap_ms: 500,
        seed: 42,
    });
    patient.submit(&job("patient", 4)).expect("backoff wins through the saturation");

    client.drain().expect("drain");
    let report = handle.join().expect("daemon thread").expect("clean drain");
    assert_eq!(report.jobs.len(), 3, "running + queued + patient all drained");
}
