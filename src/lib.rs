//! Umbrella crate for the FlexCore reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; it re-exports the member crates so examples can
//! use one coherent namespace.
//!
//! See the individual crates for the real functionality:
//!
//! * [`isa`] — SPARC-V8-subset instruction set model
//! * [`asm`] — two-pass assembler for that ISA
//! * [`analysis`] — static verification of programs and netlists
//!   (CFG recovery, dataflow, netlist lint; see the `flexcheck` binary)
//! * [`mem`] — caches, buses, SDRAM, and the bit-maskable meta-data cache
//! * [`pipeline`] — Leon3-like in-order core (functional + timing)
//! * [`fabric`] — reconfigurable-fabric and ASIC cost models
//! * [`flexcore`] — the FlexCore architecture itself (interface,
//!   extensions, full system)
//! * [`workloads`] — MiBench-like assembly kernels
//! * [`telemetry`] — zero-cost-when-disabled phase profiler, log₂
//!   histograms, and the lock-free metrics registry

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub use flexcore;
pub use flexcore_analysis as analysis;
pub use flexcore_asm as asm;
pub use flexcore_fabric as fabric;
pub use flexcore_isa as isa;
pub use flexcore_mem as mem;
pub use flexcore_pipeline as pipeline;
pub use flexcore_telemetry as telemetry;
pub use flexcore_workloads as workloads;
