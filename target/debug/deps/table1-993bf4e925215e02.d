/root/repo/target/debug/deps/table1-993bf4e925215e02.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-993bf4e925215e02: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
