//! Fine-grained memory protection (MPROT) — an extension beyond the
//! paper's four prototypes, from its "other extensions" list (§II.B
//! cites Mondrian memory protection as an application of the
//! co-processing model). Demonstrates that the FlexCore framework
//! supports new monitors without architectural changes.

use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_isa::{InstrClass, Instruction};
use flexcore_pipeline::TracePacket;

use crate::ext::{
    two_bit_tag_location, ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, META_BASE,
};
use crate::interface::{Cfgr, ForwardPolicy};

/// Word permissions (2 bits per word in memory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Perm {
    /// No access.
    None = 0,
    /// Read-only.
    ReadOnly = 1,
    /// Read and write.
    ReadWrite = 2,
    /// Reserved (treated as ReadWrite).
    Full = 3,
}

impl Perm {
    /// Decodes a 2-bit field.
    pub fn from_bits(bits: u32) -> Perm {
        match bits & 3 {
            0 => Perm::None,
            1 => Perm::ReadOnly,
            2 => Perm::ReadWrite,
            _ => Perm::Full,
        }
    }

    /// Whether loads are allowed.
    pub fn readable(self) -> bool {
        self != Perm::None
    }

    /// Whether stores are allowed.
    pub fn writable(self) -> bool {
        matches!(self, Perm::ReadWrite | Perm::Full)
    }
}

/// Software-visible `cpop1` sub-opcodes for MPROT.
pub mod ops {
    /// Set permissions over a range: `rs1` = start address, `rs2`
    /// packs `len << 2 | perm`.
    pub const SET_RANGE: u16 = 0;
    /// Read the 2-bit permission of the word at `rs1`.
    pub const READ_PERM: u16 = 1;
}

/// Default permission for memory no `SET_RANGE` has touched.
///
/// `ReadWrite` makes the monitor opt-in (protect specific regions);
/// real deployments could default to `None` for a default-deny policy.
const DEFAULT_PERM: Perm = Perm::ReadWrite;

/// Fine-grained (word-granular) memory protection: a 2-bit permission
/// tag per word, set by software, checked transparently on every load
/// and store.
#[derive(Clone, Debug, Default)]
pub struct Mprot {
    checks: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Mprot {
    /// Creates the extension.
    pub fn new() -> Mprot {
        Mprot::default()
    }

    /// Loads and stores checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    fn monitored(addr: u32) -> bool {
        addr < META_BASE
    }

    fn perm(env: &mut ExtEnv<'_>, addr: u32) -> Perm {
        let (meta_addr, shift) = two_bit_tag_location(addr);
        let raw = (env.read_meta(meta_addr) >> shift) & 3;
        // Stored field 0 means "never set": default permission.
        // SET_RANGE stores perm+1 so that an explicit None (1) is
        // distinguishable from untouched (0).
        match raw {
            0 => DEFAULT_PERM,
            v => Perm::from_bits(v - 1),
        }
    }
}

impl Extension for Mprot {
    fn name(&self) -> &'static str {
        "MPROT"
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.checks]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [checks] = *state {
            self.checks = checks;
        }
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "MPROT",
            name: "Fine-Grained Memory Protection",
            meta_data: &["2-bit permission tag per word in memory"],
            transparent_ops: &[
                "Check read permission on a load",
                "Check write permission on a store",
            ],
            sw_visible_ops: &[
                "Set permissions on a region",
                "Exception when an access violates permissions",
            ],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new()
            .with_classes(|c| c.is_mem(), ForwardPolicy::Always)
            .with_class(InstrClass::Cpop1, ForwardPolicy::WaitForAck)
    }

    fn pipeline_stages(&self) -> u32 {
        3
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        match pkt.class {
            c if c.is_load() || c.is_store() || c == InstrClass::Swap => {
                if !Mprot::monitored(pkt.addr) {
                    return Ok(None);
                }
                self.checks += 1;
                let bytes = match pkt.inst {
                    Instruction::Mem { op, .. } => op.access_bytes().unwrap_or(4),
                    _ => 4,
                };
                // Check every covered word (doubleword ops span two).
                let mut a = pkt.addr & !3;
                while a < pkt.addr + bytes {
                    let perm = Mprot::perm(env, a);
                    let ok = if c == InstrClass::Swap {
                        perm.readable() && perm.writable()
                    } else if c.is_store() {
                        perm.writable()
                    } else {
                        perm.readable()
                    };
                    if !ok {
                        return Err(MonitorTrap {
                            pc: pkt.pc,
                            reason: format!(
                                "{} of {:?} word at {:#010x}",
                                if c.is_store() || c == InstrClass::Swap {
                                    "write"
                                } else {
                                    "read"
                                },
                                perm,
                                a
                            ),
                        });
                    }
                    a += 4;
                }
                Ok(None)
            }
            InstrClass::Cpop1 => {
                let Instruction::Cpop { opc, .. } = pkt.inst else { return Ok(None) };
                match opc {
                    ops::SET_RANGE => {
                        let start = pkt.srcv1 & !3;
                        let len = pkt.srcv2 >> 2;
                        // Stored encoding is perm+1 in a 2-bit field
                        // (so 0 = untouched); `Full` aliases to
                        // `ReadWrite`.
                        let stored = (pkt.srcv2 & 3).min(2) + 1;
                        let mut a = start;
                        while a < start.saturating_add(len) {
                            let (meta_addr, shift) = two_bit_tag_location(a);
                            env.write_meta(meta_addr, stored << shift, 3 << shift);
                            a += 4;
                        }
                        Ok(None)
                    }
                    ops::READ_PERM => {
                        let p = Mprot::perm(env, pkt.srcv1);
                        Ok(Some(p as u32))
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    /// Datapath: the UMC-style meta address path with a 2-bit field
    /// extractor and the permission check logic.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: addr[32], is_load, is_store, tag_word[32].
        let mut s = Vec::with_capacity(66);
        super::push_bits(&mut s, pkt.addr, 32);
        s.push(pkt.class.is_load());
        s.push(pkt.class.is_store());
        super::push_bits(&mut s, 0, 32); // tag_word comes from the meta cache
        s
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("mprot");
        let addr = b.input_bus(32);
        let is_load = b.input();
        let is_store = b.input();
        let tag_word = b.input_bus(32);

        let addr_r = b.register_bus(&addr);
        let ld_r = b.register(is_load);
        let st_r = b.register(is_store);

        // Meta address = base + (addr >> 6 aligned): 16 two-bit fields
        // per meta word.
        let base: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let shifted: Vec<_> = (0..32)
            .map(|i| if (2..28).contains(&i) { addr_r[i + 4] } else { b.constant(false) })
            .collect();
        let (meta_addr, _) = b.add(&base, &shifted);
        let meta_addr_r = b.register_bus(&meta_addr);
        b.output_bus("meta_addr", &meta_addr_r);

        // Field select: addr[5:2] picks one of 16 2-bit fields.
        let sel: Vec<_> = (2..6).map(|i| addr_r[i]).collect();
        let onehot = b.decoder(&sel);
        let mut bit0 = Vec::new();
        let mut bit1 = Vec::new();
        for (i, &oh) in onehot.iter().enumerate() {
            bit0.push(b.and(oh, tag_word[2 * i]));
            bit1.push(b.and(oh, tag_word[2 * i + 1]));
        }
        let p0 = b.reduce_or(&bit0);
        let p1 = b.reduce_or(&bit1);

        // Permission decode (stored as perm+1): 0 = default RW.
        let untouched0 = b.not(p0);
        let untouched1 = b.not(p1);
        let untouched = b.and(untouched0, untouched1);
        // readable unless stored value == 1 (perm None): stored 01.
        let none_stored = {
            let n1 = b.not(p1);
            b.and(p0, n1)
        };
        let unreadable = none_stored;
        // writable if untouched or stored in {3 (RW), 0b11.. perm RW=2
        // stored 3} or Full: stored 3 or 4 -> p1 set.
        let writable = b.or(untouched, p1);
        let unwritable = b.not(writable);

        let ld_viol = b.and(ld_r, unreadable);
        let st_viol = b.and(st_r, unwritable);
        let trap = b.or(ld_viol, st_viol);
        let trap_r = b.register(trap);
        b.output("trap", trap_r);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{env_parts, mem_packet, packet_with_cpop};
    use flexcore_isa::Opcode;

    fn set_range(m: &mut Mprot, env: &mut ExtEnv<'_>, start: u32, len: u32, perm: Perm) {
        m.process(&packet_with_cpop(1, ops::SET_RANGE, start, (len << 2) | perm as u32), env)
            .unwrap();
    }

    #[test]
    fn untouched_memory_is_read_write() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut m = Mprot::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        assert!(m.process(&mem_packet(Opcode::Ld, 0x5000), &mut env).is_ok());
        assert!(m.process(&mem_packet(Opcode::St, 0x5000), &mut env).is_ok());
    }

    #[test]
    fn read_only_region_rejects_stores() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut m = Mprot::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        set_range(&mut m, &mut env, 0x5000, 64, Perm::ReadOnly);
        assert!(m.process(&mem_packet(Opcode::Ld, 0x5010), &mut env).is_ok());
        let err = m.process(&mem_packet(Opcode::St, 0x5010), &mut env).unwrap_err();
        assert!(err.reason.contains("write of ReadOnly"));
    }

    #[test]
    fn no_access_region_rejects_everything() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut m = Mprot::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        set_range(&mut m, &mut env, 0x6000, 32, Perm::None);
        assert!(m.process(&mem_packet(Opcode::Ld, 0x6000), &mut env).is_err());
        assert!(m.process(&mem_packet(Opcode::Stb, 0x6004), &mut env).is_err());
        // Just outside the range: fine.
        assert!(m.process(&mem_packet(Opcode::Ld, 0x6020), &mut env).is_ok());
    }

    #[test]
    fn permissions_can_be_upgraded_and_read_back() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut m = Mprot::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        set_range(&mut m, &mut env, 0x5000, 4, Perm::ReadOnly);
        let p = m.process(&packet_with_cpop(1, ops::READ_PERM, 0x5000, 0), &mut env).unwrap();
        assert_eq!(p, Some(Perm::ReadOnly as u32));
        set_range(&mut m, &mut env, 0x5000, 4, Perm::ReadWrite);
        assert!(m.process(&mem_packet(Opcode::St, 0x5000), &mut env).is_ok());
    }

    #[test]
    fn cfgr_matches_umc_shape() {
        let c = Mprot::new().cfgr();
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Ignore);
    }

    #[test]
    fn netlist_maps_to_a_small_fabric_footprint() {
        let l = flexcore_fabric::map_to_luts(&Mprot::new().netlist(), 6).lut_count();
        let umc = flexcore_fabric::map_to_luts(&crate::ext::Umc::new().netlist(), 6).lut_count();
        // Comparable to UMC: the smallest class of extension.
        assert!(l < 2 * umc, "MPROT {l} LUTs vs UMC {umc}");
    }
}
