/root/repo/target/debug/deps/interface-a4c358e11367b859.d: tests/interface.rs Cargo.toml

/root/repo/target/debug/deps/libinterface-a4c358e11367b859.rmeta: tests/interface.rs Cargo.toml

tests/interface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
