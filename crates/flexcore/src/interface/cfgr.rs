//! The forwarding configuration register (CFGR).

use std::fmt;

use flexcore_isa::{InstrClass, NUM_INSTR_CLASSES};

/// How the forward FIFO treats one instruction class (the paper's four
/// choices, 2 bits each).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[repr(u8)]
pub enum ForwardPolicy {
    /// Do not forward instructions of this class.
    #[default]
    Ignore = 0,
    /// Forward only if a FIFO entry is available; drop otherwise.
    ///
    /// Useful for profiling-style extensions that tolerate sampling.
    IfNotFull = 1,
    /// Always forward; stall the commit stage if the FIFO is full.
    Always = 2,
    /// Forward and stall the commit stage until the co-processor
    /// acknowledges (CACK) — needed when the instruction reads a value
    /// back from the co-processor or requires a precise exception.
    WaitForAck = 3,
}

impl ForwardPolicy {
    /// Decodes a 2-bit field.
    pub fn from_bits(bits: u8) -> ForwardPolicy {
        match bits & 0b11 {
            0 => ForwardPolicy::Ignore,
            1 => ForwardPolicy::IfNotFull,
            2 => ForwardPolicy::Always,
            _ => ForwardPolicy::WaitForAck,
        }
    }

    /// The 2-bit encoding.
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// Whether this policy ever forwards.
    pub fn forwards(self) -> bool {
        self != ForwardPolicy::Ignore
    }
}

/// The 64-bit forwarding configuration register: a 2-bit
/// [`ForwardPolicy`] per [`InstrClass`].
///
/// # Example
///
/// ```
/// use flexcore::{Cfgr, ForwardPolicy};
/// use flexcore_isa::InstrClass;
///
/// // A UMC-style configuration: forward memory ops, ignore the rest.
/// let cfgr = Cfgr::new().with_classes(
///     |c| c.is_mem(),
///     ForwardPolicy::Always,
/// );
/// assert_eq!(cfgr.policy(InstrClass::Ld), ForwardPolicy::Always);
/// assert_eq!(cfgr.policy(InstrClass::Add), ForwardPolicy::Ignore);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Cfgr(u64);

impl Cfgr {
    /// All classes set to [`ForwardPolicy::Ignore`].
    pub fn new() -> Cfgr {
        Cfgr(0)
    }

    /// Builds from the raw 64-bit register value.
    pub fn from_bits(bits: u64) -> Cfgr {
        Cfgr(bits)
    }

    /// The raw 64-bit register value.
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// The policy for one class.
    pub fn policy(self, class: InstrClass) -> ForwardPolicy {
        ForwardPolicy::from_bits((self.0 >> (2 * class.index())) as u8)
    }

    /// Returns a copy with `class` set to `policy`.
    pub fn with_class(self, class: InstrClass, policy: ForwardPolicy) -> Cfgr {
        let shift = 2 * class.index();
        Cfgr((self.0 & !(0b11 << shift)) | (u64::from(policy.to_bits()) << shift))
    }

    /// Returns a copy with every class matching `pred` set to `policy`.
    pub fn with_classes(
        self,
        mut pred: impl FnMut(InstrClass) -> bool,
        policy: ForwardPolicy,
    ) -> Cfgr {
        let mut out = self;
        for c in InstrClass::all() {
            if pred(c) {
                out = out.with_class(c, policy);
            }
        }
        out
    }

    /// Iterator over the classes that are forwarded at all.
    pub fn forwarded_classes(self) -> impl Iterator<Item = InstrClass> {
        (0..NUM_INSTR_CLASSES as u8)
            .map(InstrClass::from_index)
            .filter(move |&c| self.policy(c).forwards())
    }
}

impl fmt::Display for Cfgr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CFGR({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ignores_everything() {
        let c = Cfgr::new();
        for class in InstrClass::all() {
            assert_eq!(c.policy(class), ForwardPolicy::Ignore);
        }
        assert_eq!(c.forwarded_classes().count(), 0);
    }

    #[test]
    fn policies_round_trip_through_bits() {
        for bits in 0..4u8 {
            assert_eq!(ForwardPolicy::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn per_class_fields_are_independent() {
        let c = Cfgr::new()
            .with_class(InstrClass::Ld, ForwardPolicy::Always)
            .with_class(InstrClass::St, ForwardPolicy::WaitForAck)
            .with_class(InstrClass::Add, ForwardPolicy::IfNotFull);
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::St), ForwardPolicy::WaitForAck);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::IfNotFull);
        assert_eq!(c.policy(InstrClass::Sub), ForwardPolicy::Ignore);
    }

    #[test]
    fn overwriting_a_class_clears_old_bits() {
        let c = Cfgr::new()
            .with_class(InstrClass::Jmpl, ForwardPolicy::WaitForAck)
            .with_class(InstrClass::Jmpl, ForwardPolicy::IfNotFull);
        assert_eq!(c.policy(InstrClass::Jmpl), ForwardPolicy::IfNotFull);
    }

    #[test]
    fn raw_bits_round_trip() {
        let c = Cfgr::new().with_classes(|c| c.is_alu(), ForwardPolicy::Always);
        assert_eq!(Cfgr::from_bits(c.to_bits()), c);
    }

    #[test]
    fn display_shows_hex() {
        let c = Cfgr::new().with_class(InstrClass::Ld, ForwardPolicy::Always);
        assert_eq!(c.to_string(), "CFGR(0x0000000000000002)");
    }
}
