//! Configuration bitstreams (§III.F).
//!
//! The paper programs the fabric "at boot time ... a bitstream is
//! serially shifted into configuration memory", and restricts
//! programming to trusted parties. This module gives the mapped LUT
//! network a concrete, checked serialization: every LUT's truth table,
//! leaf list, and root, framed with a magic number, a format version,
//! and a Fletcher-32 integrity checksum — so a corrupted or truncated
//! bitstream is rejected instead of silently mis-programming the
//! monitor.

use std::fmt;

use crate::lutmap::{Lut, LutMapping};
use crate::Net;

/// Bitstream format version.
pub const VERSION: u8 = 1;

/// Error deserializing a bitstream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BitstreamError {
    /// Too short or framing damaged.
    Truncated,
    /// The magic number did not match ("FLXC").
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Integrity checksum mismatch (bit rot or tampering).
    BadChecksum {
        /// Checksum stored in the stream.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// Structurally invalid content (e.g. truth table length does not
    /// match the leaf count).
    Malformed(&'static str),
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::Truncated => f.write_str("bitstream truncated"),
            BitstreamError::BadMagic => f.write_str("bad bitstream magic"),
            BitstreamError::BadVersion(v) => write!(f, "unsupported bitstream version {v}"),
            BitstreamError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "bitstream checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            BitstreamError::Malformed(what) => write!(f, "malformed bitstream: {what}"),
        }
    }
}

impl std::error::Error for BitstreamError {}

pub(crate) fn fletcher32(data: &[u8]) -> u32 {
    let mut s1: u32 = 0xffff;
    let mut s2: u32 = 0xffff;
    for chunk in data.chunks(2) {
        let word = u32::from(chunk[0]) | (u32::from(*chunk.get(1).unwrap_or(&0)) << 8);
        s1 = (s1 + word) % 65535;
        s2 = (s2 + s1) % 65535;
    }
    (s2 << 16) | s1
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, BitstreamError> {
        let b = *self.data.get(self.pos).ok_or(BitstreamError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, BitstreamError> {
        let end = self.pos.checked_add(4).ok_or(BitstreamError::Truncated)?;
        let bytes = self.data.get(self.pos..end).ok_or(BitstreamError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// Serializes a mapped LUT network into a configuration bitstream.
pub fn to_bitstream(mapping: &LutMapping) -> Vec<u8> {
    let mut payload = Writer(Vec::new());
    payload.u8(mapping.k() as u8);
    payload.u32(mapping.lut_count() as u32);
    payload.u32(mapping.depth() as u32);
    for lut in mapping.luts() {
        payload.u32(lut.root.index() as u32);
        payload.u8(lut.leaves.len() as u8);
        for leaf in &lut.leaves {
            payload.u32(leaf.index() as u32);
        }
        // Truth table, packed LSB-first.
        let mut byte = 0u8;
        for (i, &bit) in lut.table.iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                payload.u8(byte);
                byte = 0;
            }
        }
        if lut.table.len() % 8 != 0 {
            payload.u8(byte);
        }
    }
    let body = payload.0;
    let mut out = Writer(Vec::with_capacity(body.len() + 16));
    out.u32(u32::from_le_bytes(*b"FLXC"));
    out.u8(VERSION);
    out.u32(body.len() as u32);
    out.u32(fletcher32(&body));
    out.0.extend_from_slice(&body);
    out.0
}

/// Deserializes and validates a configuration bitstream.
///
/// # Errors
///
/// Returns [`BitstreamError`] on framing, version, checksum, or
/// structural problems — a bad stream never yields a mapping.
pub fn from_bitstream(data: &[u8]) -> Result<LutMapping, BitstreamError> {
    let mut r = Reader { data, pos: 0 };
    if r.u32()? != u32::from_le_bytes(*b"FLXC") {
        return Err(BitstreamError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(BitstreamError::BadVersion(version));
    }
    let len = r.u32()? as usize;
    let stored = r.u32()?;
    let body = data.get(r.pos..r.pos + len).ok_or(BitstreamError::Truncated)?;
    let computed = fletcher32(body);
    if stored != computed {
        return Err(BitstreamError::BadChecksum { stored, computed });
    }
    let mut r = Reader { data: body, pos: 0 };
    let k = r.u8()? as usize;
    if !(1..=16).contains(&k) {
        return Err(BitstreamError::Malformed("LUT size out of range"));
    }
    let count = r.u32()? as usize;
    let depth = r.u32()? as usize;
    let mut luts = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let root = Net(r.u32()?);
        let nleaves = r.u8()? as usize;
        if nleaves > k {
            return Err(BitstreamError::Malformed("cone wider than the LUT size"));
        }
        let mut leaves = Vec::with_capacity(nleaves);
        for _ in 0..nleaves {
            leaves.push(Net(r.u32()?));
        }
        let table_bits = 1usize << nleaves;
        let mut table = Vec::with_capacity(table_bits);
        let mut byte = 0u8;
        for i in 0..table_bits {
            if i % 8 == 0 {
                byte = r.u8()?;
            }
            table.push((byte >> (i % 8)) & 1 == 1);
        }
        luts.push(Lut { root, leaves, table });
    }
    if r.pos != body.len() {
        return Err(BitstreamError::Malformed("trailing bytes"));
    }
    LutMapping::from_parts(k, luts, depth).map_err(BitstreamError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map_to_luts, NetlistBuilder};

    fn adder_mapping() -> (crate::Netlist, LutMapping) {
        let mut b = NetlistBuilder::new("add8");
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let (s, c) = b.add(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let m = map_to_luts(&n, 6);
        (n, m)
    }

    #[test]
    fn round_trip_preserves_the_network() {
        let (netlist, mapping) = adder_mapping();
        let bs = to_bitstream(&mapping);
        let back = from_bitstream(&bs).expect("valid stream");
        assert_eq!(back.lut_count(), mapping.lut_count());
        assert_eq!(back.depth(), mapping.depth());
        // Functional equivalence of the reloaded configuration.
        for (a, bb) in [(0u64, 0u64), (19, 200), (255, 255), (127, 128)] {
            let mut inp: Vec<bool> = (0..8).map(|i| (a >> i) & 1 == 1).collect();
            inp.extend((0..8).map(|i| (bb >> i) & 1 == 1));
            let mut s1 = netlist.initial_state();
            let mut s2 = netlist.initial_state();
            assert_eq!(
                mapping.eval(&netlist, &inp, &mut s1),
                back.eval(&netlist, &inp, &mut s2),
                "{a}+{bb}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let (_, mapping) = adder_mapping();
        let good = to_bitstream(&mapping);
        // Flip one bit in every byte position of the payload; each must
        // be detected (checksum) or rejected structurally.
        for pos in 13..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            assert!(from_bitstream(&bad).is_err(), "undetected corruption at byte {pos}");
        }
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let (_, mapping) = adder_mapping();
        let good = to_bitstream(&mapping);
        assert_eq!(from_bitstream(&good[..8]).err(), Some(BitstreamError::Truncated));
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(from_bitstream(&bad).err(), Some(BitstreamError::BadMagic));
        let mut wrong_ver = good;
        wrong_ver[4] = 99;
        assert_eq!(from_bitstream(&wrong_ver).err(), Some(BitstreamError::BadVersion(99)));
    }

    #[test]
    fn extension_sized_streams_are_compact() {
        // A SEC-sized mapping (hundreds of LUTs) serializes to a few
        // KB — plausible for boot-time serial shifting.
        let mut b = NetlistBuilder::new("wide");
        let x = b.input_bus(64);
        let y = b.input_bus(64);
        let (s, _) = b.add(&x, &y);
        b.output_bus("s", &s);
        let m = map_to_luts(&b.finish(), 6);
        let bs = to_bitstream(&m);
        assert!(bs.len() < 64 * 1024, "{} bytes", bs.len());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::{map_to_luts, NetlistBuilder};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Round-trip is exact for arbitrary mapped networks.
        #[test]
        fn round_trip_is_lossless(ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60)) {
            let mut b = NetlistBuilder::new("rand");
            let mut pool = vec![b.input(), b.input(), b.input()];
            for (sel, i, j) in ops {
                let x = pool[i as usize % pool.len()];
                let y = pool[j as usize % pool.len()];
                let n = match sel % 4 {
                    0 => b.and(x, y),
                    1 => b.or(x, y),
                    2 => b.xor(x, y),
                    _ => b.not(x),
                };
                pool.push(n);
            }
            let last = *pool.last().expect("nonempty");
            b.output("o", last);
            let m = map_to_luts(&b.finish(), 6);
            let back = from_bitstream(&to_bitstream(&m)).unwrap();
            prop_assert_eq!(back.lut_count(), m.lut_count());
            for (l1, l2) in m.luts().iter().zip(back.luts()) {
                prop_assert_eq!(l1.root, l2.root);
                prop_assert_eq!(&l1.leaves, &l2.leaves);
                prop_assert_eq!(&l1.table, &l2.table);
            }
        }
    }
}
