//! Uninitialized Memory Check (UMC).

use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_isa::InstrClass;
use flexcore_pipeline::TracePacket;

use crate::ext::{
    bit_tag_location, ExtEnv, Extension, ExtensionDescriptor, MonitorTrap, META_BASE,
};
use crate::interface::{Cfgr, ForwardPolicy};

/// Software-visible `cpop1` sub-opcodes for UMC.
pub mod ops {
    /// Clear tags over `[rs1, rs1 + rs2)` (memory de-allocation).
    pub const CLEAR_RANGE: u16 = 0;
    /// Set tags over `[rs1, rs1 + rs2)` (mark initialized, e.g. static
    /// data at program load).
    pub const SET_RANGE: u16 = 1;
    /// Read the tag for the word at `rs1` into the destination
    /// register via the BFIFO.
    pub const READ_TAG: u16 = 2;
}

/// Tag granularity for UMC. The paper's prototype tracks one bit per
/// *word*; Purify (which the paper compares against) tracks per byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UmcGranularity {
    /// One initialized-bit per 32-bit word (the paper's prototype).
    #[default]
    PerWord,
    /// One initialized-bit per byte (Purify-equivalent precision: a
    /// byte store no longer "initializes" its whole word).
    PerByte,
}

/// Uninitialized Memory Check: a 1-bit tag per memory word (or byte;
/// see [`UmcGranularity`]), set on a store, checked on a load, cleared
/// by software on de-allocation (§IV.A).
#[derive(Clone, Debug, Default)]
pub struct Umc {
    granularity: UmcGranularity,
    traps_checked: u64,
    bypassed: bool,
    suppressed: u64,
}

impl Umc {
    /// Creates the extension with the paper's per-word tags.
    pub fn new() -> Umc {
        Umc::default()
    }

    /// Creates the Purify-precision per-byte variant.
    pub fn per_byte() -> Umc {
        Umc { granularity: UmcGranularity::PerByte, ..Umc::default() }
    }

    /// Configured granularity.
    pub fn granularity(&self) -> UmcGranularity {
        self.granularity
    }

    /// Whether this address is monitored: program memory only (not the
    /// meta-data region itself, not memory-mapped I/O).
    fn monitored(addr: u32) -> bool {
        addr < META_BASE
    }

    /// Meta word and bit covering one *byte* (per-byte mode packs 32
    /// byte-tags per meta word).
    fn byte_bit_location(addr: u32) -> (u32, u32) {
        (META_BASE + ((addr >> 5) << 2), addr & 31)
    }

    /// `(meta word, mask)` covering an access of `bytes` at `addr`
    /// under the current granularity. Aligned accesses never straddle
    /// a meta word in either mode.
    fn access_mask(&self, addr: u32, bytes: u32) -> (u32, u32) {
        match self.granularity {
            UmcGranularity::PerWord => {
                let (meta_addr, bit) = bit_tag_location(addr);
                // Doubleword accesses cover two word tags; 8-byte
                // alignment keeps both bits in one meta word.
                let words = bytes.div_ceil(4);
                let mask = (((1u64 << words) - 1) as u32) << bit;
                (meta_addr, mask)
            }
            UmcGranularity::PerByte => {
                let (meta_addr, bit) = Umc::byte_bit_location(addr);
                let mask = (((1u64 << bytes) - 1) as u32) << bit;
                (meta_addr, mask)
            }
        }
    }

    fn set_range(&self, env: &mut ExtEnv<'_>, start: u32, len: u32, value: bool) {
        if len == 0 {
            return;
        }
        match self.granularity {
            UmcGranularity::PerWord => {
                let first = start >> 2;
                let last = (start + len - 1) >> 2;
                let mut w = first;
                while w <= last {
                    let (meta_addr, bit) = bit_tag_location(w << 2);
                    // All bits of this meta word that fall inside the
                    // range.
                    let hi_word_in_meta = ((w & !31) + 31).min(last);
                    let mut mask = 0u32;
                    for b in bit..=(bit + (hi_word_in_meta - w)) {
                        mask |= 1 << b;
                    }
                    env.write_meta(meta_addr, if value { mask } else { 0 }, mask);
                    w = hi_word_in_meta + 1;
                }
            }
            UmcGranularity::PerByte => {
                let mut a = start;
                while a < start + len {
                    let span = (32 - (a & 31)).min(start + len - a);
                    let (meta_addr, bit) = Umc::byte_bit_location(a);
                    let mask =
                        if span >= 32 { u32::MAX } else { (((1u64 << span) - 1) as u32) << bit };
                    env.write_meta(meta_addr, if value { mask } else { 0 }, mask);
                    a += span;
                }
            }
        }
    }
}

impl Extension for Umc {
    fn name(&self) -> &'static str {
        "UMC"
    }

    fn snapshot_state(&self) -> Vec<u64> {
        vec![self.traps_checked]
    }

    fn restore_state(&mut self, state: &[u64]) {
        if let [traps_checked] = *state {
            self.traps_checked = traps_checked;
        }
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "UMC",
            name: "Uninitialized Memory Check",
            meta_data: &["1-bit tag per word in memory"],
            transparent_ops: &["Set the tag on a store", "Check the tag on a load"],
            sw_visible_ops: &["Clear tags on a de-allocation", "Exception when a tag check fails"],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new()
            .with_classes(|c| c.is_mem(), ForwardPolicy::Always)
            .with_class(InstrClass::Cpop1, ForwardPolicy::WaitForAck)
    }

    fn pipeline_stages(&self) -> u32 {
        3
    }

    fn bypass(&mut self) {
        self.bypassed = true;
    }

    fn rearm(&mut self) {
        self.bypassed = false;
    }

    fn bypassed(&self) -> bool {
        self.bypassed
    }

    fn suppressed_checks(&self) -> u64 {
        self.suppressed
    }

    fn elision_class(&self) -> u8 {
        crate::elide::ELIDE_UMC
    }

    fn check_elidable(&self, pkt: &TracePacket) -> bool {
        // Only the pure load-side check is elidable: stores and swaps
        // write meta-data (a side effect the static proof does not
        // cover), and `cpop`s are software-visible. A proven load's
        // only observable effect is the trap verdict the analysis
        // already discharged (`traps_checked` legitimately differs).
        !self.bypassed && pkt.class.is_load() && pkt.class != InstrClass::Swap
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        if self.bypassed {
            self.suppressed += 1;
            return Ok(None);
        }
        let bytes = match pkt.inst {
            flexcore_isa::Instruction::Mem { op, .. } => op.access_bytes().unwrap_or(4),
            _ => 4,
        };
        match pkt.class {
            c if c.is_store() => {
                if Umc::monitored(pkt.addr) {
                    let (meta_addr, mask) = self.access_mask(pkt.addr, bytes);
                    env.write_meta(meta_addr, mask, mask);
                }
                Ok(None)
            }
            c if c.is_load() => {
                if Umc::monitored(pkt.addr) {
                    self.traps_checked += 1;
                    let (meta_addr, mask) = self.access_mask(pkt.addr, bytes);
                    let word = env.read_meta(meta_addr);
                    if word & mask != mask {
                        return Err(MonitorTrap {
                            pc: pkt.pc,
                            reason: format!(
                                "uninitialized read at {:#010x} ({} bytes)",
                                pkt.addr, bytes
                            ),
                        });
                    }
                }
                Ok(None)
            }
            InstrClass::Swap => {
                // Swap both checks (it reads) and initializes (it
                // writes) its word.
                if Umc::monitored(pkt.addr) {
                    self.traps_checked += 1;
                    let (meta_addr, mask) = self.access_mask(pkt.addr, 4);
                    let word = env.read_meta(meta_addr);
                    let ok = word & mask == mask;
                    env.write_meta(meta_addr, mask, mask);
                    if !ok {
                        return Err(MonitorTrap {
                            pc: pkt.pc,
                            reason: format!("uninitialized swap at {:#010x}", pkt.addr),
                        });
                    }
                }
                Ok(None)
            }
            InstrClass::Cpop1 => {
                let (a, b) = (pkt.srcv1, pkt.srcv2);
                let flexcore_isa::Instruction::Cpop { opc, .. } = pkt.inst else {
                    return Ok(None);
                };
                match opc {
                    ops::CLEAR_RANGE => {
                        self.set_range(env, a, b, false);
                        Ok(None)
                    }
                    ops::SET_RANGE => {
                        self.set_range(env, a, b, true);
                        Ok(None)
                    }
                    ops::READ_TAG => {
                        // 1 iff the whole word at `a` is initialized.
                        let (meta_addr, mask) = self.access_mask(a, 4);
                        let word = env.read_meta(meta_addr);
                        Ok(Some(u32::from(word & mask == mask)))
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    fn on_program_load(&mut self, base: u32, len: u32, env: &mut ExtEnv<'_>) {
        // Statically-initialized memory (the loaded image) counts as
        // written — the OS marks it at load time via SET_RANGE.
        self.set_range(env, base, len, true);
    }

    /// The UMC datapath (§IV.A, Figure 3a): meta-data address
    /// translation (shift + add to a base register), a 5→32 bit-select
    /// decoder, tag update/check logic, and pipeline registers.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        // Input order: addr[32], is_load, is_store, tag_word[32].
        let mut s = Vec::with_capacity(66);
        super::push_bits(&mut s, pkt.addr, 32);
        s.push(pkt.class.is_load());
        s.push(pkt.class.is_store());
        super::push_bits(&mut s, 0, 32); // tag_word comes from the meta cache
        s
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("umc");
        let addr = b.input_bus(32);
        let is_load = b.input();
        let is_store = b.input();
        let tag_word = b.input_bus(32); // meta-cache read data

        // Stage 1: latch the FIFO fields.
        let addr_r = b.register_bus(&addr);
        let is_load_r = b.register(is_load);
        let is_store_r = b.register(is_store);

        // Meta address = base + (addr >> 7 aligned to words). The base
        // is a software-visible config register (32 flops).
        let base: Vec<_> = (0..32).map(|_| b.dff()).collect();
        let shifted: Vec<_> = (0..32)
            .map(|i| if (2..27).contains(&i) { addr_r[i + 5] } else { b.constant(false) })
            .collect();
        let (meta_addr, _c) = b.add(&base, &shifted);
        let meta_addr_r = b.register_bus(&meta_addr);
        b.output_bus("meta_addr", &meta_addr_r);

        // Bit select: decode addr[6:2] to a 32-bit one-hot mask.
        let sel: Vec<_> = (2..7).map(|i| addr_r[i]).collect();
        let onehot = b.decoder(&sel);
        let onehot_r = b.register_bus(&onehot);
        b.output_bus("wmask", &onehot_r);

        // Store path: write-enable = one-hot mask & store.
        let st_r2 = b.register(is_store_r);
        let wen: Vec<_> = onehot_r.iter().map(|&m| b.and(m, st_r2)).collect();
        b.output_bus("wen", &wen);

        // Load path: select the tag bit and trap if clear.
        let selected = b.bitwise(&tag_word, &onehot_r, |s, x, y| s.and(x, y));
        let tag = b.reduce_or(&selected);
        let ld_r2 = b.register(is_load_r);
        let ntag = b.not(tag);
        let trap = b.and(ld_r2, ntag);
        let trap_r = b.register(trap);
        b.output("trap", trap_r);

        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{env_parts, mem_packet, packet_with_cpop};
    use flexcore_isa::Opcode;

    #[test]
    fn store_then_load_passes() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        umc.process(&mem_packet(Opcode::St, 0x2000), &mut env).unwrap();
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());
    }

    #[test]
    fn load_of_untouched_word_traps() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        let err = umc.process(&mem_packet(Opcode::Ld, 0x3000), &mut env).unwrap_err();
        assert!(err.reason.contains("uninitialized"));
    }

    #[test]
    fn byte_store_initializes_its_word() {
        // Word-granularity tags: any store marks the whole word.
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        umc.process(&mem_packet(Opcode::Stb, 0x2001), &mut env).unwrap();
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());
    }

    #[test]
    fn clear_range_deinitializes() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        for a in (0x2000..0x2100).step_by(4) {
            umc.process(&mem_packet(Opcode::St, a), &mut env).unwrap();
        }
        // Free the middle 64 bytes.
        umc.process(&packet_with_cpop(1, ops::CLEAR_RANGE, 0x2040, 64), &mut env).unwrap();
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x2040), &mut env).is_err());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x207c), &mut env).is_err());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x2080), &mut env).is_ok());
    }

    #[test]
    fn read_tag_returns_bfifo_value() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        let v0 = umc.process(&packet_with_cpop(1, ops::READ_TAG, 0x2000, 0), &mut env).unwrap();
        assert_eq!(v0, Some(0));
        umc.process(&mem_packet(Opcode::St, 0x2000), &mut env).unwrap();
        let v1 = umc.process(&packet_with_cpop(1, ops::READ_TAG, 0x2000, 0), &mut env).unwrap();
        assert_eq!(v1, Some(1));
    }

    #[test]
    fn program_load_marks_image_initialized() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        umc.on_program_load(0x1000, 0x200, &mut env);
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x11fc), &mut env).is_ok());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x1200), &mut env).is_err());
    }

    #[test]
    fn meta_region_and_mmio_are_not_monitored() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        assert!(umc.process(&mem_packet(Opcode::Ld, META_BASE + 0x100), &mut env).is_ok());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0xffff_0000), &mut env).is_ok());
    }

    #[test]
    fn per_byte_variant_catches_partial_initialization() {
        // The paper's word-granular UMC accepts a word load after a
        // single byte store; the Purify-precision variant does not.
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut word_umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        word_umc.process(&mem_packet(Opcode::Stb, 0x2000), &mut env).unwrap();
        assert!(word_umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());

        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut byte_umc = Umc::per_byte();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        byte_umc.process(&mem_packet(Opcode::Stb, 0x2000), &mut env).unwrap();
        // The stored byte itself is fine...
        assert!(byte_umc.process(&mem_packet(Opcode::Ldub, 0x2000), &mut env).is_ok());
        // ...but the covering word has three uninitialized bytes.
        let err = byte_umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).unwrap_err();
        assert!(err.reason.contains("uninitialized"));
        // Fill the rest and the word load passes.
        for a in [0x2001, 0x2002, 0x2003] {
            byte_umc.process(&mem_packet(Opcode::Stb, a), &mut env).unwrap();
        }
        assert!(byte_umc.process(&mem_packet(Opcode::Ld, 0x2000), &mut env).is_ok());
    }

    #[test]
    fn per_byte_range_ops_cover_unaligned_spans() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::per_byte();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        umc.process(&packet_with_cpop(1, ops::SET_RANGE, 0x2003, 70), &mut env).unwrap();
        assert!(umc.process(&mem_packet(Opcode::Ldub, 0x2003), &mut env).is_ok());
        assert!(umc.process(&mem_packet(Opcode::Ldub, 0x2048), &mut env).is_ok());
        assert!(umc.process(&mem_packet(Opcode::Ldub, 0x2002), &mut env).is_err());
        assert!(umc.process(&mem_packet(Opcode::Ldub, 0x2049), &mut env).is_err());
    }

    #[test]
    fn bypassed_extension_suppresses_checks_until_rearmed() {
        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut umc = Umc::new();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        umc.bypass();
        assert!(umc.bypassed());
        // A load that would trap is waved through and counted.
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x3000), &mut env).is_ok());
        assert_eq!(umc.suppressed_checks(), 1);
        umc.rearm();
        assert!(!umc.bypassed());
        assert!(umc.process(&mem_packet(Opcode::Ld, 0x3000), &mut env).is_err());
        assert_eq!(umc.suppressed_checks(), 1);
    }

    #[test]
    fn cfgr_forwards_only_memory_and_cpop1() {
        let c = Umc::new().cfgr();
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Stb), ForwardPolicy::Always);
        assert_eq!(c.policy(InstrClass::Cpop1), ForwardPolicy::WaitForAck);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::BranchCond), ForwardPolicy::Ignore);
    }

    #[test]
    fn netlist_is_nontrivial_and_maps() {
        let n = Umc::new().netlist();
        assert!(n.logic_gates() > 50);
        let m = flexcore_fabric::map_to_luts(&n, 6);
        assert!(m.lut_count() > 30, "{}", m.lut_count());
        assert!(m.depth() >= 2);
    }
}
