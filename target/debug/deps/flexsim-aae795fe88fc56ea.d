/root/repo/target/debug/deps/flexsim-aae795fe88fc56ea.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/flexsim-aae795fe88fc56ea: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
