/root/repo/target/release/examples/soft_error-e045c69b8abaf345.d: examples/soft_error.rs

/root/repo/target/release/examples/soft_error-e045c69b8abaf345: examples/soft_error.rs

examples/soft_error.rs:
