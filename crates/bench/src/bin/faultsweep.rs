//! `faultsweep` — seeded fault-injection campaigns that validate the
//! SEC soft-error story end-to-end (§IV.D / §V).
//!
//! Three campaigns, all byte-identical for a given `--seed`:
//!
//! 1. **SEC detection coverage** — single-bit flips in the
//!    execute-stage result of randomly chosen ALU commits of `sha` and
//!    `bitcount`; SEC re-executes every forwarded ALU op, so it must
//!    trap on ≥90% of them (the escapes are mod-3-invisible residue
//!    cases on div).
//! 2. **Clean-run false traps** — the rate-0 rows of the sweep: with no
//!    faults injected, UMC/DIFT/BC/SEC must never trap on the benign
//!    workloads.
//! 3. **Rate × target sweep** — Bernoulli faults at increasing rates
//!    against architectural results, registers, FFIFO packets, and
//!    meta-data lines, with per-extension outcome accounting
//!    (trap / silent / deadlock / budget), driven through
//!    [`System::try_run`](flexcore::System::try_run) so a wedged
//!    configuration is a data point, not a hang.
//!
//! Trial generation, execution, and the JSONL record codec all live in
//! [`flexcore_bench::trial`], shared verbatim with the `flexserve` job
//! server — the two cannot drift, and a merged `flexserve` trial log
//! diffs clean against a `faultsweep` progress log for the same
//! campaign parameters.
//!
//! Options: `--seed N` (default 0xf1ec), `--trials N` per workload for
//! campaign 1 (default 100).
//!
//! Campaign robustness options:
//!
//! * `--lockstep` — every faulted run also steps an ISA-level golden
//!   model; architectural corruption the extension misses is caught as
//!   a lockstep divergence and counted as detected.
//! * `--progress FILE` — append one JSONL record per finished trial.
//! * `--resume` — with `--progress`, skip trials already recorded in
//!   the file (deterministic seeds make the skip exact), so an
//!   interrupted campaign continues from its last checkpoint instead
//!   of starting over. A trailing record truncated by a crash
//!   mid-append is dropped with a warning (it is re-run), not a fatal
//!   parse error.
//! * `--checkpoint-every N` — flush buffered progress records to disk
//!   every N trials (default 25).
//! * `--recover` — run every campaign-1 trial under the
//!   rollback-and-replay [`Supervisor`](flexcore::Supervisor) and
//!   triage it against a clean reference run of the same workload:
//!   **Masked** (absorbed, output matches), **Detected-Recovered**
//!   (caught, rolled back, replayed to a matching output), **SDC**
//!   (silent data corruption — completed with the wrong output), or
//!   **DUE** (detected but unrecoverable). The campaign fails (exit 1)
//!   on any SDC or unclassified trial; add `--lockstep` so
//!   architectural corruption SEC misses is detected (and therefore
//!   recovered) instead of going silent. Campaigns 2–3 are unchanged
//!   by this flag.
//! * `--reconfig` — replace the three campaigns with the
//!   reconfig-window campaign: every trial schedules a UMC → CFI
//!   hot-swap at a deterministically drawn commit boundary and strikes
//!   the bitstream *inside the swap window* — even trials with a
//!   single transfer strike (one retry must absorb it), odd trials
//!   corrupting every attempt so the retry budget exhausts and the
//!   recovery ladder must roll back and replay the swap. Requires
//!   `--recover`; the same 0-SDC / 0-unclassified gate applies, and
//!   the triage is against a clean swap-free run (a hot-swap must not
//!   change the architectural outcome).

use std::collections::HashMap;
use std::io::Write as _;

use flexcore::recovery::FaultOutcome;
use flexcore_bench::trial::{
    self, CampaignSpec, TrialOutcome, TrialSpec, SWEEP_RATES, SWEEP_TARGETS,
};
use flexcore_bench::{run_panic_tolerant_observed, ExtKind};
use flexcore_telemetry::RateMeter;
use flexcore_workloads::Workload;

/// Per-trial progress log (JSONL): lets an interrupted campaign resume
/// without redoing finished trials. The first line records the
/// campaign parameters; resuming with different parameters is refused
/// (the trial labels would not mean the same runs).
struct ProgressLog {
    path: Option<String>,
    done: HashMap<String, TrialOutcome>,
    pending: Vec<String>,
    flush_every: usize,
    reused: u64,
}

impl ProgressLog {
    fn header(seed: u64, trials: usize, lockstep: bool, recover: bool, reconfig: bool) -> String {
        let mut h = serde::Value::object()
            .field("seed", &seed)
            .field("trials", &(trials as u64))
            .field("lockstep", &lockstep)
            .field("recover", &recover);
        // Stamped only when set, so progress files from plain campaigns
        // keep their original headers (and stay resumable).
        if reconfig {
            h = h.field("reconfig", &true);
        }
        serde::to_string(&h.build())
    }

    /// One line per parameter that differs between what the progress
    /// file was stamped with and what this invocation requested —
    /// that's the fix-it information a refused `--resume` needs.
    fn header_diff(
        stamped: &serde::Value,
        seed: u64,
        trials: usize,
        lockstep: bool,
        recover: bool,
        reconfig: bool,
    ) -> Vec<String> {
        let mut diffs = Vec::new();
        let mut check_u64 = |key: &str, requested: u64| match stamped
            .get(key)
            .and_then(serde::Value::as_u64)
        {
            Some(s) if s == requested => {}
            Some(s) => diffs.push(format!("  {key}: file has {s}, this run requested {requested}")),
            None => diffs.push(format!("  {key}: not stamped in the file (requested {requested})")),
        };
        check_u64("seed", seed);
        check_u64("trials", trials as u64);
        let mut check_bool = |key: &str, requested: bool| match stamped.get(key) {
            Some(serde::Value::Bool(s)) if *s == requested => {}
            Some(serde::Value::Bool(s)) => {
                diffs.push(format!("  {key}: file has {s}, this run requested {requested}"));
            }
            _ => diffs.push(format!("  {key}: not stamped in the file (requested {requested})")),
        };
        check_bool("lockstep", lockstep);
        check_bool("recover", recover);
        match (stamped.get("reconfig"), reconfig) {
            (None, false) | (Some(serde::Value::Bool(true)), true) => {}
            (stamped_reconfig, _) => diffs.push(format!(
                "  reconfig: file has {}, this run requested {reconfig}",
                matches!(stamped_reconfig, Some(serde::Value::Bool(true)))
            )),
        }
        if diffs.is_empty() {
            diffs.push("  (header is not valid JSON or field order changed)".into());
        }
        diffs
    }

    #[allow(clippy::too_many_arguments)] // campaign identity is exactly these stamps
    fn open(
        path: Option<String>,
        resume: bool,
        flush_every: usize,
        seed: u64,
        trials: usize,
        lockstep: bool,
        recover: bool,
        reconfig: bool,
    ) -> Result<ProgressLog, String> {
        let mut log = ProgressLog {
            path,
            done: HashMap::new(),
            pending: Vec::new(),
            flush_every: flush_every.max(1),
            reused: 0,
        };
        let Some(p) = &log.path else {
            return Ok(log);
        };
        let header = ProgressLog::header(seed, trials, lockstep, recover, reconfig);
        match std::fs::read_to_string(p) {
            Ok(text) if resume => {
                // A crash (or kill -9) mid-append leaves a truncated
                // final line; drop that one record and re-run it rather
                // than poisoning the whole log.
                let parsed = trial::parse_jsonl_tolerant(&text).map_err(|e| format!("{p}: {e}"))?;
                if let Some(partial) = &parsed.dropped_partial {
                    eprintln!(
                        "faultsweep: {p}: dropped truncated trailing record `{partial}` \
                         (crash mid-append; the trial will be re-run)"
                    );
                    parsed
                        .repair_file(std::path::Path::new(p))
                        .map_err(|e| format!("{p}: repairing truncated tail: {e}"))?;
                }
                let mut records = parsed.records.into_iter();
                match records.next() {
                    Some(first) if serde::to_string(&first) == header => {}
                    Some(first) => {
                        let diffs = ProgressLog::header_diff(
                            &first, seed, trials, lockstep, recover, reconfig,
                        );
                        return Err(format!(
                            "{p}: was written with different campaign parameters \
                             (the trial labels would not mean the same runs):\n{}\n\
                             re-run with the stamped parameters or start fresh",
                            diffs.join("\n")
                        ));
                    }
                    None => {}
                }
                for v in records {
                    let label = v
                        .get("label")
                        .and_then(serde::Value::as_str)
                        .ok_or_else(|| format!("{p}: record without a label"))?;
                    let outcome = trial::decode_outcome(&v).map_err(|e| format!("{p}: {e}"))?;
                    log.done.insert(label.to_string(), outcome);
                }
                Ok(log)
            }
            _ => {
                // Fresh campaign: truncate and stamp the parameters.
                std::fs::write(p, format!("{header}\n")).map_err(|e| format!("{p}: {e}"))?;
                Ok(log)
            }
        }
    }

    fn record(&mut self, label: &str, o: TrialOutcome) {
        if self.path.is_none() {
            return;
        }
        self.pending.push(serde::to_string(&trial::outcome_record(label, &o)));
        if self.pending.len() >= self.flush_every {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let Some(p) = &self.path else {
            return;
        };
        if self.pending.is_empty() {
            return;
        }
        let mut text = self.pending.join("\n");
        text.push('\n');
        let appended = std::fs::OpenOptions::new()
            .append(true)
            .open(p)
            .and_then(|mut f| f.write_all(text.as_bytes()));
        if let Err(e) = appended {
            eprintln!("faultsweep: {p}: {e} (progress not saved)");
        }
        self.pending.clear();
    }
}

/// [`run_panic_tolerant`] with a resume cache: trials already in the
/// progress log come back instantly; fresh trials run and are
/// recorded. Reports keep submission order either way.
fn run_with_progress(
    jobs: Vec<TrialSpec>,
    reference: Option<&flexcore::RunResult>,
    progress: &mut ProgressLog,
) -> Vec<flexcore_bench::JobReport<TrialOutcome>> {
    let mut slots: Vec<Option<flexcore_bench::JobReport<TrialOutcome>>> = Vec::new();
    let mut fresh = Vec::new();
    let mut fresh_slots = Vec::new();
    for (i, spec) in jobs.into_iter().enumerate() {
        if let Some(&o) = progress.done.get(&spec.label) {
            progress.reused += 1;
            slots.push(Some(flexcore_bench::JobReport { label: spec.label, outcome: Ok(o) }));
        } else {
            let reference = reference.cloned();
            slots.push(None);
            fresh_slots.push(i);
            let label = spec.label.clone();
            fresh.push((label, move || trial::run_trial(&spec, reference.as_ref())));
        }
    }
    // Rate/ETA progress goes to stderr: CI tees and diffs stdout
    // between runs, and wall-clock rates legitimately differ.
    let meter = RateMeter::start();
    let reports = run_panic_tolerant_observed(fresh, |done, total, _| {
        eprintln!(
            "faultsweep: {done}/{total} fresh trials  {}",
            meter.progress_column(done as u64, total as u64)
        );
    });
    for (i, rep) in fresh_slots.into_iter().zip(reports) {
        if let Ok(o) = &rep.outcome {
            progress.record(&rep.label, *o);
        }
        slots[i] = Some(rep);
    }
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

/// The reconfig-window campaign: UMC → CFI hot-swaps with bitstream
/// strikes inside the swap window, run under the supervisor and
/// triaged against the clean swap-free reference. Returns whether the
/// 0-SDC / 0-unclassified gate passed.
fn reconfig_campaign(
    cspec: &CampaignSpec,
    workloads: &[Workload],
    trials: usize,
    progress: &mut ProgressLog,
) -> bool {
    println!(
        "\nReconfig-window fault triage (bitstream strikes inside UMC -> CFI swap windows, \
         under the supervisor)"
    );
    println!(
        "  even trials: one corrupted transfer (a retry absorbs it); \
         odd trials: every attempt corrupted (ladder rolls back and replays the swap)"
    );
    println!(
        "{:<12}{:>8}{:>9}{:>11}{:>6}{:>6}{:>9}{:>13}",
        "benchmark", "trials", "masked", "recovered", "sdc", "due", "unclass", "mean mttr"
    );
    let mut total_sdc = 0u64;
    let mut total_unclassified = 0u64;
    let mut total_recovered = 0u64;
    let mut mttr_sum = 0u64;
    for workload in workloads {
        let reference = trial::swap_reference_run(workload);
        let jobs = trial::reconfig_trials(cspec, &[*workload]);
        let reports = run_with_progress(jobs, Some(&reference), progress);
        let mut counts: HashMap<FaultOutcome, u64> = HashMap::new();
        let mut unclassified = 0u64;
        let mut workload_mttr = 0u64;
        for rep in &reports {
            match &rep.outcome {
                Ok(o) => match o.triage {
                    Some(t) => {
                        *counts.entry(t).or_default() += 1;
                        if t == FaultOutcome::DetectedRecovered {
                            total_recovered += 1;
                            workload_mttr += o.mttr.unwrap_or(0);
                        }
                    }
                    None => unclassified += 1,
                },
                Err(msg) => {
                    unclassified += 1;
                    eprintln!("  {} panicked: {msg}", rep.label);
                }
            }
        }
        let n = |t: FaultOutcome| counts.get(&t).copied().unwrap_or(0);
        let recovered = n(FaultOutcome::DetectedRecovered);
        let mean_mttr = if recovered == 0 { 0.0 } else { workload_mttr as f64 / recovered as f64 };
        println!(
            "{:<12}{:>8}{:>9}{:>11}{:>6}{:>6}{:>9}{:>13.1}",
            workload.name(),
            trials,
            n(FaultOutcome::Masked),
            recovered,
            n(FaultOutcome::Sdc),
            n(FaultOutcome::Due),
            unclassified,
            mean_mttr,
        );
        total_sdc += n(FaultOutcome::Sdc);
        total_unclassified += unclassified;
        mttr_sum += workload_mttr;
    }
    let campaign_mttr =
        if total_recovered == 0 { 0.0 } else { mttr_sum as f64 / total_recovered as f64 };
    println!(
        "campaign MTTR: {campaign_mttr:.1} cycles mean over {total_recovered} recovered trials \
         (each MTTR spans the replayed swap window)"
    );
    let pass = total_sdc == 0 && total_unclassified == 0;
    println!("recovery gate (0 SDC, 0 unclassified): {}", if pass { "PASS" } else { "FAIL" });
    pass
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == name)?;
    let Some(v) = args.get(i + 1) else {
        eprintln!("faultsweep: {name} requires a value");
        std::process::exit(2);
    };
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    };
    if parsed.is_none() {
        eprintln!("faultsweep: invalid value for {name}: {v} (expected decimal or 0x-hex)");
        std::process::exit(2);
    }
    parsed
}

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("faultsweep: {name} requires a value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let seed = arg_value("--seed").unwrap_or(0xf1ec);
    let trials = arg_value("--trials").unwrap_or(100) as usize;
    let lockstep = std::env::args().any(|a| a == "--lockstep");
    let resume = std::env::args().any(|a| a == "--resume");
    let recover = std::env::args().any(|a| a == "--recover");
    let reconfig = std::env::args().any(|a| a == "--reconfig");
    let progress_path = arg_string("--progress");
    let flush_every = arg_value("--checkpoint-every").unwrap_or(25) as usize;
    if resume && progress_path.is_none() {
        eprintln!("faultsweep: --resume needs --progress FILE to resume from");
        std::process::exit(2);
    }
    if reconfig && !recover {
        eprintln!(
            "faultsweep: --reconfig triages swap-window faults under the rollback-and-replay \
             supervisor; add --recover"
        );
        std::process::exit(2);
    }
    let mut progress = match ProgressLog::open(
        progress_path,
        resume,
        flush_every,
        seed,
        trials,
        lockstep,
        recover,
        reconfig,
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("faultsweep: {e}");
            std::process::exit(2);
        }
    };
    let workloads = [Workload::sha(), Workload::bitcount()];
    let cspec = CampaignSpec { seed, trials, lockstep, recover, ..CampaignSpec::default() };

    println!(
        "faultsweep: seeded fault-injection campaign (seed {seed:#x}, {trials} trials/workload{}{})",
        if lockstep { ", lockstep golden model on" } else { "" },
        if recover { ", rollback-and-replay recovery on" } else { "" }
    );
    println!("{}", "=".repeat(78));

    if reconfig {
        let pass = reconfig_campaign(&cspec, &workloads, trials, &mut progress);
        progress.flush();
        if progress.reused > 0 {
            println!("resumed: {} trials reused from the progress file", progress.reused);
        }
        println!("\nre-run with the same --seed to reproduce these numbers exactly");
        if !pass {
            std::process::exit(1);
        }
        return;
    }

    // ── Campaign 1: SEC detection coverage on single-bit ALU-result flips ──
    // Under --recover the same trials (same labels, same seeds, same
    // fault sites) run under the rollback-and-replay supervisor and are
    // triaged against a clean reference run instead of merely counted
    // as detected/silent.
    if recover {
        println!(
            "\nSEC soft-error recovery triage (single-bit ALU flips under the supervisor, \
             paper 0.25X config)"
        );
        println!(
            "{:<12}{:>8}{:>9}{:>11}{:>6}{:>6}{:>9}{:>13}",
            "benchmark", "trials", "masked", "recovered", "sdc", "due", "unclass", "mean mttr"
        );
    } else {
        println!("\nSEC detection coverage (single-bit flips of ALU results, paper 0.25X config)");
        println!(
            "{:<12}{:>8}{:>10}{:>10}{:>10}{:>11}{:>12}",
            "benchmark", "trials", "detected", "silent", "hung", "coverage", "mean skid"
        );
    }
    let mut all_pass = true;
    let mut total_sdc = 0u64;
    let mut total_unclassified = 0u64;
    let mut total_recovered = 0u64;
    let mut mttr_sum = 0u64;
    for workload in &workloads {
        let reference = recover.then(|| trial::reference_run(workload));
        let jobs = trial::campaign1_trials(&cspec, &[*workload]);
        let reports = run_with_progress(jobs, reference.as_ref(), &mut progress);
        if recover {
            let mut counts: HashMap<FaultOutcome, u64> = HashMap::new();
            let mut unclassified = 0u64;
            let mut workload_mttr = 0u64;
            for rep in &reports {
                match &rep.outcome {
                    Ok(o) => match o.triage {
                        Some(t) => {
                            *counts.entry(t).or_default() += 1;
                            if t == FaultOutcome::DetectedRecovered {
                                total_recovered += 1;
                                workload_mttr += o.mttr.unwrap_or(0);
                            }
                        }
                        None => unclassified += 1,
                    },
                    Err(msg) => {
                        unclassified += 1;
                        eprintln!("  {} panicked: {msg}", rep.label);
                    }
                }
            }
            let n = |t: FaultOutcome| counts.get(&t).copied().unwrap_or(0);
            let recovered = n(FaultOutcome::DetectedRecovered);
            let mean_mttr =
                if recovered == 0 { 0.0 } else { workload_mttr as f64 / recovered as f64 };
            println!(
                "{:<12}{:>8}{:>9}{:>11}{:>6}{:>6}{:>9}{:>13.1}",
                workload.name(),
                trials,
                n(FaultOutcome::Masked),
                recovered,
                n(FaultOutcome::Sdc),
                n(FaultOutcome::Due),
                unclassified,
                mean_mttr,
            );
            total_sdc += n(FaultOutcome::Sdc);
            total_unclassified += unclassified;
            mttr_sum += workload_mttr;
        } else {
            let mut detected = 0u64;
            let mut diverged = 0u64;
            let mut silent = 0u64;
            let mut hung = 0u64;
            let mut skids = Vec::new();
            for rep in &reports {
                match &rep.outcome {
                    Ok(o) if o.detected() => {
                        detected += 1;
                        diverged += u64::from(o.diverged);
                        skids.extend(o.trap_skid);
                    }
                    Ok(o) if o.deadlocked || o.over_budget => hung += 1,
                    Ok(_) => silent += 1,
                    Err(msg) => {
                        silent += 1;
                        eprintln!("  {} panicked: {msg}", rep.label);
                    }
                }
            }
            let coverage = detected as f64 / trials as f64;
            let mean_skid = if skids.is_empty() {
                0.0
            } else {
                skids.iter().sum::<u64>() as f64 / skids.len() as f64
            };
            all_pass &= coverage >= 0.90;
            println!(
                "{:<12}{:>8}{:>10}{:>10}{:>10}{:>10.1}%{:>12.1}",
                workload.name(),
                trials,
                detected,
                silent,
                hung,
                coverage * 100.0,
                mean_skid,
            );
            if diverged > 0 {
                println!(
                    "  ({diverged} of the {detected} detections came from lockstep divergence, \
                     which fires before the imprecise SEC trap)"
                );
            }
        }
    }
    if recover {
        let campaign_mttr =
            if total_recovered == 0 { 0.0 } else { mttr_sum as f64 / total_recovered as f64 };
        println!(
            "campaign MTTR: {campaign_mttr:.1} cycles mean over {total_recovered} recovered trials"
        );
        all_pass &= total_sdc == 0 && total_unclassified == 0;
        println!(
            "recovery gate (0 SDC, 0 unclassified): {}",
            if total_sdc == 0 && total_unclassified == 0 { "PASS" } else { "FAIL" }
        );
    } else {
        println!("coverage target ≥ 90.0%: {}", if all_pass { "PASS" } else { "FAIL" });
    }

    // ── Campaigns 2+3: rate × target sweep (rate 0 = clean false-trap check) ──
    println!("\nRate × target sweep (Bernoulli faults/commit; cell = outcome:faults-injected)");
    println!("  outcome key: trap / div (lockstep divergence) / ok (ran clean) / dead / budget");
    let mut clean_false_traps = 0u64;
    for workload in &workloads {
        println!(
            "\n{} ({} per-million rates: {:?})",
            workload.name(),
            SWEEP_RATES.len(),
            SWEEP_RATES
        );
        print!("{:<6}{:<11}", "ext", "target");
        for r in SWEEP_RATES {
            print!("{:>16}", format!("rate {r}"));
        }
        println!();
        // sweep_trials yields workload → extension → target → rate;
        // chunks of SWEEP_RATES.len() are therefore one (ext, target)
        // row each, in ExtKind::ALL × SWEEP_TARGETS order.
        let sweep = trial::sweep_trials(&cspec, &[*workload]);
        let mut rows = ExtKind::ALL
            .iter()
            .flat_map(|ext| SWEEP_TARGETS.iter().map(move |(tname, _)| (*ext, *tname)));
        for row in sweep.chunks(SWEEP_RATES.len()) {
            let (ext, tname) = rows.next().expect("one (ext, target) row per chunk");
            let reports = run_with_progress(row.to_vec(), None, &mut progress);
            print!("{:<6}{:<11}", ext.name(), tname);
            for (ri, rep) in reports.iter().enumerate() {
                let cell = match &rep.outcome {
                    Ok(o) => {
                        if SWEEP_RATES[ri] == 0 && o.detected() {
                            clean_false_traps += 1;
                        }
                        let tag = if o.diverged {
                            "div"
                        } else if o.trapped {
                            "trap"
                        } else if o.deadlocked {
                            "dead"
                        } else if o.over_budget {
                            "budget"
                        } else {
                            "ok"
                        };
                        format!("{tag}:{}", o.faults_injected)
                    }
                    Err(_) => "panic".to_string(),
                };
                print!("{cell:>16}");
            }
            println!();
        }
    }
    println!(
        "\nclean-run (rate 0) false traps/divergences across all extensions/targets: {} ({})",
        clean_false_traps,
        if clean_false_traps == 0 { "PASS" } else { "FAIL" }
    );
    progress.flush();
    if progress.reused > 0 {
        println!("resumed: {} trials reused from the progress file", progress.reused);
    }
    println!("\nre-run with the same --seed to reproduce these numbers exactly");
    if !all_pass || clean_false_traps != 0 {
        std::process::exit(1);
    }
}
