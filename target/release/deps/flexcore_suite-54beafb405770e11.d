/root/repo/target/release/deps/flexcore_suite-54beafb405770e11.d: src/lib.rs

/root/repo/target/release/deps/libflexcore_suite-54beafb405770e11.rlib: src/lib.rs

/root/repo/target/release/deps/libflexcore_suite-54beafb405770e11.rmeta: src/lib.rs

src/lib.rs:
