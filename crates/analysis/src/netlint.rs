//! Structural lint for gate-level netlists.
//!
//! The netlist IR is single-driver by construction (every net is driven
//! by its gate-array slot) and the builder emits combinational gates in
//! topological order, so most structural properties *should* hold — the
//! linter verifies they actually do on the netlist as loaded, the same
//! way the dynamic monitors re-check properties the software side
//! "should" satisfy:
//!
//! * dangling net references (index past the gate array),
//! * combinational cycles and forward references — both break the
//!   single-pass evaluation order; a DFF in the path legally breaks a
//!   cycle, and a DFF's self-loop (`q -> d`) is the builder's
//!   "unconnected hold" idiom,
//! * dead combinational logic unreachable backwards from any primary
//!   output or live flop,
//! * floating primary inputs, duplicate output names,
//! * LUT-mapper width/table-size consistency against the requested K,
//! * bitstream round-trip and functional equivalence of the mapped
//!   network against the source netlist.

use std::collections::BTreeSet;

use flexcore_fabric::{from_bitstream, map_to_luts, to_bitstream, Gate, Netlist};

use crate::diag::{Diagnostic, Rule};

/// Deterministic functional-equivalence vectors per netlist.
const EQUIV_STEPS: usize = 64;

/// Lints `netlist`, mapping it to `k`-input LUTs for the consistency
/// checks (the repo's FPGA model uses K=6).
pub fn lint_netlist(netlist: &Netlist, k: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let structural_ok = structure(netlist, &mut diags);
    reachability(netlist, &mut diags);
    duplicate_outputs(netlist, &mut diags);
    if structural_ok {
        mapping_checks(netlist, k, &mut diags);
    }
    diags
}

/// Dangling references and evaluation-order violations. Returns
/// whether the netlist is safe to evaluate.
fn structure(netlist: &Netlist, diags: &mut Vec<Diagnostic>) -> bool {
    let n = netlist.gates().len();
    let mut ok = true;
    for (i, gate) in netlist.gates().iter().enumerate() {
        for input in gate.inputs() {
            if input.index() >= n {
                diags.push(Diagnostic::new(
                    Rule::NlDanglingRef,
                    Some(i as u32),
                    format!("gate {i} reads net {}, past the {n}-gate array", input.index()),
                ));
                ok = false;
            } else if !matches!(gate, Gate::Dff(_)) && input.index() >= i {
                // A combinational gate reading itself or a later net
                // breaks the topological evaluation order; with
                // single-driver slots this is exactly how a
                // combinational cycle manifests.
                diags.push(Diagnostic::new(
                    Rule::NlCombLoop,
                    Some(i as u32),
                    format!(
                        "combinational gate {i} reads net {} ({}): cycle or forward reference",
                        input.index(),
                        if input.index() == i { "itself" } else { "not yet evaluated" }
                    ),
                ));
                ok = false;
            }
        }
    }
    for (name, net) in netlist.outputs() {
        if net.index() >= n {
            diags.push(Diagnostic::new(
                Rule::NlDanglingRef,
                None,
                format!("output `{name}` reads net {}, past the {n}-gate array", net.index()),
            ));
            ok = false;
        }
    }
    ok
}

/// Backward closure from the primary outputs. A DFF in the closure
/// pulls in its next-state cone; everything combinational left outside
/// is dead, and primary inputs outside are floating.
fn reachability(netlist: &Netlist, diags: &mut Vec<Diagnostic>) {
    let n = netlist.gates().len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> =
        netlist.outputs().iter().map(|(_, net)| net.index()).filter(|&i| i < n).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for input in netlist.gates()[i].inputs() {
            if input.index() < n && !live[input.index()] {
                stack.push(input.index());
            }
        }
    }

    let mut unconnected_dffs = 0usize;
    let mut dead: Vec<usize> = Vec::new();
    let mut floating: Vec<usize> = Vec::new();
    for (i, gate) in netlist.gates().iter().enumerate() {
        match gate {
            Gate::Dff(d) if d.index() == i => unconnected_dffs += 1,
            Gate::Input => {
                if !live[i] {
                    floating.push(i);
                }
            }
            Gate::Const(_) => {}
            _ => {
                if !live[i] {
                    dead.push(i);
                }
            }
        }
    }
    if unconnected_dffs > 0 {
        diags.push(Diagnostic::new(
            Rule::NlUnconnectedDff,
            None,
            format!(
                "{unconnected_dffs} DFF(s) hold their reset value forever (self-loop data input) \
                 — expected for configuration registers"
            ),
        ));
    }
    if !dead.is_empty() {
        diags.push(Diagnostic::new(
            Rule::NlDeadLogic,
            Some(dead[0] as u32),
            format!(
                "{} gate(s) unreachable from any output (first at net {}) — dead logic",
                dead.len(),
                dead[0]
            ),
        ));
    }
    if !floating.is_empty() {
        diags.push(Diagnostic::new(
            Rule::NlFloatingInput,
            Some(floating[0] as u32),
            format!(
                "{} primary input(s) feed no output cone (first at net {})",
                floating.len(),
                floating[0]
            ),
        ));
    }
}

fn duplicate_outputs(netlist: &Netlist, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (name, _) in netlist.outputs() {
        if !seen.insert(name) {
            diags.push(Diagnostic::new(
                Rule::NlDuplicateOutput,
                None,
                format!("output name `{name}` is driven more than once"),
            ));
        }
    }
}

/// LUT-width consistency, bitstream round-trip, and functional
/// equivalence of the mapped network on deterministic vectors.
fn mapping_checks(netlist: &Netlist, k: usize, diags: &mut Vec<Diagnostic>) {
    let mapping = map_to_luts(netlist, k);
    for lut in mapping.luts() {
        if lut.leaves.len() > k {
            diags.push(Diagnostic::new(
                Rule::NlLutWidth,
                Some(lut.root.index() as u32),
                format!(
                    "LUT at net {} has {} leaves for K={k}",
                    lut.root.index(),
                    lut.leaves.len()
                ),
            ));
        }
        if lut.table.len() != 1 << lut.leaves.len() {
            diags.push(Diagnostic::new(
                Rule::NlLutWidth,
                Some(lut.root.index() as u32),
                format!(
                    "LUT at net {} has a {}-entry table for {} leaves",
                    lut.root.index(),
                    lut.table.len(),
                    lut.leaves.len()
                ),
            ));
        }
    }

    let reloaded = match from_bitstream(&to_bitstream(&mapping)) {
        Ok(m) => m,
        Err(e) => {
            diags.push(Diagnostic::new(
                Rule::NlBitstreamMismatch,
                None,
                format!("bitstream round-trip failed to load: {e:?}"),
            ));
            return;
        }
    };
    if reloaded.k() != mapping.k()
        || reloaded.lut_count() != mapping.lut_count()
        || reloaded.depth() != mapping.depth()
    {
        diags.push(Diagnostic::new(
            Rule::NlBitstreamMismatch,
            None,
            format!(
                "bitstream round-trip changed shape: K {}→{}, LUTs {}→{}, depth {}→{}",
                mapping.k(),
                reloaded.k(),
                mapping.lut_count(),
                reloaded.lut_count(),
                mapping.depth(),
                reloaded.depth()
            ),
        ));
        return;
    }

    // Lockstep the source netlist against the reloaded LUT network on
    // a deterministic input stream (LCG), carrying both flop states.
    let width = netlist.inputs().len();
    let mut lcg: u32 = 0xace1_2026;
    let mut next_bit = || {
        lcg = lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        lcg >> 31 != 0
    };
    let mut gold_state = netlist.initial_state();
    let mut lut_state = netlist.initial_state();
    for step in 0..EQUIV_STEPS {
        let inputs: Vec<bool> = (0..width).map(|_| next_bit()).collect();
        let gold = netlist.eval(&inputs, &mut gold_state);
        let mapped = reloaded.eval(netlist, &inputs, &mut lut_state);
        if gold != mapped || gold_state != lut_state {
            diags.push(Diagnostic::new(
                Rule::NlBitstreamMismatch,
                None,
                format!(
                    "mapped network diverges from the netlist at step {step} \
                     (outputs {}, state {})",
                    if gold == mapped { "agree" } else { "differ" },
                    if gold_state == lut_state { "agrees" } else { "differs" }
                ),
            ));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_fabric::MacroBlock;
    use flexcore_fabric::NetlistBuilder;

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_netlist_lints_clean() {
        let mut b = NetlistBuilder::new("clean");
        let x = b.input();
        let y = b.input();
        let s = b.xor(x, y);
        let q = b.register(s);
        b.output("sum", s);
        b.output("held", q);
        let diags = lint_netlist(&b.finish(), 6);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
        assert!(!rules(&diags).contains(&Rule::NlDeadLogic), "{diags:?}");
        assert!(!rules(&diags).contains(&Rule::NlFloatingInput), "{diags:?}");
    }

    #[test]
    fn dead_gate_and_floating_input_warn() {
        let mut b = NetlistBuilder::new("dead");
        let x = b.input();
        let unused_in = b.input();
        let _dead = b.not(x);
        b.output("pass", x);
        let _ = unused_in;
        let diags = lint_netlist(&b.finish(), 6);
        assert!(rules(&diags).contains(&Rule::NlDeadLogic), "{diags:?}");
        assert!(rules(&diags).contains(&Rule::NlFloatingInput), "{diags:?}");
        assert!(diags.iter().all(|d| !d.is_error()), "warnings must not gate: {diags:?}");
    }

    #[test]
    fn unconnected_dff_is_informational() {
        let mut b = NetlistBuilder::new("cfgreg");
        let q = b.dff();
        b.output("held", q);
        let diags = lint_netlist(&b.finish(), 6);
        let d = diags.iter().find(|d| d.rule == Rule::NlUnconnectedDff).expect("info emitted");
        assert!(!d.is_error());
    }

    #[test]
    fn duplicate_output_name_warns() {
        let mut b = NetlistBuilder::new("dup");
        let x = b.input();
        let y = b.not(x);
        b.output("o", x);
        b.output("o", y);
        let diags = lint_netlist(&b.finish(), 6);
        assert!(rules(&diags).contains(&Rule::NlDuplicateOutput), "{diags:?}");
    }

    #[test]
    fn word_level_blocks_survive_mapping_equivalence() {
        // A small datapath with state: accumulator += input bus.
        let mut b = NetlistBuilder::new("accum");
        let a = b.input_bus(8);
        let acc: Vec<_> = (0..8).map(|_| b.dff()).collect();
        let (sum, _carry) = b.add(&a, &acc.clone());
        for (q, d) in acc.iter().zip(sum.iter()) {
            b.connect_dff(*q, *d);
        }
        b.output_bus("acc", &sum);
        b.add_macro(MacroBlock::Ram { words: 16, width: 8 });
        let diags = lint_netlist(&b.finish(), 6);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn tiny_k_still_round_trips() {
        let mut b = NetlistBuilder::new("k2");
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let t = b.and(x, y);
        let u = b.or(t, z);
        b.output("u", u);
        let diags = lint_netlist(&b.finish(), 2);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }
}
