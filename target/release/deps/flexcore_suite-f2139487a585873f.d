/root/repo/target/release/deps/flexcore_suite-f2139487a585873f.d: src/lib.rs

/root/repo/target/release/deps/libflexcore_suite-f2139487a585873f.rlib: src/lib.rs

/root/repo/target/release/deps/libflexcore_suite-f2139487a585873f.rmeta: src/lib.rs

src/lib.rs:
