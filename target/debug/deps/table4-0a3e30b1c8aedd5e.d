/root/repo/target/debug/deps/table4-0a3e30b1c8aedd5e.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-0a3e30b1c8aedd5e: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
