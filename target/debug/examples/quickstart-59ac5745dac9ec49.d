/root/repo/target/debug/examples/quickstart-59ac5745dac9ec49.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-59ac5745dac9ec49.rmeta: examples/quickstart.rs

examples/quickstart.rs:
