/root/repo/target/debug/deps/flexcore_pipeline-c2856ebc7e64d486.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-c2856ebc7e64d486.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/serde_impls.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
