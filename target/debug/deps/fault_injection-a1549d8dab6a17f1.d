/root/repo/target/debug/deps/fault_injection-a1549d8dab6a17f1.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-a1549d8dab6a17f1.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
