//! Monitoring and bookkeeping extensions (the paper's §II/§IV).
//!
//! Each extension implements [`Extension`]: a functional model that
//! processes forwarded [`TracePacket`]s against the meta-data
//! subsystem, a CFGR forwarding configuration, a Table I descriptor,
//! and a gate-level netlist from which both the FPGA and ASIC costs of
//! Table III are derived.

pub mod bc;
pub mod cfi;
pub mod dift;
pub mod mprot;
pub mod nop;
pub mod sec;
pub mod umc;

pub use bc::Bc;
pub use cfi::{Cfi, CfiTable};
pub use dift::Dift;
pub use mprot::Mprot;
pub use nop::Nop;
pub use sec::Sec;
pub use umc::Umc;

use std::fmt;

use flexcore_fabric::Netlist;
use flexcore_mem::{BusMaster, MainMemory, MetaDataCache, SystemBus};
use flexcore_pipeline::TracePacket;
use flexcore_telemetry::{Phase, PhaseStats};

use crate::interface::Cfgr;
use crate::ShadowRegFile;

/// Base address of the meta-data region in physical memory. Meta-data
/// shares the lower memory hierarchy with program data but lives in a
/// disjoint region managed by the OS (§III.F).
pub const META_BASE: u32 = 0x4000_0000;

/// An exception raised by a monitoring extension (the TRAP signal).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MonitorTrap {
    /// PC of the instruction that failed the check.
    pub pc: u32,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl fmt::Display for MonitorTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor trap at {:#010x}: {}", self.pc, self.reason)
    }
}

impl std::error::Error for MonitorTrap {}

/// One row of the paper's Table I: what an extension keeps and does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExtensionDescriptor {
    /// Short name (UMC/DIFT/BC/SEC).
    pub abbrev: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Meta-data the extension maintains.
    pub meta_data: &'static [&'static str],
    /// Operations performed transparently on forwarded instructions.
    pub transparent_ops: &'static [&'static str],
    /// Software-visible operations (explicit instructions and
    /// exceptions).
    pub sw_visible_ops: &'static [&'static str],
}

/// The meta-data environment an extension operates in while processing
/// one packet: the meta-data cache, the shared bus, the shadow register
/// file, and the clock.
///
/// The environment tracks when the slowest meta-data access completes
/// ([`ExtEnv::ready_at`]) so the system can model the fabric pipeline
/// blocking on misses.
pub struct ExtEnv<'a> {
    meta: &'a mut MetaDataCache,
    mem: &'a mut MainMemory,
    bus: &'a mut SystemBus,
    /// The shadow meta-data register file.
    pub shadow: &'a mut ShadowRegFile,
    now: u64,
    ready_at: u64,
    /// Core cycles per fabric cycle (the meta cache is in the fabric
    /// clock domain; each access occupies one of its cycles).
    period: u64,
    /// When set, the cache has no bit write-enable mask and every
    /// masked write costs an explicit read-modify-write (ablation).
    rmw_writes: bool,
    meta_reads: u64,
    meta_writes: u64,
    /// Host-time profiler stats lent by the system for the duration of
    /// one packet; meta-cache access time is charged to
    /// [`Phase::MetaCache`]. `None` (the default) costs nothing.
    prof: Option<&'a mut PhaseStats>,
}

impl<'a> ExtEnv<'a> {
    /// Creates an environment for processing one packet starting at
    /// core-clock cycle `now`, with the fabric clocked every `period`
    /// core cycles.
    pub fn new(
        meta: &'a mut MetaDataCache,
        mem: &'a mut MainMemory,
        bus: &'a mut SystemBus,
        shadow: &'a mut ShadowRegFile,
        now: u64,
    ) -> ExtEnv<'a> {
        ExtEnv::with_period(meta, mem, bus, shadow, now, 1)
    }

    /// Like [`ExtEnv::new`] with an explicit fabric clock period.
    pub fn with_period(
        meta: &'a mut MetaDataCache,
        mem: &'a mut MainMemory,
        bus: &'a mut SystemBus,
        shadow: &'a mut ShadowRegFile,
        now: u64,
        period: u64,
    ) -> ExtEnv<'a> {
        ExtEnv {
            meta,
            mem,
            bus,
            shadow,
            now,
            ready_at: now,
            period: period.max(1),
            rmw_writes: false,
            meta_reads: 0,
            meta_writes: 0,
            prof: None,
        }
    }

    /// Lends phase-profiler stats to this environment: every
    /// [`read_meta`](ExtEnv::read_meta) /
    /// [`write_meta`](ExtEnv::write_meta) records its host wall-clock
    /// under [`Phase::MetaCache`]. Used by the system's profiled step
    /// loop; without it the environment performs no clock reads.
    pub fn attach_profiler(&mut self, stats: &'a mut PhaseStats) {
        self.prof = Some(stats);
    }

    /// Opens a meta-cache span (a clock read only when profiling).
    #[inline]
    fn meta_span(&self) -> Option<std::time::Instant> {
        if self.prof.is_some() {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened by [`ExtEnv::meta_span`].
    #[inline]
    fn meta_span_end(&mut self, started: Option<std::time::Instant>) {
        if let (Some(t), Some(stats)) = (started, self.prof.as_deref_mut()) {
            stats.record(Phase::MetaCache, t.elapsed().as_nanos() as u64);
        }
    }

    /// Disables the bit-granular write mask (ablation): every
    /// [`write_meta`](ExtEnv::write_meta) pays an explicit read before
    /// the write, as the paper says a cache without the mask would
    /// (§III.D).
    pub fn force_read_modify_write(&mut self) {
        self.rmw_writes = true;
    }

    /// Charges one additional fabric cycle (used by the system when the
    /// fabric must decode instructions itself — the
    /// `decode_on_core = false` ablation).
    pub fn charge_fabric_cycle(&mut self) {
        self.ready_at += self.period;
    }

    /// Reads the aligned meta-data word containing `addr` through the
    /// meta-data cache. The single-ported cache costs one fabric cycle
    /// per access even on a hit; misses additionally go over the shared
    /// bus. Both extend [`ready_at`](ExtEnv::ready_at).
    pub fn read_meta(&mut self, addr: u32) -> u32 {
        let span = self.meta_span();
        let r = self.meta.read_word(addr, self.mem, self.bus, BusMaster::Fabric, self.ready_at);
        self.ready_at = (self.ready_at + self.period).max(r.ready_at);
        self.meta_reads += 1;
        self.meta_span_end(span);
        r.value
    }

    /// Writes `data` under `bitmask` into the aligned meta-data word
    /// containing `addr` (the paper's bit-granular write enable). Costs
    /// one fabric cycle plus any miss handling — or a read-modify-write
    /// pair when the mask hardware is ablated away.
    pub fn write_meta(&mut self, addr: u32, data: u32, bitmask: u32) {
        let span = self.meta_span();
        if self.rmw_writes && bitmask != u32::MAX {
            // No write-enable mask in hardware: read the word first.
            let r = self.meta.read_word(addr, self.mem, self.bus, BusMaster::Fabric, self.ready_at);
            self.ready_at = (self.ready_at + self.period).max(r.ready_at);
            self.meta_reads += 1;
        }
        let w = self.meta.write_masked(
            addr,
            data,
            bitmask,
            self.mem,
            self.bus,
            BusMaster::Fabric,
            self.ready_at,
        );
        self.ready_at = (self.ready_at + self.period).max(w.ready_at);
        self.meta_writes += 1;
        self.meta_span_end(span);
    }

    /// Core-clock cycle at which processing began.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Core-clock cycle at which the slowest meta-data access so far
    /// completes.
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Meta-data accesses issued while processing this packet.
    pub fn meta_ops(&self) -> (u64, u64) {
        (self.meta_reads, self.meta_writes)
    }
}

/// A run-time monitoring / bookkeeping extension.
///
/// The trait captures the co-processing model of §II: meta-data,
/// transparent per-instruction operations, and software-visible
/// operations (`cpop` instructions and the trap).
pub trait Extension {
    /// Short name (used in reports).
    fn name(&self) -> &'static str;

    /// The Table I row for this extension.
    fn descriptor(&self) -> ExtensionDescriptor;

    /// The forwarding configuration this extension programs into the
    /// CFGR.
    fn cfgr(&self) -> Cfgr;

    /// Pipeline depth of the extension on the fabric (the paper's
    /// prototypes are "moderately pipelined (3 to 6 stages)"). Affects
    /// trap latency, not throughput.
    fn pipeline_stages(&self) -> u32 {
        3
    }

    /// Processes one forwarded packet.
    ///
    /// Returns `Ok(Some(value))` when the packet was a "read from
    /// co-processor" instruction and `value` should travel back through
    /// the BFIFO into the instruction's destination register.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorTrap`] when a check fails; the system raises
    /// the TRAP signal and terminates the program (the paper's
    /// prototypes all terminate on a failed check).
    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap>;

    /// Hook invoked when a program image is loaded, so extensions can
    /// initialize meta-data for statically-initialized memory (e.g.
    /// UMC marks the image as written). Default: nothing.
    fn on_program_load(&mut self, _base: u32, _len: u32, _env: &mut ExtEnv<'_>) {}

    /// The extension's mutable run-time state as a flat word vector,
    /// for checkpointing. Meta-data lives in the meta-data cache and
    /// shadow register file (captured separately by
    /// [`System::snapshot`](crate::System::snapshot)); this hook covers
    /// only state held inside the extension itself — counters, policy
    /// registers, and the like. Configuration fixed at construction
    /// (granularities, netlists) must not be included. Default: empty.
    fn snapshot_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by
    /// [`snapshot_state`](Extension::snapshot_state). Called on an
    /// extension constructed the same way as the one snapshotted; a
    /// mismatched vector indicates a foreign checkpoint and may be
    /// ignored or partially applied. Default: nothing.
    fn restore_state(&mut self, _state: &[u64]) {}

    /// Puts the extension into degraded (bypassed) mode: every
    /// subsequent packet is acknowledged without being checked, and
    /// [`suppressed_checks`](Extension::suppressed_checks) counts what
    /// was skipped. The recovery supervisor calls this when the
    /// escalation ladder gives up on monitored re-execution; the
    /// default is a no-op for extensions without a bypass path.
    fn bypass(&mut self) {}

    /// Leaves degraded mode and resumes checking. Default: no-op.
    fn rearm(&mut self) {}

    /// Whether the extension is currently bypassed. Default: `false`.
    fn bypassed(&self) -> bool {
        false
    }

    /// Number of checks skipped while bypassed. Default: `0`.
    fn suppressed_checks(&self) -> u64 {
        0
    }

    /// Which [`ElisionTable`](crate::ElisionTable) bit covers this
    /// extension's checks (`ELIDE_UMC`, `ELIDE_DIFT`, `ELIDE_CFI`, …).
    /// `0` — the default — means no static analysis targets this
    /// extension and nothing is ever elided for it.
    fn elision_class(&self) -> u8 {
        0
    }

    /// Whether skipping this packet entirely (never enqueueing it) is
    /// guaranteed to leave the extension's observable behavior —
    /// trap verdicts, meta-data, shadow tags, returned BFIFO values —
    /// bit-identical. Called only for PCs the elision table marks;
    /// extensions re-validate per packet so a stale table costs
    /// performance, never soundness. Default: `false` (never elide).
    fn check_elidable(&self, _pkt: &TracePacket) -> bool {
        false
    }

    /// The extension's datapath as a gate-level netlist, used by the
    /// Table III cost models (FPGA LUT mapping and ASIC synthesis).
    fn netlist(&self) -> Netlist;

    /// Maps one forwarded packet onto the netlist's primary inputs —
    /// one stimulus vector per fabric cycle for waveform (VCD) dumps.
    ///
    /// The default packs the raw Table II FIFO entry bits across the
    /// inputs (truncating or zero-padding); extensions override it to
    /// drive their actual input layout. Fields a real datapath would
    /// read from the meta-data cache or shadow register file (not from
    /// the FIFO entry) are driven to zero.
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        let n = self.netlist().inputs().len();
        let words = pkt.pack();
        (0..n)
            .map(|i| {
                let bits = TracePacket::WIDTH_BITS as usize;
                if i < bits {
                    words[i / 32] >> (i % 32) & 1 == 1
                } else {
                    false
                }
            })
            .collect()
    }
}

/// Boxed extensions forward every hook to the boxed value, so a
/// `System<Box<dyn Extension>>` can hold *any* extension — the shape
/// mid-run hot swaps between different extension types require (a
/// concrete `System<E>` can only swap to another `E`).
impl<T: Extension + ?Sized> Extension for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn descriptor(&self) -> ExtensionDescriptor {
        (**self).descriptor()
    }
    fn cfgr(&self) -> Cfgr {
        (**self).cfgr()
    }
    fn pipeline_stages(&self) -> u32 {
        (**self).pipeline_stages()
    }
    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        (**self).process(pkt, env)
    }
    fn on_program_load(&mut self, base: u32, len: u32, env: &mut ExtEnv<'_>) {
        (**self).on_program_load(base, len, env)
    }
    fn snapshot_state(&self) -> Vec<u64> {
        (**self).snapshot_state()
    }
    fn restore_state(&mut self, state: &[u64]) {
        (**self).restore_state(state)
    }
    fn bypass(&mut self) {
        (**self).bypass()
    }
    fn rearm(&mut self) {
        (**self).rearm()
    }
    fn bypassed(&self) -> bool {
        (**self).bypassed()
    }
    fn suppressed_checks(&self) -> u64 {
        (**self).suppressed_checks()
    }
    fn elision_class(&self) -> u8 {
        (**self).elision_class()
    }
    fn check_elidable(&self, pkt: &TracePacket) -> bool {
        (**self).check_elidable(pkt)
    }
    fn netlist(&self) -> Netlist {
        (**self).netlist()
    }
    fn vcd_stimulus(&self, pkt: &TracePacket) -> Vec<bool> {
        (**self).vcd_stimulus(pkt)
    }
}

/// Pushes the low `n` bits of `v`, LSB first (the bit order of
/// [`NetlistBuilder::input_bus`](flexcore_fabric::NetlistBuilder::input_bus)),
/// onto a stimulus vector.
pub(crate) fn push_bits(out: &mut Vec<bool>, v: u32, n: usize) {
    for i in 0..n {
        out.push(v >> i & 1 == 1);
    }
}

/// Meta-data address of the 1-bit-per-word tag for the data word at
/// `addr` (UMC and DIFT): word `w = addr >> 2` maps to bit `w & 31` of
/// the meta word at `META_BASE + (w >> 5) * 4`.
pub fn bit_tag_location(addr: u32) -> (u32, u32) {
    let w = addr >> 2;
    (META_BASE + ((w >> 5) << 2), w & 31)
}

/// Meta-data address of the 2-bit-per-word tag for the data word at
/// `addr` (MPROT): word `w = addr >> 2` maps to bits
/// `2*(w & 15)..2*(w & 15)+2` of the meta word at
/// `META_BASE + (w >> 4) * 4`.
pub fn two_bit_tag_location(addr: u32) -> (u32, u32) {
    let w = addr >> 2;
    (META_BASE + ((w >> 4) << 2), (w & 15) * 2)
}

/// Meta-data address of the 8-bit-per-word tag for the data word at
/// `addr` (BC): word `w` maps to the byte at `META_BASE + w`, i.e. lane
/// `w & 3` of the meta word at `META_BASE + (w & !3)`. Returns the
/// aligned meta word address and the big-endian byte shift.
pub fn byte_tag_location(addr: u32) -> (u32, u32) {
    let w = addr >> 2;
    let byte_addr = META_BASE + w;
    let lane = byte_addr & 3;
    (byte_addr & !3, (3 - lane) * 8)
}

#[cfg(test)]
pub(crate) mod tests_util {
    //! Shared helpers for extension unit tests: build environments and
    //! synthetic trace packets without running the whole system.

    use flexcore_isa::{IccFlags, InstrClass, Instruction, Opcode, Operand2, Reg};
    use flexcore_mem::{CacheConfig, MainMemory, MetaDataCache, SystemBus};
    use flexcore_pipeline::TracePacket;

    use crate::ShadowRegFile;

    pub fn env_parts() -> (MetaDataCache, MainMemory, SystemBus, ShadowRegFile) {
        (
            MetaDataCache::new(CacheConfig::meta_default()),
            MainMemory::new(),
            SystemBus::default(),
            ShadowRegFile::new(),
        )
    }

    pub fn packet(inst: Instruction) -> TracePacket {
        let (src1, src2) = inst.source_regs();
        TracePacket {
            pc: 0x1000,
            inst_word: flexcore_isa::encode(&inst),
            inst,
            class: InstrClass::of(&inst),
            addr: 0,
            result: 0,
            srcv1: 0,
            srcv2: 0,
            store_value: 0,
            cond: IccFlags::default(),
            branch_taken: false,
            src1,
            src2,
            dest: inst.dest_reg(),
            commit_cycle: 0,
        }
    }

    /// A load/store packet at `addr` (data register `%o1`, base `%o0`).
    pub fn mem_packet(op: Opcode, addr: u32) -> TracePacket {
        let inst = Instruction::mem(op, Reg::O1, Reg::O0, Operand2::Imm(0));
        let mut p = packet(inst);
        p.addr = addr;
        p.srcv1 = addr;
        p
    }

    /// An ALU packet `op rs1, rs2, rd` with the given result.
    pub fn alu_packet(
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        rd: Reg,
        a: u32,
        b: u32,
        result: u32,
    ) -> TracePacket {
        let inst = Instruction::Alu { op, rd, rs1, op2: Operand2::Reg(rs2) };
        let mut p = packet(inst);
        p.srcv1 = a;
        p.srcv2 = b;
        p.result = result;
        p
    }

    /// A `cpop` packet with source values `a`/`b` (register operands
    /// `%o0`/`%o1`, destination `%o2`).
    pub fn packet_with_cpop(space: u8, opc: u16, a: u32, b: u32) -> TracePacket {
        let inst = Instruction::Cpop { space, opc, rd: Reg::O2, rs1: Reg::O0, rs2: Reg::O1 };
        let mut p = packet(inst);
        p.srcv1 = a;
        p.srcv2 = b;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_mem::CacheConfig;

    #[test]
    fn bit_tag_layout_is_dense_and_disjoint() {
        // 32 consecutive data words share one meta word, one bit each.
        let (m0, b0) = bit_tag_location(0);
        assert_eq!((m0, b0), (META_BASE, 0));
        let (m1, b1) = bit_tag_location(4);
        assert_eq!((m1, b1), (META_BASE, 1));
        let (m32, b32) = bit_tag_location(32 * 4);
        assert_eq!((m32, b32), (META_BASE + 4, 0));
        // Distinct words within a meta word get distinct bits.
        let mut seen = std::collections::HashSet::new();
        for w in 0..32u32 {
            let (m, b) = bit_tag_location(w * 4);
            assert_eq!(m, META_BASE);
            assert!(seen.insert(b));
        }
    }

    #[test]
    fn byte_tag_layout_packs_four_per_word() {
        let (m0, s0) = byte_tag_location(0);
        assert_eq!((m0, s0), (META_BASE, 24), "lane 0 is the BE MSB");
        let (m1, s1) = byte_tag_location(4);
        assert_eq!((m1, s1), (META_BASE, 16));
        let (m3, s3) = byte_tag_location(12);
        assert_eq!((m3, s3), (META_BASE, 0));
        let (m4, s4) = byte_tag_location(16);
        assert_eq!((m4, s4), (META_BASE + 4, 24));
    }

    #[test]
    fn env_tracks_ready_time_and_op_counts() {
        let mut meta = MetaDataCache::new(CacheConfig::meta_default());
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut shadow = ShadowRegFile::new();
        let mut env = ExtEnv::with_period(&mut meta, &mut mem, &mut bus, &mut shadow, 100, 2);
        assert_eq!(env.ready_at(), 100);
        env.write_meta(META_BASE, 1, 1); // cold miss -> bus refill
        assert!(env.ready_at() > 102);
        let after_write = env.ready_at();
        let v = env.read_meta(META_BASE); // hit: one fabric cycle
        assert_eq!(v, 1);
        assert_eq!(env.ready_at(), after_write + 2);
        assert_eq!(env.meta_ops(), (1, 1));
    }

    #[test]
    fn trap_display_mentions_pc_and_reason() {
        let t = MonitorTrap { pc: 0x1040, reason: "tag check failed".into() };
        assert_eq!(t.to_string(), "monitor trap at 0x00001040: tag check failed");
    }
}
