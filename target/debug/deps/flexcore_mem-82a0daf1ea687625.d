/root/repo/target/debug/deps/flexcore_mem-82a0daf1ea687625.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-82a0daf1ea687625.rlib: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-82a0daf1ea687625.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/serde_impls.rs:
crates/mem/src/storebuf.rs:
