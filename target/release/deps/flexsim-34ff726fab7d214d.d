/root/repo/target/release/deps/flexsim-34ff726fab7d214d.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/release/deps/flexsim-34ff726fab7d214d: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
