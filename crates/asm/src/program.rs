//! The assembled program image.

use std::collections::HashMap;
use std::fmt;

/// An assembled program: a contiguous byte image plus its symbol table.
///
/// The image is position-dependent (branches are PC-relative but `set`
/// sequences bake in absolute addresses), so it must be loaded at
/// [`base`](Program::base).
#[derive(Clone, Debug)]
pub struct Program {
    base: u32,
    image: Vec<u8>,
    symbols: HashMap<String, u32>,
    entry: u32,
}

impl Program {
    /// Default load address used by [`assemble`](crate::assemble).
    pub const DEFAULT_BASE: u32 = 0x1000;

    pub(crate) fn new(base: u32, image: Vec<u8>, symbols: HashMap<String, u32>) -> Program {
        let entry = symbols.get("start").copied().unwrap_or(base);
        Program { base, image, symbols, entry }
    }

    /// Load address of the first image byte.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Entry point: the `start` label if defined, otherwise the base.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The raw image bytes (big-endian words).
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// The image as big-endian 32-bit words (zero-padded at the tail if
    /// the image length is not a multiple of four).
    pub fn words(&self) -> Vec<u32> {
        self.image
            .chunks(4)
            .map(|c| {
                let mut w = [0u8; 4];
                w[..c.len()].copy_from_slice(c);
                u32::from_be_bytes(w)
            })
            .collect()
    }

    /// Looks up a label or `.equ` symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols, for diagnostics.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// An objdump-style listing: one line per word with its address,
    /// raw encoding, label (if any), and disassembly (or `.word` for
    /// data that does not decode).
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        // Reverse symbol table, labels sorted for stable output.
        let mut labels: Vec<(&str, u32)> = self.symbols().collect();
        labels.sort_by_key(|&(name, addr)| (addr, name.to_string()));
        let mut out = String::new();
        for (i, word) in self.words().iter().enumerate() {
            let addr = self.base + 4 * i as u32;
            for &(name, _) in labels.iter().filter(|&&(_, a)| a == addr) {
                let _ = writeln!(out, "{name}:");
            }
            let text = match flexcore_isa::decode(*word) {
                Ok(inst) => inst.to_string(),
                Err(_) => format!(".word {word:#010x}"),
            };
            let _ = writeln!(out, "  {addr:#010x}:  {word:08x}  {text}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} bytes at {:#x}, entry {:#x}, {} symbols",
            self.image.len(),
            self.base,
            self.entry,
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_defaults_to_base() {
        let p = Program::new(0x1000, vec![0; 8], HashMap::new());
        assert_eq!(p.entry(), 0x1000);
    }

    #[test]
    fn entry_uses_start_symbol() {
        let mut syms = HashMap::new();
        syms.insert("start".to_string(), 0x1004);
        let p = Program::new(0x1000, vec![0; 8], syms);
        assert_eq!(p.entry(), 0x1004);
    }

    #[test]
    fn listing_shows_labels_addresses_and_disassembly() {
        let p = crate::assemble(
            "start: add %g1, 4, %g2
                    ta 0
            data:  .word 0xffffffff",
        )
        .unwrap();
        let listing = p.listing();
        assert!(listing.contains("start:"), "{listing}");
        assert!(listing.contains("data:"), "{listing}");
        assert!(listing.contains("add %g1, 4, %g2"), "{listing}");
        assert!(listing.contains(".word 0xffffffff"), "{listing}");
        assert!(listing.contains("0x00001000:"), "{listing}");
    }

    #[test]
    fn words_are_big_endian_and_padded() {
        let p = Program::new(0, vec![0x01, 0x02, 0x03, 0x04, 0xaa], HashMap::new());
        assert_eq!(p.words(), vec![0x0102_0304, 0xaa00_0000]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }
}
