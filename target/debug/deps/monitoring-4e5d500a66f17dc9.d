/root/repo/target/debug/deps/monitoring-4e5d500a66f17dc9.d: tests/monitoring.rs Cargo.toml

/root/repo/target/debug/deps/libmonitoring-4e5d500a66f17dc9.rmeta: tests/monitoring.rs Cargo.toml

tests/monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
