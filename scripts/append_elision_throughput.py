#!/usr/bin/env python3
"""Append elided-vs-full throughput rows to BENCH_sim_throughput.json.

Runs every paper kernel under the three elidable extensions (UMC, DIFT,
CFI) through `flexsim`, once full and once with the check-elision table
emitted by `flexcheck --emit-elision`, and appends one row per run in
the flexprof row schema (extension names carry a `+elide` suffix for
the elided legs). Rows for a (workload, extension) pair that already
exist in the document are replaced, so the script is idempotent.

Usage:
    python3 scripts/append_elision_throughput.py TABLE_DIR [BENCH_JSON]

TABLE_DIR must hold `<workload>.elision.json` files (from
`flexcheck --taint --emit-elision TABLE_DIR`). BENCH_JSON defaults to
BENCH_sim_throughput.json in the repository root.
"""

import json
import subprocess
import sys
from pathlib import Path

WORKLOADS = ["sha", "gmac", "stringsearch", "fft", "basicmath", "bitcount"]
EXTENSIONS = ["umc", "dift", "cfi"]
FLEXSIM = ["cargo", "run", "--release", "-q", "-p", "flexcore-bench", "--bin", "flexsim", "--"]


def run_flexsim(workload: str, ext: str, elide: Path | None) -> dict:
    cmd = FLEXSIM + [workload, "--ext", ext, "--json"]
    if elide is not None:
        cmd += ["--elide", str(elide)]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def row(workload: str, label: str, r: dict) -> dict:
    return {
        "workload": workload,
        "extension": label,
        "instret": r["instret"],
        "cycles": r["cycles"],
        "host_ns": r["host_ns"],
        "host_sim_insns_per_sec": r["host_sim_insns_per_sec"],
        "host_sim_cycles_per_sec": r["host_sim_cycles_per_sec"],
    }


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    table_dir = Path(sys.argv[1])
    bench_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("BENCH_sim_throughput.json")
    doc = json.loads(bench_path.read_text())

    new_rows = []
    for w in WORKLOADS:
        table = table_dir / f"{w}.elision.json"
        if not table.exists():
            print(f"error: {table} missing (run flexcheck --taint --emit-elision first)",
                  file=sys.stderr)
            return 2
        for ext in EXTENSIONS:
            label = ext.upper()
            full = run_flexsim(w, ext, None)
            elided = run_flexsim(w, ext, table)
            elided_checks = elided["resilience"]["elided_checks"]
            new_rows.append(row(w, label, full))
            new_rows.append(row(w, f"{label}+elide", elided))
            print(f"{w:>13} {label:<11} full {full['cycles']:>9} cy, "
                  f"elided {elided['cycles']:>9} cy ({elided_checks} checks discharged)")

    replaced = {(r["workload"], r["extension"]) for r in new_rows}
    doc["rows"] = [r for r in doc["rows"]
                   if (r["workload"], r["extension"]) not in replaced] + new_rows
    bench_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {len(new_rows)} elided-vs-full row(s) to {bench_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
