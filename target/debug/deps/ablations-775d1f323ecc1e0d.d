/root/repo/target/debug/deps/ablations-775d1f323ecc1e0d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-775d1f323ecc1e0d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
