/root/repo/target/debug/deps/system_properties-60cabd89c09931c7.d: tests/system_properties.rs

/root/repo/target/debug/deps/libsystem_properties-60cabd89c09931c7.rmeta: tests/system_properties.rs

tests/system_properties.rs:
