/root/repo/target/debug/deps/assembler-ead430103e97a87b.d: crates/bench/benches/assembler.rs

/root/repo/target/debug/deps/libassembler-ead430103e97a87b.rmeta: crates/bench/benches/assembler.rs

crates/bench/benches/assembler.rs:
