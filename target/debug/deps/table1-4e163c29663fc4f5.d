/root/repo/target/debug/deps/table1-4e163c29663fc4f5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4e163c29663fc4f5.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
