/root/repo/target/debug/deps/table1-3cda30356c544b9a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-3cda30356c544b9a.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
