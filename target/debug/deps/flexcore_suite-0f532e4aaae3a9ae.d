/root/repo/target/debug/deps/flexcore_suite-0f532e4aaae3a9ae.d: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-0f532e4aaae3a9ae.rmeta: src/lib.rs

src/lib.rs:
