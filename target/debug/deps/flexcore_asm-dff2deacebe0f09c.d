/root/repo/target/debug/deps/flexcore_asm-dff2deacebe0f09c.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libflexcore_asm-dff2deacebe0f09c.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
