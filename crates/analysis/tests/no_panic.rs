//! Robustness: the analyzer accepts anything the assembler accepts.
//! Whatever CFG shape falls out — branches into delay slots, data run
//! as code, loops with hostile strides — `analyze_program` returns a
//! report; it never panics, overflows, or fails to terminate.

use flexcore_analysis::analyze_program;
use flexcore_asm::assemble;
use proptest::prelude::*;

/// One plausible kernel line: ALU ops with arbitrary immediates,
/// compares, memory accesses, and branches to the trailer labels.
/// Stresses the interval domain's wrap handling, branch refinement,
/// and widening.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..8, -4096i32..=4095).prop_map(|(r, k)| format!("add %l{r}, {k}, %l{r}")),
        (0u8..8, -4096i32..=4095).prop_map(|(r, k)| format!("sub %l{r}, {k}, %l{r}")),
        (0u8..8, -4096i32..=4095).prop_map(|(r, k)| format!("cmp %l{r}, {k}")),
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(a, b, d)| format!("and %l{a}, %l{b}, %l{d}")),
        (0u8..8, 0u32..32).prop_map(|(r, s)| format!("sll %l{r}, {s}, %o0")),
        (0u8..8, 0u32..32).prop_map(|(r, s)| format!("srl %l{r}, {s}, %o0")),
        (0u8..8, -64i32..64).prop_map(|(r, k)| format!("ld [%l{r} + {k}], %o1")),
        (0u8..8, -64i32..64).prop_map(|(r, k)| format!("st %o1, [%l{r} + {k}]")),
        (0u8..8,).prop_map(|(r,)| format!("umul %l{r}, %o0, %o1")),
        prop::sample::select(vec![
            "bl t0",
            "bne t1",
            "bgu t2",
            "bcs t0",
            "ble t1",
            "ba t2",
            "be,a t0",
            "bl,a t1",
            "call t2",
            "save %sp, -96, %sp",
            "restore %g0, %g0, %g0",
            "nop",
            "ta 0",
            "tst %o0",
        ])
        .prop_map(String::from),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random branchy kernels: every one that assembles analyzes.
    #[test]
    fn random_kernels_never_panic_the_analyzer(
        lines in prop::collection::vec(arb_line(), 0..24),
    ) {
        let src = format!(
            "start: {}\nt0: nop\nt1: nop\nt2: ta 0\nbuf: .space 16",
            lines.join("\n ")
        );
        if let Ok(p) = assemble(&src) {
            let report = analyze_program(&p);
            // Sanity on the invariants downstream consumers rely on.
            for pl in &report.proven_loads {
                prop_assert!(pl.lo <= pl.hi, "{pl:?}");
            }
        }
    }

    /// Near-miss assembly (valid tokens, shuffled) — same generator
    /// family as the assembler's own fuzz suite: whatever assembles
    /// must analyze.
    #[test]
    fn token_soup_never_panics_the_analyzer(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "add", "ld", "st", "set", "%g1", "%o0", "%sp", "[", "]", ",",
                "+", "-", "0x10", "42", "label:", "label", ".word", ".space",
                ".align", "nop", "ba", "cmp", "!", "sethi", "%hi(x)", "ta",
            ]),
            0..30,
        )
    ) {
        let src = words.join(" ");
        if let Ok(p) = assemble(&src) {
            let _ = analyze_program(&p);
        }
    }

    /// Multi-line soup with branches into odd places (delay slots,
    /// data) exercises CFG recovery's hazard paths.
    #[test]
    fn multiline_soup_never_panics_the_analyzer(
        lines in prop::collection::vec(
            prop::sample::select(vec![
                "x: nop",
                "nop",
                ".align 8",
                ".space 3",
                ".byte 1, 2",
                ".half 9",
                "y: .word x",
                "ba x",
                "bne,a x",
                "ba y",
                "add %g1, 1, %g1",
                "cmp %g1, 3",
                "ta 0",
                "! comment",
                "",
            ]),
            0..20,
        )
    ) {
        let src = lines.join("\n");
        if let Ok(p) = assemble(&src) {
            let _ = analyze_program(&p);
        }
    }
}
