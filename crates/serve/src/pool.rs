//! The **global** long-lived worker pool: one set of supervised worker
//! threads shared by every job the server or daemon runs.
//!
//! PR 6's pool was scoped per job — `run_job` spawned threads, ran one
//! trial list, and joined them. A long-lived daemon draining many
//! campaigns cannot afford that shape: thread churn per job, no
//! cross-job accounting, and nowhere to hang a "how busy is the
//! service" signal. [`WorkerPool`] inverts it: threads are spawned
//! once ([`WorkerPool::start`]) and live until the pool is dropped;
//! each job is a ticketed batch of tasks pushed onto one shared FIFO,
//! and its records stream back over a per-job channel, so several
//! submission paths (scheduler drain, daemon jobs) share the same
//! workers without re-creating them.
//!
//! Supervision is unchanged from the per-job pool — every attempt runs
//! under `catch_unwind` inside [`supervised`], panics retry with
//! bounded backoff and quarantine after the budget — and two pool
//! properties are load-bearing for the daemon:
//!
//! * **Revocation.** [`JobHandle::collect`] can stop a job mid-flight
//!   (`stop_after`, graceful drain): queued-but-unclaimed tasks for
//!   that ticket are removed from the shared FIFO and counted as
//!   `remaining`, while in-flight trials finish and are journaled —
//!   the "finish or journal in-flight trials" half of drain.
//! * **Isolation.** A task's response channel is owned by the task, so
//!   a collector that goes away (client disconnect mid-subscription,
//!   say) just makes later sends no-ops; nothing a consumer does can
//!   wedge a worker thread.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use flexcore::RunResult;
use flexcore_bench::trial::{self, TrialSpec};
use flexcore_telemetry::Gauge;

use crate::worker::{supervised, JobRunStats, TrialFailure, TrialRecord, WorkerPolicy};

/// One queued unit of work: a trial plus everything the worker needs
/// to run and report it without touching shared job state.
struct Task {
    ticket: u64,
    index: usize,
    spec: TrialSpec,
    reference: Option<Arc<RunResult>>,
    policy: WorkerPolicy,
    epoch: Instant,
    busy: Option<Gauge>,
    tx: Sender<TrialRecord>,
}

#[derive(Default)]
struct Shared {
    tasks: Mutex<VecDeque<Task>>,
    work: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        self.tasks.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The long-lived pool. Dropping it shuts the workers down (pending
/// tasks are discarded, which disconnects their job channels — nothing
/// blocks forever on a dead pool).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    width: usize,
    next_ticket: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("queued", &self.shared.locked().len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `width` worker threads (0 → one per available core) that
    /// live until the pool is dropped.
    pub fn start(width: usize) -> WorkerPool {
        let width = match width {
            0 => std::thread::available_parallelism().map_or(4, usize::from),
            n => n,
        };
        let shared = Arc::new(Shared::default());
        let handles = (0..width)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flexserve-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles, width, next_ticket: AtomicU64::new(1) }
    }

    /// The number of worker threads.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Enqueues one job's trials (minus the `skip` set, counted as
    /// reused) as a ticketed batch and returns the handle its records
    /// stream back through. Does not block: collection happens on the
    /// caller's thread via [`JobHandle::collect`].
    pub fn submit(
        &self,
        trials: &[TrialSpec],
        skip: &HashSet<String>,
        policy: &WorkerPolicy,
        busy: Option<&Gauge>,
    ) -> JobHandle {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let epoch = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        // One clean reference run per workload, shared by every
        // supervised (`recover`) trial of the job.
        let mut refs: HashMap<&str, Arc<RunResult>> = HashMap::new();
        for spec in trials {
            if spec.recover && !refs.contains_key(spec.workload.name()) {
                refs.insert(spec.workload.name(), Arc::new(trial::reference_run(&spec.workload)));
            }
        }
        let mut reused = 0u64;
        let mut batch = VecDeque::new();
        for (index, spec) in trials.iter().enumerate() {
            if skip.contains(&spec.label) {
                reused += 1;
                continue;
            }
            batch.push_back(Task {
                ticket,
                index,
                spec: spec.clone(),
                reference: refs.get(spec.workload.name()).cloned(),
                policy: *policy,
                epoch,
                busy: busy.cloned(),
                tx: tx.clone(),
            });
        }
        // `tx` lives only inside tasks from here on: when the last
        // task of the batch has been executed (or revoked/dropped),
        // the job's receiver disconnects and `collect` returns.
        drop(tx);
        if !batch.is_empty() {
            self.shared.locked().extend(batch);
            self.shared.work.notify_all();
        }
        JobHandle { shared: Arc::clone(&self.shared), ticket, rx, reused, width: self.width, epoch }
    }

    /// Removes every queued-but-unclaimed task of `ticket` from the
    /// shared FIFO, returning how many were revoked. In-flight trials
    /// are not touched — they finish and deliver their records.
    fn revoke(shared: &Shared, ticket: u64) -> u64 {
        let mut tasks = shared.locked();
        let before = tasks.len();
        tasks.retain(|t| t.ticket != ticket);
        (before - tasks.len()) as u64
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Pending tasks are dropped so their channels disconnect.
        self.shared.locked().clear();
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let task = {
            let mut tasks = shared.locked();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(task) = tasks.pop_front() {
                    break task;
                }
                tasks = shared.work.wait(tasks).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let start_us = task.epoch.elapsed().as_micros() as u64;
        if let Some(g) = &task.busy {
            g.inc();
        }
        let done = supervised(&task.spec, task.reference.as_deref(), &task.policy);
        if let Some(g) = &task.busy {
            g.dec();
        }
        let record = TrialRecord {
            index: task.index,
            label: task.spec.label.clone(),
            worker,
            attempts: done.attempts,
            outcome: done.outcome,
            start_us,
            dur_us: task.epoch.elapsed().as_micros() as u64 - start_us,
        };
        // A send fails only when the job's collector is gone (stopped
        // early, or its client vanished); the record is simply dropped
        // — the journal/resume machinery owns durability, not this
        // channel.
        let _ = task.tx.send(record);
    }
}

/// One submitted job's streaming side: receive records, account stats,
/// and optionally stop early.
pub struct JobHandle {
    shared: Arc<Shared>,
    ticket: u64,
    rx: Receiver<TrialRecord>,
    reused: u64,
    width: usize,
    epoch: Instant,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("ticket", &self.ticket).finish()
    }
}

impl JobHandle {
    /// Drains the job's records on the calling thread, invoking
    /// `on_record` in completion order (journal there without
    /// locking). With `stop_after = Some(n)`, once `n` records have
    /// been delivered the job's unclaimed tasks are revoked (counted
    /// as `remaining`) while in-flight trials still finish and are
    /// delivered — the same soft-interruption contract the per-job
    /// pool had, now also the daemon's drain primitive.
    pub fn collect<F>(self, stop_after: Option<u64>, mut on_record: F) -> JobRunStats
    where
        F: FnMut(&TrialRecord),
    {
        let mut stats =
            JobRunStats { reused: self.reused, workers: self.width, ..JobRunStats::default() };
        let mut stopped = false;
        for record in &self.rx {
            stats.executed += 1;
            match &record.outcome {
                Ok(_) if record.attempts > 1 => {
                    stats.retried += 1;
                    stats.panics += u64::from(record.attempts - 1);
                }
                Ok(_) => {}
                Err(TrialFailure::Panicked { attempts, .. }) => {
                    stats.quarantined += 1;
                    stats.panics += u64::from(*attempts);
                }
            }
            on_record(&record);
            if !stopped && stop_after.is_some_and(|n| stats.executed >= n) {
                stats.remaining = WorkerPool::revoke(&self.shared, self.ticket);
                stopped = true;
                // Keep draining: in-flight trials deliver their
                // records; the loop ends when the last task sender
                // drops.
            }
        }
        stats.elapsed_us = self.epoch.elapsed().as_micros() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore::recovery::RecoveryPolicy;
    use flexcore_bench::trial::CampaignSpec;
    use flexcore_workloads::Workload;

    fn small_trials(n: usize) -> Vec<TrialSpec> {
        let cspec = CampaignSpec {
            seed: 0xf1ec,
            trials: n,
            lockstep: false,
            recover: false,
            policy: RecoveryPolicy::default(),
        };
        let bitcount =
            *Workload::all().iter().find(|w| w.name() == "bitcount").expect("bitcount exists");
        trial::campaign1_trials(&cspec, &[bitcount])
    }

    #[test]
    fn one_pool_serves_many_jobs_without_respawning() {
        let pool = WorkerPool::start(2);
        for round in 0..3 {
            let trials = small_trials(3);
            let mut labels = Vec::new();
            let stats = pool
                .submit(&trials, &HashSet::new(), &WorkerPolicy::default(), None)
                .collect(None, |r| labels.push(r.label.clone()));
            assert_eq!(stats.executed, 3, "round {round} ran on the shared pool");
            assert_eq!(stats.workers, 2);
            labels.sort();
            let mut expected: Vec<String> = trials.iter().map(|t| t.label.clone()).collect();
            expected.sort();
            assert_eq!(labels, expected);
        }
    }

    #[test]
    fn concurrent_jobs_route_records_to_their_own_handles() {
        let pool = Arc::new(WorkerPool::start(3));
        let a_trials = small_trials(4);
        let b_trials = small_trials(6);
        let a = pool.submit(&a_trials, &HashSet::new(), &WorkerPolicy::default(), None);
        let b = pool.submit(&b_trials, &HashSet::new(), &WorkerPolicy::default(), None);
        let mut b_labels = Vec::new();
        let b_stats = b.collect(None, |r| b_labels.push(r.label.clone()));
        let mut a_labels = Vec::new();
        let a_stats = a.collect(None, |r| a_labels.push(r.label.clone()));
        // Each handle receives exactly its own batch — all of it and
        // nothing from the other job, even with both interleaved on
        // the same three workers.
        assert_eq!((a_stats.executed, b_stats.executed), (4, 6));
        let expect = |trials: &[TrialSpec]| {
            let mut v: Vec<String> = trials.iter().map(|t| t.label.clone()).collect();
            v.sort();
            v
        };
        a_labels.sort();
        b_labels.sort();
        assert_eq!(a_labels, expect(&a_trials));
        assert_eq!(b_labels, expect(&b_trials));
    }

    #[test]
    fn revocation_counts_unclaimed_tasks_and_in_flight_still_deliver() {
        let pool = WorkerPool::start(1);
        let trials = small_trials(8);
        let stats = pool
            .submit(&trials, &HashSet::new(), &WorkerPolicy::default(), None)
            .collect(Some(2), |_| {});
        assert!(stats.executed >= 2, "the stop threshold was reached");
        assert!(stats.executed < 8, "the stop actually interrupted the job");
        assert_eq!(stats.executed + stats.remaining, 8, "every trial accounted for");
    }

    #[test]
    fn dropping_the_pool_disconnects_pending_jobs() {
        let pool = WorkerPool::start(1);
        let handle = pool.submit(&small_trials(6), &HashSet::new(), &WorkerPolicy::default(), None);
        drop(pool);
        // The collector must not hang: dropped tasks disconnect the
        // channel; whatever was in flight may or may not have landed.
        let stats = handle.collect(None, |_| {});
        assert!(stats.executed <= 6);
    }
}
