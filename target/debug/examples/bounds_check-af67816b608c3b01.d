/root/repo/target/debug/examples/bounds_check-af67816b608c3b01.d: examples/bounds_check.rs Cargo.toml

/root/repo/target/debug/examples/libbounds_check-af67816b608c3b01.rmeta: examples/bounds_check.rs Cargo.toml

examples/bounds_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
