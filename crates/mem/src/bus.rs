//! The shared memory bus and SDRAM timing model.

use std::fmt;

/// Who is driving a bus transfer. Used for contention accounting
/// (Table IV's overheads partly come from the fabric's meta-data refills
/// delaying the core's own misses).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BusMaster {
    /// The main processing core (L1 refills and write-through stores).
    Core,
    /// The reconfigurable fabric (meta-data cache refills/write-backs).
    Fabric,
}

/// SDRAM burst timing, expressed in **core clock cycles**.
///
/// A transfer of `n` words occupies the bus for
/// `first_word + (n - 1) * per_word` cycles. The defaults approximate
/// the paper's platform: a 100-MHz-class SDR SDRAM behind an AMBA AHB
/// bus on a ~465-MHz core — row activate + CAS ≈ 10-11 SDRAM cycles ≈
/// 50 core cycles to the first word, then one word per SDRAM cycle
/// (≈ 4-5 core cycles).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SdramTiming {
    /// Cycles from request grant to the first word of a read burst.
    pub first_word: u32,
    /// Cycles for each subsequent word of a burst.
    pub per_word: u32,
    /// Cycles a posted single-word write occupies the bus (write-through
    /// store traffic; shorter than a read because the SDRAM controller
    /// acknowledges posted writes early).
    pub write_word: u32,
}

impl Default for SdramTiming {
    fn default() -> SdramTiming {
        SdramTiming { first_word: 50, per_word: 4, write_word: 10 }
    }
}

impl SdramTiming {
    /// Bus occupancy of an `n`-word read burst, in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn burst_cycles(self, words: u32) -> u64 {
        assert!(words > 0, "zero-length bus transfer");
        u64::from(self.first_word) + u64::from(words - 1) * u64::from(self.per_word)
    }

    /// Bus occupancy of an `n`-word posted write, in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn write_cycles(self, words: u32) -> u64 {
        assert!(words > 0, "zero-length bus transfer");
        u64::from(self.write_word) + u64::from(words - 1) * u64::from(self.per_word)
    }
}

/// Aggregate bus statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BusStats {
    /// Total cycles the bus spent transferring data.
    pub busy_cycles: u64,
    /// Transfers initiated by the core.
    pub core_transfers: u64,
    /// Transfers initiated by the fabric.
    pub fabric_transfers: u64,
    /// Cycles core requests spent waiting for the bus to free up.
    pub core_wait_cycles: u64,
    /// Cycles fabric requests spent waiting for the bus to free up.
    pub fabric_wait_cycles: u64,
}

impl fmt::Display for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus: busy {} cyc, core {} xfers ({} wait), fabric {} xfers ({} wait)",
            self.busy_cycles,
            self.core_transfers,
            self.core_wait_cycles,
            self.fabric_transfers,
            self.fabric_wait_cycles
        )
    }
}

/// The single memory bus shared by the core's L1 caches and the
/// fabric's meta-data cache.
///
/// The model is a busy-until timeline: a request issued at cycle `now`
/// is granted at `max(now, busy_until)`, occupies the bus for the burst
/// duration, and completes when the burst ends. This captures exactly
/// the contention effect the paper describes: "meta-data refills from
/// memory hog the memory bus shared by the meta-data cache and the main
/// core caches" (§V.C).
///
/// # Example
///
/// ```
/// use flexcore_mem::{BusMaster, SystemBus};
/// let mut bus = SystemBus::default();
/// let t1 = bus.transfer(BusMaster::Fabric, 0, 8); // 8-word refill
/// let t2 = bus.transfer(BusMaster::Core, 0, 8);   // must wait behind it
/// assert_eq!(t2, 2 * t1);
/// assert!(bus.stats().core_wait_cycles > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SystemBus {
    timing: SdramTiming,
    busy_until: u64,
    stats: BusStats,
}

impl SystemBus {
    /// Creates a bus with the given SDRAM timing.
    pub fn new(timing: SdramTiming) -> SystemBus {
        SystemBus { timing, ..SystemBus::default() }
    }

    /// Performs a read burst of `words` words requested at cycle `now`;
    /// returns the cycle at which the last word arrives.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn transfer(&mut self, master: BusMaster, now: u64, words: u32) -> u64 {
        let occupancy = self.timing.burst_cycles(words);
        self.occupy(master, now, occupancy)
    }

    /// Performs a posted write of `words` words requested at cycle
    /// `now`; returns the cycle at which the bus frees up.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn write(&mut self, master: BusMaster, now: u64, words: u32) -> u64 {
        let occupancy = self.timing.write_cycles(words);
        self.occupy(master, now, occupancy)
    }

    fn occupy(&mut self, master: BusMaster, now: u64, occupancy: u64) -> u64 {
        let grant = now.max(self.busy_until);
        let wait = grant - now;
        let done = grant + occupancy;
        self.busy_until = done;
        self.stats.busy_cycles += done - grant;
        match master {
            BusMaster::Core => {
                self.stats.core_transfers += 1;
                self.stats.core_wait_cycles += wait;
            }
            BusMaster::Fabric => {
                self.stats.fabric_transfers += 1;
                self.stats.fabric_wait_cycles += wait;
            }
        }
        done
    }

    /// The cycle until which the bus is currently occupied.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The configured SDRAM timing.
    pub fn timing(&self) -> SdramTiming {
        self.timing
    }

    /// Restores the busy-until timeline and statistics (for
    /// checkpointing). The SDRAM timing is construction state and is
    /// not changed.
    pub fn restore(&mut self, busy_until: u64, stats: BusStats) {
        self.busy_until = busy_until;
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_cycles_formula() {
        let t = SdramTiming { first_word: 20, per_word: 2, write_word: 6 };
        assert_eq!(t.burst_cycles(1), 20);
        assert_eq!(t.burst_cycles(8), 34);
        assert_eq!(t.write_cycles(1), 6);
        assert_eq!(t.write_cycles(8), 20);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_word_burst_panics() {
        let _ = SdramTiming::default().burst_cycles(0);
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = SystemBus::new(SdramTiming { first_word: 20, per_word: 2, write_word: 6 });
        let done = bus.transfer(BusMaster::Core, 100, 1);
        assert_eq!(done, 100 + 20);
        assert_eq!(bus.stats().core_wait_cycles, 0);
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut bus = SystemBus::new(SdramTiming { first_word: 20, per_word: 2, write_word: 6 });
        let t1 = bus.transfer(BusMaster::Core, 0, 8);
        let t2 = bus.transfer(BusMaster::Fabric, 10, 8);
        assert_eq!(t2, t1 + 34);
        assert_eq!(bus.stats().fabric_wait_cycles, t1 - 10);
    }

    #[test]
    fn later_request_after_idle_gap_does_not_wait() {
        let mut bus = SystemBus::new(SdramTiming { first_word: 20, per_word: 2, write_word: 6 });
        let t1 = bus.transfer(BusMaster::Core, 0, 1);
        let t2 = bus.transfer(BusMaster::Core, t1 + 50, 1);
        assert_eq!(t2, t1 + 50 + 20);
        assert_eq!(bus.stats().core_wait_cycles, 0);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut bus = SystemBus::new(SdramTiming { first_word: 20, per_word: 2, write_word: 6 });
        bus.transfer(BusMaster::Core, 0, 8);
        bus.transfer(BusMaster::Fabric, 0, 8);
        assert_eq!(bus.stats().busy_cycles, 68);
        assert_eq!(bus.stats().core_transfers, 1);
        assert_eq!(bus.stats().fabric_transfers, 1);
    }
}
