/root/repo/target/debug/deps/flexcore_bench-7327d98cf38bf5d2.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-7327d98cf38bf5d2.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
